//! Protocol-hardening tests for the mini-ccd compile service.
//!
//! A daemon lives or dies by how it treats hostile or half-dead peers:
//! truncated frames, oversized length prefixes, payloads that are not
//! JSON, and clients that vanish mid-request must all end in a
//! structured error response or a clean session teardown — never a
//! panic, and never a wedged session.

use std::io::{Cursor, Write as _};

use ipra_driver::service::{CompileRequest, RequestSource, Service, ServiceConfig};
use ipra_obs::frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use ipra_obs::json::Json;

const DEMO: &str = "fn id(x: int) -> int { return x; } fn main() { print(id(7)); }";

fn responses_of(output: Vec<u8>) -> Vec<Json> {
    let mut c = Cursor::new(output);
    let mut out = Vec::new();
    loop {
        match read_frame(&mut c) {
            Ok(v) => out.push(v),
            Err(FrameError::Closed) => return out,
            Err(e) => panic!("response stream not cleanly framed: {e}"),
        }
    }
}

#[test]
fn truncated_header_tears_the_session_down_without_panicking() {
    let service = Service::with_defaults();
    // Two bytes of a four-byte header, then EOF.
    let mut output = Vec::new();
    let err = service
        .serve_session(Cursor::new(vec![0u8, 0u8]), &mut output)
        .unwrap_err();
    assert!(matches!(err, FrameError::Truncated), "{err}");
    assert!(output.is_empty(), "no response to an unfinished frame");
}

#[test]
fn disconnect_mid_payload_tears_the_session_down() {
    let service = Service::with_defaults();
    let req = CompileRequest::new(1, RequestSource::Source(DEMO.into()));
    let mut input = Vec::new();
    write_frame(&mut input, &req.to_json()).unwrap();
    // The peer dies with half the request on the wire.
    input.truncate(input.len() / 2);
    let mut output = Vec::new();
    let err = service
        .serve_session(Cursor::new(input), &mut output)
        .unwrap_err();
    assert!(matches!(err, FrameError::Truncated), "{err}");
    let m = service.metrics_snapshot();
    assert_eq!(
        m.counter_value("service.protocol_errors", &[("kind", "truncated")]),
        1,
        "a mid-frame death is recorded under its own kind"
    );
    assert_eq!(
        m.counter_value("service.protocol_errors", &[("kind", "parse")]),
        0
    );
}

#[test]
fn disconnect_after_a_complete_request_is_a_clean_close() {
    let service = Service::with_defaults();
    let req = CompileRequest::new(1, RequestSource::Source(DEMO.into()));
    let mut input = Vec::new();
    write_frame(&mut input, &req.to_json()).unwrap();
    let mut output = Vec::new();
    let served = service
        .serve_session(Cursor::new(input), &mut output)
        .unwrap();
    assert_eq!(served, 1);
    let resp = responses_of(output);
    assert_eq!(resp.len(), 1);
    assert_eq!(resp[0].get("status").and_then(Json::as_str), Some("ok"));
}

#[test]
fn oversized_frame_is_answered_then_the_session_closes() {
    let cfg = ServiceConfig {
        max_frame_len: 1024,
        ..ServiceConfig::default()
    };
    let service = Service::new(cfg);
    let mut input = Vec::new();
    // Declare 2 KiB against the 1 KiB cap; payload follows but must
    // never be buffered.
    input.extend_from_slice(&2048u32.to_be_bytes());
    input.extend_from_slice(&[b'x'; 2048]);
    let mut output = Vec::new();
    let served = service
        .serve_session(Cursor::new(input), &mut output)
        .unwrap();
    assert_eq!(served, 0);
    let resp = responses_of(output);
    assert_eq!(resp.len(), 1);
    assert_eq!(resp[0].get("status").and_then(Json::as_str), Some("error"));
    let msg = resp[0].get("error").and_then(Json::as_str).unwrap();
    assert!(
        msg.contains("2048"),
        "error names the offending size: {msg}"
    );
    let m = service.metrics_snapshot();
    assert_eq!(
        m.counter_value("service.protocol_errors", &[("kind", "too_large")]),
        1
    );
}

#[test]
fn default_frame_cap_is_enforced() {
    let service = Service::with_defaults();
    let mut input = Vec::new();
    input.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
    let mut output = Vec::new();
    assert_eq!(
        service
            .serve_session(Cursor::new(input), &mut output)
            .unwrap(),
        0
    );
    let resp = responses_of(output);
    assert_eq!(resp[0].get("status").and_then(Json::as_str), Some("error"));
}

#[test]
fn invalid_json_gets_a_structured_error_and_the_session_continues() {
    let service = Service::with_defaults();
    let mut input = Vec::new();
    let garbage = b"{\"cmd\": not json at all";
    input.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
    input.extend_from_slice(garbage);
    // A well-formed request after the bad one must still be served.
    write_frame(
        &mut input,
        &Json::obj(vec![
            ("cmd", Json::Str("ping".into())),
            ("id", Json::Int(2)),
        ]),
    )
    .unwrap();
    let mut output = Vec::new();
    let served = service
        .serve_session(Cursor::new(input), &mut output)
        .unwrap();
    assert_eq!(served, 1, "only the valid request counts as served");
    let resp = responses_of(output);
    assert_eq!(resp.len(), 2);
    assert_eq!(resp[0].get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(resp[1].get("pong"), Some(&Json::Bool(true)));
    let m = service.metrics_snapshot();
    assert_eq!(
        m.counter_value("service.protocol_errors", &[("kind", "parse")]),
        1
    );
}

#[test]
fn non_object_and_unknown_requests_are_structured_errors() {
    let service = Service::with_defaults();
    let mut input = Vec::new();
    write_frame(&mut input, &Json::Int(42)).unwrap();
    write_frame(&mut input, &Json::Arr(vec![])).unwrap();
    write_frame(
        &mut input,
        &Json::obj(vec![("cmd", Json::Str("rm -rf".into()))]),
    )
    .unwrap();
    let mut output = Vec::new();
    let served = service
        .serve_session(Cursor::new(input), &mut output)
        .unwrap();
    assert_eq!(served, 3);
    for r in responses_of(output) {
        assert_eq!(
            r.get("status").and_then(Json::as_str),
            Some("error"),
            "{r:?}"
        );
    }
}

#[test]
fn concurrent_sessions_share_one_pipeline_and_agree_byte_for_byte() {
    use std::os::unix::net::UnixStream;

    let service = Service::with_defaults();
    let sessions = 8;
    let asms = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 0..sessions {
            let service = &service;
            handles.push(s.spawn(move || {
                let (mut client, server) = UnixStream::pair().unwrap();
                let srv = s.spawn(move || service.serve_session(&server, &server).unwrap());
                let mut req = CompileRequest::new(i, RequestSource::Source(DEMO.into()));
                req.run = true;
                let resp = ipra_driver::service::roundtrip(&mut client, &req.to_json()).unwrap();
                assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
                assert_eq!(resp.get("id").and_then(Json::as_i64), Some(i));
                assert_eq!(
                    resp.get("output").and_then(Json::as_arr),
                    Some(&[Json::Int(7)][..])
                );
                let asm = resp.get("asm").and_then(Json::as_str).unwrap().to_string();
                drop(client); // clean close; the server thread returns
                srv.join().unwrap();
                asm
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    for asm in &asms[1..] {
        assert_eq!(asm, &asms[0], "sessions diverged");
    }
    let m = service.metrics_snapshot();
    assert_eq!(m.counter_value("service.sessions", &[]), sessions as u64);
    assert_eq!(
        m.counter_value("service.requests", &[("cmd", "compile"), ("status", "ok")]),
        sessions as u64
    );
    // Sessions racing the very first compile may each miss the memo before
    // any of them publishes, so the batch's warm count is only recorded —
    // the deterministic sharing check is the follow-up probe below.
    let batch_warm = m.counter_value("service.warm_hits", &[]);
    assert!(
        m.histogram("service.request_micros", &[("cmd", "compile")])
            .is_some_and(|h| !h.is_empty()),
        "latency histogram records compiles"
    );

    // After the batch the memo is warm for certain: a follow-up session
    // must hit it and agree byte-for-byte with the concurrent answers.
    let (mut client, server) = UnixStream::pair().unwrap();
    std::thread::scope(|s| {
        let srv = s.spawn(|| service.serve_session(&server, &server).unwrap());
        let mut req = CompileRequest::new(99, RequestSource::Source(DEMO.into()));
        req.run = true;
        let resp = ipra_driver::service::roundtrip(&mut client, &req.to_json()).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            resp.get("asm").and_then(Json::as_str),
            Some(asms[0].as_str())
        );
        drop(client);
        srv.join().unwrap();
    });
    let m = service.metrics_snapshot();
    assert_eq!(
        m.counter_value("service.warm_hits", &[]),
        batch_warm + 1,
        "the post-batch session must replay from the shared memo"
    );
}

#[test]
fn half_written_frame_then_socket_close_is_contained() {
    use std::os::unix::net::UnixStream;

    let service = Service::with_defaults();
    let (mut client, server) = UnixStream::pair().unwrap();
    std::thread::scope(|s| {
        let h = s.spawn(|| service.serve_session(&server, &server));
        // One good request...
        let req = Json::obj(vec![("cmd", Json::Str("ping".into()))]);
        let resp = ipra_driver::service::roundtrip(&mut client, &req).unwrap();
        assert_eq!(resp.get("pong"), Some(&Json::Bool(true)));
        // ...then a header promising 100 bytes, 3 bytes, and a hangup.
        client.write_all(&100u32.to_be_bytes()).unwrap();
        client.write_all(b"abc").unwrap();
        drop(client);
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, FrameError::Truncated), "{err}");
    });
}

/// One-request helper: speaks one framed request to a fresh session and
/// returns the response.
fn one_request(req: &Json) -> Json {
    use std::os::unix::net::UnixStream;
    let service = Service::with_defaults();
    let (mut client, server) = UnixStream::pair().unwrap();
    std::thread::scope(|s| {
        let h = s.spawn(|| service.serve_session(&server, &server));
        let resp = ipra_driver::service::roundtrip(&mut client, req).unwrap();
        drop(client);
        h.join().unwrap().unwrap();
        resp
    })
}

#[test]
fn target_field_selects_the_register_file() {
    // Enough simultaneously-live values that the register file's shape
    // shows up in the allocation (DEMO fits any target identically).
    let pressure = "fn f(a: int, b: int, c: int, d: int) -> int {
        var e: int = a + b; var g: int = c + d; var h: int = a * c;
        var i: int = b * d; var j: int = e + g;
        return e + g + h + i + j;
    }
    fn main() { print(f(1, 2, 3, 4)); }";

    // The same source compiled for the default and the irregular target
    // must both succeed — with different assembly (the embedded8 file has
    // different registers to allocate).
    let mut req = CompileRequest::new(1, RequestSource::Source(pressure.into()));
    req.run = true;
    let default_resp = one_request(&req.to_json());
    assert_eq!(
        default_resp.get("status").and_then(Json::as_str),
        Some("ok")
    );
    let want_output = default_resp.get("output").and_then(Json::as_arr).unwrap();

    let mut req = CompileRequest::new(2, RequestSource::Source(pressure.into()));
    req.run = true;
    req.target = Some("embedded8".into());
    let resp = one_request(&req.to_json());
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        resp.get("output").and_then(Json::as_arr),
        Some(want_output),
        "irregular target must still print the right answer"
    );
    assert_ne!(
        resp.get("asm").and_then(Json::as_str),
        default_resp.get("asm").and_then(Json::as_str),
        "embedded8 assembly should differ from the mips-like default"
    );

    // Anonymous convention points work over the wire too.
    let mut req = CompileRequest::new(3, RequestSource::Source(pressure.into()));
    req.run = true;
    req.target = Some("conv:6,3,1".into());
    let resp = one_request(&req.to_json());
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(resp.get("output").and_then(Json::as_arr), Some(want_output));
}

#[test]
fn bad_target_requests_are_structured_errors_not_panics() {
    // Unknown name.
    let mut req = CompileRequest::new(1, RequestSource::Source(DEMO.into()));
    req.target = Some("nonesuch".into());
    let resp = one_request(&req.to_json());
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    let msg = resp.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(msg.contains("unknown target"), "{msg}");

    // Invalid convention triple (caller > pool).
    let mut req = CompileRequest::new(2, RequestSource::Source(DEMO.into()));
    req.target = Some("conv:4,9,1".into());
    let resp = one_request(&req.to_json());
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));

    // target and limit together.
    let mut req = CompileRequest::new(3, RequestSource::Source(DEMO.into()));
    req.target = Some("embedded8".into());
    req.limit = Some((7, 0));
    let resp = one_request(&req.to_json());
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    let msg = resp.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(msg.contains("mutually exclusive"), "{msg}");

    // A limit beyond the mips family must error, not panic the session.
    let mut req = CompileRequest::new(4, RequestSource::Source(DEMO.into()));
    req.limit = Some((12, 0));
    let resp = one_request(&req.to_json());
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    let msg = resp.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(msg.contains("at most"), "{msg}");
}
