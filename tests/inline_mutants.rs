//! Mutation tests: the inliner's safety net must have teeth. Each test
//! plants one classic inlining bug — via the `#[doc(hidden)]` mutation
//! hooks in `ipra_core::inline`, or by pairing artifacts the way a
//! missing invalidation would — and asserts the static verifier, the IR
//! verifier, or the differential interpreter oracle catches it. A net
//! that lets any of these through would also wave through the real
//! thing.

use std::collections::HashSet;

use ipra_core::inline::{inline_with_mutation, InlineMutation};
use ipra_driver::{compile_only, Config};
use ipra_ir::Module;

/// Caller with several values live across one call (so un-renamed callee
/// locals have state to trample), plus an address-taken helper called
/// both directly and through a function pointer (so stubbing the
/// out-of-line body is observable).
const SOURCE: &str = r#"
fn leaf(a: int, b: int) -> int {
    return a * 2 + b;
}
fn taken(x: int) -> int {
    return x + 40;
}
fn busy(a: int, b: int) -> int {
    var x: int = a + b;
    var y: int = a - b;
    var z: int = a * b;
    var w: int = a + 7;
    var v: int = leaf(x, y);
    return v + x + y + z + w;
}
fn main() {
    var p: fnptr = &taken;
    print(busy(3, 4));
    print(taken(1));
    print(p(2));
}
"#;

fn module() -> Module {
    ipra_frontend::compile(SOURCE).expect("fixture compiles")
}

fn mutate(m: &mut Module, budget: u32, mutation: InlineMutation) -> ipra_core::InlineStats {
    inline_with_mutation(m, budget, &HashSet::new(), None, mutation)
}

fn interp_output(m: &Module) -> Result<Vec<i64>, String> {
    ipra_ir::interp::run_module(m)
        .map(|r| r.output)
        .map_err(|t| t.to_string())
}

/// Renders one function's machine code — the byte-identity witness.
fn func_asm(compiled: &ipra_core::CompiledModule, config: &Config, name: &str) -> String {
    let f = compiled
        .mmodule
        .funcs
        .iter()
        .map(|(_, f)| f)
        .find(|f| f.name == name)
        .expect("fixture function exists");
    f.display_in(&config.target.regs, &compiled.mmodule)
        .to_string()
}

/// Bug 1: forgetting to invalidate cached per-function artifacts after
/// the inliner rewrites bodies, so a warm cache replays a callee's
/// *pre-inline* machine code. IPRA packs registers bottom-up, which
/// makes the post-inline clobber mask equal the pre-inline transitive
/// union — so the static verifier and the preservation checker are
/// structurally blind to this bug. The net that does have teeth is the
/// byte oracle: a stale replay differs byte-for-byte from a cold
/// compile, exactly what the differential harness's cache roundtrip
/// rejects. This test proves (a) the plant is byte-visible and (b) the
/// real pipeline's invalidation (inline flag + budget in the config
/// fingerprint, body re-hash after splicing) replays nothing stale.
#[test]
fn stale_pre_inline_summaries_are_caught() {
    // Budget 8 admits exactly the busy→leaf site (budgets 4..=24 inline
    // only that edge on this fixture), so `busy`'s body changes while
    // its name and signature stay identical — the worst case for an
    // invalidation bug.
    let m = module();
    let plain_cfg = Config::c();
    let mut inline_cfg = Config::inline_c();
    inline_cfg.opts.inline_budget = 8;

    let plain = compile_only(&m, &plain_cfg);
    let inlined = compile_only(&m, &inline_cfg);
    assert_eq!(
        inlined.inline.edges,
        vec![("busy".to_string(), "leaf".to_string())],
        "budget 8 must inline exactly the busy→leaf site"
    );

    // (a) The stale pairing is byte-visible: replaying busy's pre-inline
    // machine code under the inline config yields different bytes than
    // the correct cold compile, so any warm-vs-cold assembly compare
    // (the differential harness's cache roundtrip) flags it.
    assert_ne!(
        func_asm(&plain, &plain_cfg, "busy"),
        func_asm(&inlined, &inline_cfg, "busy"),
        "the inliner must change busy's machine code, or a stale replay \
         would be unobservable"
    );

    // (b) The real pipeline cannot produce the pairing: a cache
    // populated by the pre-inline compile yields zero hits under the
    // inline config (the fingerprint covers the effective inline flag
    // and budget), and the warm result is byte-identical to a fresh
    // no-cache inline compile.
    let dir = std::env::temp_dir().join(format!("inline-mutants-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut plain_cached = Config::c();
    plain_cached.opts.cache_dir = Some(dir.clone());
    let mut inline_cached = Config::inline_c();
    inline_cached.opts.inline_budget = 8;
    inline_cached.opts.cache_dir = Some(dir.clone());

    let seeded = compile_only(&m, &plain_cached);
    assert!(
        seeded.cache.misses > 0,
        "cold compile must populate the cache"
    );
    let warm = compile_only(&m, &inline_cached);
    assert_eq!(
        warm.cache.hits, 0,
        "a pre-inline cache entry replayed under the inline config: stale \
         summaries/code escaped invalidation"
    );
    for name in ["leaf", "taken", "busy", "main"] {
        assert_eq!(
            func_asm(&warm, &inline_cached, name),
            func_asm(&inlined, &inline_cfg, name),
            "{name}: warm-over-stale-cache assembly differs from a fresh \
             inline compile"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Control: the fresh pairing is clean — the net only fires on bugs.
    assert!(ipra_verify::verify_module(
        &inlined.mmodule,
        &inline_cfg.target.regs,
        &inlined.summaries
    )
    .is_empty());
}

/// Bug 2: splicing the callee body without renaming its vregs, so callee
/// locals capture caller state. The IR verifier or the interpreter
/// oracle must notice.
#[test]
fn unrenamed_local_capture_is_caught() {
    let healthy_out = interp_output(&module()).expect("fixture runs");

    let mut mutant = module();
    let stats = mutate(
        &mut mutant,
        ipra_core::DEFAULT_INLINE_BUDGET,
        InlineMutation::SkipRenaming,
    );
    assert!(stats.inlined > 0, "mutation must exercise a splice");

    let ir_broken = ipra_ir::verify::verify_module(&mutant).is_err();
    // Only consult the interpreter oracle on IR the verifier accepts:
    // un-renamed splices can leave out-of-range vregs the interpreter is
    // entitled to treat as unreachable (it asserts, not traps).
    let diverged = if ir_broken {
        false
    } else {
        match interp_output(&mutant) {
            Ok(out) => out != healthy_out,
            Err(_) => true, // trapping is also a catch
        }
    };
    assert!(
        ir_broken || diverged,
        "un-renamed callee locals aliased caller state without either the IR \
         verifier or the interpreter oracle noticing"
    );

    // Control: the healthy pass preserves output exactly.
    let mut clean = module();
    mutate(
        &mut clean,
        ipra_core::DEFAULT_INLINE_BUDGET,
        InlineMutation::None,
    );
    assert_eq!(interp_output(&clean).expect("runs"), healthy_out);
}

/// Bug 3: treating an address-taken callee as private — inlining its
/// direct site and deleting (stubbing) the out-of-line body. Calls
/// through the taken address now reach the stub, which the differential
/// interpreter oracle sees as an output change.
#[test]
fn inlining_an_address_taken_callee_is_caught() {
    let healthy_out = interp_output(&module()).expect("fixture runs");

    // The healthy pass must refuse the address-taken callee entirely.
    let mut clean = module();
    let clean_stats = mutate(&mut clean, u32::MAX, InlineMutation::None);
    assert!(
        !clean_stats
            .edges
            .iter()
            .any(|(_, callee)| callee == "taken"),
        "healthy pass must never inline an address-taken callee"
    );
    assert_eq!(interp_output(&clean).expect("runs"), healthy_out);

    let mut mutant = module();
    let stats = mutate(
        &mut mutant,
        u32::MAX,
        InlineMutation::TreatAddressTakenAsPrivate,
    );
    assert!(
        stats.edges.iter().any(|(_, callee)| callee == "taken"),
        "mutation must inline the address-taken callee to plant the bug"
    );
    let diverged = match interp_output(&mutant) {
        Ok(out) => out != healthy_out,
        Err(_) => true,
    };
    assert!(
        diverged,
        "stubbing an address-taken callee's out-of-line body went unnoticed \
         by the interpreter oracle"
    );
}

/// Bug 4: a budget comparison that admits one instruction too many. At
/// the exact admission boundary the healthy and mutated passes diverge
/// by exactly one budget step — which the golden ablation test's pinned
/// site counts (and jobs-parity byte-compare) would flag on any corpus
/// program sitting on the boundary.
#[test]
fn budget_off_by_one_is_caught_at_the_boundary() {
    let count_at = |budget: u32, mutation: InlineMutation| {
        let mut m = module();
        mutate(&mut m, budget, mutation).inlined
    };
    // Find the boundary: the smallest budget where the healthy pass
    // admits more than it does at zero.
    let boundary = (1..256)
        .find(|&b| count_at(b, InlineMutation::None) > count_at(0, InlineMutation::None))
        .expect("some budget admits the first site");
    assert!(
        count_at(boundary - 1, InlineMutation::BudgetOffByOne)
            > count_at(boundary - 1, InlineMutation::None),
        "one below the boundary, the off-by-one mutant must admit a site the \
         healthy pass refuses"
    );
    // The mutant at B behaves like the healthy pass at B+1: a pure
    // budget-contract violation, pinned by the golden site counts.
    for b in [boundary - 1, boundary, boundary + 7] {
        assert_eq!(
            count_at(b, InlineMutation::BudgetOffByOne),
            count_at(b + 1, InlineMutation::None),
            "mutant at budget {b} must equal healthy at {}",
            b + 1
        );
    }
}
