//! Calibration tests for the shaped generator: the corpora must actually
//! exercise both sides of the paper's open/closed procedure
//! classification, and every shape class must survive the full
//! differential check on a fixed seed window.

use ipra_driver::differential::{check_module, DiffOptions, DiffVerdict};
use ipra_workloads::synth::{shaped_source, ShapeClass, ShapeConfig, ShapeStats};

fn module_for(class: ShapeClass, seed: u64) -> ipra_ir::Module {
    let src = shaped_source(seed, &ShapeConfig::new(class));
    ipra_frontend::compile(&src).unwrap_or_else(|e| panic!("{class} seed {seed}: {e}\n{src}"))
}

/// Every function-pointer-heavy module must classify at least one
/// procedure besides `main` open (the `AddressTaken` reason), with a real
/// indirect call site to back it up.
#[test]
fn fnptr_heavy_modules_always_classify_an_open_procedure() {
    for seed in 0..40u64 {
        let s = ShapeStats::collect(&module_for(ShapeClass::FnPtrHeavy, seed));
        assert!(s.address_taken_funcs >= 1, "seed {seed}: no address taken");
        assert!(s.indirect_sites >= 1, "seed {seed}: no indirect call site");
        assert!(
            s.open_funcs >= 2,
            "seed {seed}: expected main plus an address-taken procedure open, \
             got {} open / {} closed",
            s.open_funcs,
            s.closed_funcs
        );
    }
}

/// Fully direct acyclic modules must classify every non-`main` procedure
/// closed: no recursion, no address-taking, nothing externally visible.
#[test]
fn acyclic_modules_classify_all_non_main_procedures_closed() {
    for seed in 0..40u64 {
        let s = ShapeStats::collect(&module_for(ShapeClass::Acyclic, seed));
        assert_eq!(s.recursive_funcs, 0, "seed {seed}");
        assert_eq!(s.indirect_sites, 0, "seed {seed}");
        assert_eq!(s.open_funcs, 1, "seed {seed}: only main is open");
        assert_eq!(s.closed_funcs, s.funcs - 1, "seed {seed}");
    }
}

/// Recursion corpora put procedures on call-graph cycles; a cycle forces
/// the `Recursive` open reason, so those procedures classify open.
#[test]
fn recursive_corpora_put_procedures_on_cycles() {
    let mut agg = ShapeStats::default();
    for seed in 0..25u64 {
        agg.absorb(&ShapeStats::collect(&module_for(
            ShapeClass::DeepRecursion,
            seed,
        )));
    }
    assert!(agg.recursive_funcs > 0, "no cycles in 25 recursion modules");
    assert!(
        agg.open_funcs > 25,
        "recursive procedures must classify open beyond the 25 mains"
    );
}

/// The full differential check (all configs, jobs bit-identity, oracle
/// comparison) over a fixed window of every shape class. Resource-limit
/// skips are allowed; differential failures are not.
#[test]
fn every_shape_class_passes_the_differential_check() {
    let opts = DiffOptions::default();
    for class in ShapeClass::ALL {
        let cfg = ShapeConfig::new(class);
        let mut stats = ShapeStats::default();
        for seed in 0..12u64 {
            let src = shaped_source(seed, &cfg);
            let module = ipra_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("{class} seed {seed}: {e}\n{src}"));
            stats.absorb(&ShapeStats::collect(&module));
            match check_module(&module, &opts) {
                Ok(DiffVerdict::Pass | DiffVerdict::Skipped(_)) => {}
                Err(f) => panic!("{class} seed {seed}: {f}\n{src}"),
            }
        }
        assert!(stats.open_funcs > 0, "{class}: no open procedures");
        assert!(stats.closed_funcs > 0, "{class}: no closed procedures");
    }
}

/// Shape statistics must flow into the observability layer, so a trace of
/// a fuzzing run is evidence of corpus calibration.
#[test]
fn shape_counters_prove_both_classes_are_exercised() {
    ipra_obs::enable();
    for class in [ShapeClass::Acyclic, ShapeClass::FnPtrHeavy] {
        for seed in 0..5u64 {
            ShapeStats::collect(&module_for(class, seed)).record();
        }
    }
    let trace = ipra_obs::disable();
    assert!(trace.counter_total("", "shape.open_funcs") > 0);
    assert!(trace.counter_total("", "shape.closed_funcs") > 0);
    assert!(trace.counter_total("", "shape.indirect_sites") > 0);
    assert!(trace.counter_total("", "shape.funcs") > 0);
}
