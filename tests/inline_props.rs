//! Property tests for the inliner's vreg renamer, on a hand-rolled
//! splitmix64 PRNG (no external crates):
//!
//! 1. **Fresh-name injectivity** — [`ipra_core::inline::rename_vregs`]
//!    maps every callee vreg to a distinct caller vreg that did not
//!    exist before the call, over random (caller, callee) pairs drawn
//!    from generated modules.
//! 2. **No free-variable escape** — after the full inlining pass, every
//!    function still passes the IR verifier (no instruction reads a
//!    vreg that was never defined, i.e. no callee variable leaked in
//!    un-renamed) and the module's interpreted output is unchanged.

use std::collections::HashSet;

use ipra_core::inline::{inline_hot_calls, rename_vregs};
use ipra_workloads::synth::{random_source, SourceConfig};

/// splitmix64 — deterministic across platforms, so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn shape(rng: &mut Rng) -> SourceConfig {
    SourceConfig {
        num_funcs: 2 + (rng.next() % 6) as usize,
        num_globals: (rng.next() % 4) as usize,
        num_arrays: (rng.next() % 3) as usize,
        stmts_per_func: 1 + (rng.next() % 8) as usize,
        max_depth: (rng.next() % 4) as usize,
    }
}

#[test]
fn renamer_is_injective_and_fresh_on_random_pairs() {
    let mut rng = Rng(0xfeed_5eed);
    for case in 0..64 {
        let seed = rng.next() % 10_000;
        let cfg = shape(&mut rng);
        let module = ipra_frontend::compile(&random_source(seed, &cfg)).expect("valid Mini");
        if module.funcs.len() < 2 {
            continue;
        }
        let n = module.funcs.len();
        let caller_id = (rng.next() as usize) % n;
        let callee_id = (rng.next() as usize) % n;
        let callee = module.funcs[ipra_ir::FuncId(callee_id as u32)].clone();
        let mut caller = module.funcs[ipra_ir::FuncId(caller_id as u32)].clone();

        let before = caller.num_vregs();
        let map = rename_vregs(&mut caller, &callee);
        assert_eq!(
            map.len(),
            callee.num_vregs(),
            "case {case}: every callee vreg gets a mapping"
        );
        let distinct: HashSet<_> = map.iter().collect();
        assert_eq!(
            distinct.len(),
            map.len(),
            "case {case}: renaming must be injective"
        );
        for v in &map {
            assert!(
                v.index() >= before,
                "case {case}: mapped vreg {v:?} existed in the caller before renaming \
                 (capture bug: callee values would alias caller locals)"
            );
            assert!(
                v.index() < caller.num_vregs(),
                "case {case}: mapped vreg {v:?} was never registered with the caller"
            );
        }
    }
}

#[test]
fn inlined_modules_verify_and_preserve_interpreted_output() {
    let mut rng = Rng(0x0dd_ba11);
    let mut inlined_somewhere = 0u64;
    for case in 0..48 {
        let seed = rng.next() % 10_000;
        let cfg = shape(&mut rng);
        let module = ipra_frontend::compile(&random_source(seed, &cfg)).expect("valid Mini");
        let expected = ipra_ir::interp::run_module(&module).expect("generated programs terminate");

        // Run the pass the way prepare_module does: on the already
        // interp-checked module, with openness computed fresh inside.
        let mut transformed = module.clone();
        let stats = inline_hot_calls(
            &mut transformed,
            ipra_core::DEFAULT_INLINE_BUDGET,
            &HashSet::new(),
            None,
        );
        inlined_somewhere += stats.inlined;

        if let Err(errors) = ipra_ir::verify::verify_module(&transformed) {
            panic!(
                "case {case} (seed {seed}): inlined module fails IR verification \
                 (free-variable escape or malformed splice): {errors:?}"
            );
        }
        let got = ipra_ir::interp::run_module(&transformed)
            .unwrap_or_else(|t| panic!("case {case} (seed {seed}): inlined module trapped: {t}"));
        assert_eq!(
            got.output, expected.output,
            "case {case} (seed {seed}): inlining changed the program's output"
        );
    }
    assert!(
        inlined_somewhere > 0,
        "the property run never exercised an actual inline — generator drift?"
    );
}
