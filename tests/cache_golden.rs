//! Golden tests for the incremental allocation cache: warm compiles must be
//! bit-identical to cold ones across the whole corpus, invalidation must
//! follow the call graph exactly, early cutoff must stop recompilation at
//! callers whose callees' summaries are byte-identical, and a damaged cache
//! must degrade to a cold compile — never to a panic or a wrong program.

use ipra_callgraph::{CallGraph, SccInfo};
use ipra_core::ipra::CompiledModule;
use ipra_driver::{compile_only, run_compiled, Config};

/// A scratch cache directory, unique per test and process.
fn cache_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ipra-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Everything observable about one compilation: program output, simulator
/// stats, summaries, clobber masks, reports and the rendered machine code.
fn observe(compiled: &CompiledModule, config: &Config) -> String {
    let m = run_compiled(compiled, config).expect("program runs");
    let mut out = String::new();
    out.push_str(&format!("output: {:?}\nstats: {:?}\n", m.output, m.stats));
    out.push_str(&format!(
        "summaries: {:?}\nclobbers: {:?}\nreports: {:?}\n",
        compiled.summaries, compiled.clobber_masks, compiled.reports
    ));
    for (_, f) in compiled.mmodule.funcs.iter() {
        out.push_str(
            &f.display_in(&config.target.regs, &compiled.mmodule)
                .to_string(),
        );
        out.push('\n');
    }
    out
}

const DEMO: &str = r#"
fn helper(a: int, b: int) -> int {
    var t: int = a * b;
    if t > 100 { t = t - 100; }
    return t + 1;
}
fn main() {
    var acc: int = 0;
    var i: int = 0;
    while i < 20 {
        acc = acc + helper(i, acc);
        i = i + 1;
    }
    print(acc);
}
"#;

/// The same 11-program corpus as `trace_golden`: the demo, mutual
/// recursion, a deep call DAG, six generator programs and two real
/// workloads.
fn corpus() -> Vec<(String, ipra_ir::Module)> {
    use ipra_workloads::synth;

    let mutual = r#"
        fn even(n: int) -> int { if n == 0 { return 1; } return odd(n - 1); }
        fn odd(n: int) -> int { if n == 0 { return 0; } return even(n - 1); }
        fn main() { print(even(10) + odd(7)); }
    "#;
    let mut corpus: Vec<(String, ipra_ir::Module)> = vec![
        ("demo".into(), ipra_frontend::compile(DEMO).unwrap()),
        ("mutual".into(), ipra_frontend::compile(mutual).unwrap()),
        ("tree".into(), synth::call_tree_program(3, 2, 4, 5)),
    ];
    for seed in 0..6u64 {
        let src = synth::random_source(seed, &synth::SourceConfig::default());
        corpus.push((
            format!("synth-{seed}"),
            ipra_frontend::compile(&src).unwrap(),
        ));
    }
    for w in ["nim", "stanford"] {
        let workload = ipra_workloads::by_name(w).unwrap();
        corpus.push((
            w.into(),
            ipra_workloads::compile_workload(workload).unwrap(),
        ));
    }
    corpus
}

/// Warm compiles must replay every function from the cache and still be
/// bit-identical to the cold compile — machine code, summaries, clobber
/// masks, reports, output and stats — at both `jobs = 1` and `jobs = 4`.
#[test]
fn warm_compile_is_bit_identical_to_cold_across_corpus() {
    for jobs in [1usize, 4] {
        let dir = cache_dir(&format!("warm-{jobs}"));
        for (name, module) in &corpus() {
            let mut cfg = Config::c();
            cfg.opts.jobs = jobs;
            let baseline = compile_only(module, &cfg);
            assert!(!baseline.cache.enabled, "[{name}] no cache configured");

            cfg.opts.cache_dir = Some(dir.join(name));
            let cold = compile_only(module, &cfg);
            let n = module.funcs.len() as u64;
            assert_eq!(cold.cache.misses, n, "[{name}/j{jobs}] cold misses all");
            assert_eq!(cold.cache.hits, 0, "[{name}/j{jobs}] cold has no hits");

            let warm = compile_only(module, &cfg);
            assert_eq!(warm.cache.hits, n, "[{name}/j{jobs}] warm hits all");
            assert_eq!(warm.cache.misses, 0, "[{name}/j{jobs}] warm misses none");
            assert_eq!(warm.cache.cutoffs, 0, "[{name}/j{jobs}] nothing recompiled");

            let want = observe(&baseline, &cfg);
            assert_eq!(
                observe(&cold, &cfg),
                want,
                "[{name}/j{jobs}] cold == uncached"
            );
            assert_eq!(observe(&warm, &cfg), want, "[{name}/j{jobs}] warm == cold");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

const CHAIN_V1: &str = r#"
fn leaf(a: int) -> int { return a + 1; }
fn mid(a: int) -> int { return leaf(a) + leaf(a + 1); }
fn top(a: int) -> int { return mid(a) * 2; }
fn other(a: int) -> int { return a * 3; }
fn main() { print(top(2) + other(5)); }
"#;

/// Editing a leaf's body without changing its summary or subtree register
/// usage must recompile exactly that leaf: its callers replay from the
/// cache (the early cutoff), and the result is still bit-identical to a
/// cold compile of the edited program.
#[test]
fn leaf_edit_with_unchanged_summary_recompiles_exactly_one_function() {
    // Same shape, same register demand — only the constant differs, so
    // `leaf`'s summary and tree-used mask are unchanged.
    let v2 = CHAIN_V1.replace("return a + 1;", "return a + 2;");

    let m1 = ipra_frontend::compile(CHAIN_V1).unwrap();
    let m2 = ipra_frontend::compile(&v2).unwrap();

    let dir = cache_dir("cutoff");
    let mut cfg = Config::c();
    cfg.opts.cache_dir = Some(dir.clone());

    let cold1 = compile_only(&m1, &cfg);
    assert_eq!(cold1.cache.misses, 5);
    // Precondition for the cutoff: the edit leaves the exported interface
    // byte-identical.
    let fresh2 = compile_only(&m2, &Config::c());
    assert_eq!(
        format!("{:?}", cold1.summaries),
        format!("{:?}", fresh2.summaries)
    );

    let warm2 = compile_only(&m2, &cfg);
    assert_eq!(
        warm2.cache.recompiled,
        vec!["leaf".to_string()],
        "only the edited leaf recompiles"
    );
    assert_eq!(warm2.cache.misses, 1);
    assert_eq!(warm2.cache.hits, 4);
    assert!(
        warm2.cache.cutoffs > 0,
        "a caller of the recompiled leaf must report the cutoff"
    );
    assert_eq!(
        observe(&warm2, &cfg),
        observe(&fresh2, &cfg),
        "incremental result == cold compile of the edited program"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Editing a leaf so that its register usage (summary / tree-used mask)
/// changes must invalidate exactly the leaf's ancestor set in the call
/// graph — `other`, which cannot reach the leaf, stays cached.
#[test]
fn interface_change_invalidates_exactly_the_ancestor_set() {
    // The new leaf keeps many values live at once: its used-register set
    // (hence its subtree mask, hence every ancestor's cache key) changes.
    let v2 = CHAIN_V1.replace(
        "fn leaf(a: int) -> int { return a + 1; }",
        r#"fn leaf(a: int) -> int {
            var b: int = a * 2; var c: int = b + a; var d: int = c * b;
            var e: int = d - a; var f: int = e * c; var g: int = f + d;
            return b + c + d + e + f + g;
        }"#,
    );

    let m1 = ipra_frontend::compile(CHAIN_V1).unwrap();
    let m2 = ipra_frontend::compile(&v2).unwrap();

    let dir = cache_dir("ancestors");
    let mut cfg = Config::c();
    cfg.opts.cache_dir = Some(dir.clone());
    compile_only(&m1, &cfg);

    // The expected invalidation set, from the call graph itself.
    let cg = CallGraph::build(&m2);
    let scc = SccInfo::compute(&cg);
    let leaf = m2.func_by_name("leaf").unwrap();
    let ancestors: Vec<String> = scc
        .dirty_closure(&cg, &[leaf])
        .into_iter()
        .map(|fid| m2.funcs[fid].name.clone())
        .collect();
    assert_eq!(ancestors, ["leaf", "mid", "top", "main"]);

    let warm2 = compile_only(&m2, &cfg);
    assert_eq!(
        warm2.cache.recompiled, ancestors,
        "invalidation must be exactly the ancestor set"
    );
    assert_eq!(warm2.cache.hits, 1, "`other` replays from the cache");
    assert_eq!(
        observe(&warm2, &cfg),
        observe(&compile_only(&m2, &Config::c()), &cfg),
        "incremental result == cold compile of the edited program"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Editing a function the inliner spliced away must recompile exactly
/// the inliner's ancestor set: the function itself plus every function
/// whose post-inline body transitively contains the splice. Functions
/// outside that set replay from the cache — the inliner must not turn
/// every edit into a cold compile — and the warm result stays
/// bit-identical to a cold compile of the edited program.
#[test]
fn editing_an_inlined_away_function_recompiles_the_inline_ancestor_set() {
    // A constant-only edit: under the plain config the early cutoff
    // confines this to `leaf` alone (previous test). Under the inliner
    // the spliced copies of `leaf`'s body change too, so the ancestor
    // set must recompile — and nothing else.
    let v2 = CHAIN_V1.replace("return a + 1;", "return a + 2;");
    let m1 = ipra_frontend::compile(CHAIN_V1).unwrap();
    let m2 = ipra_frontend::compile(&v2).unwrap();

    let dir = cache_dir("inline-cutoff");
    let mut cfg = Config::inline_c();
    cfg.opts.cache_dir = Some(dir.clone());

    let cold1 = compile_only(&m1, &cfg);
    assert_eq!(cold1.cache.misses, 5);

    // The expected invalidation set, from the inliner's own edge list:
    // the transitive closure of "spliced `leaf` (or a function containing
    // it) into its body".
    let mut expected: std::collections::BTreeSet<String> =
        std::iter::once("leaf".to_string()).collect();
    loop {
        let before = expected.len();
        for (caller, callee) in &cold1.inline.edges {
            if expected.contains(callee) {
                expected.insert(caller.clone());
            }
        }
        if expected.len() == before {
            break;
        }
    }
    assert!(
        expected.len() > 1,
        "fixture must actually inline leaf somewhere (edges: {:?})",
        cold1.inline.edges
    );

    let warm2 = compile_only(&m2, &cfg);
    let recompiled: std::collections::BTreeSet<String> =
        warm2.cache.recompiled.iter().cloned().collect();
    assert_eq!(
        recompiled, expected,
        "recompilation must cover exactly the inline-ancestor set"
    );
    assert_eq!(
        warm2.cache.hits,
        5 - expected.len() as u64,
        "functions outside the splice set replay from the cache"
    );

    let fresh2 = compile_only(&m2, &{
        let mut c = Config::inline_c();
        c.opts.jobs = cfg.opts.jobs;
        c
    });
    assert_eq!(
        observe(&warm2, &cfg),
        observe(&fresh2, &cfg),
        "incremental result == cold compile of the edited program"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupted, truncated, or version-skewed shard files must behave
/// exactly like an empty cache: a cold compile that then repopulates the
/// directory. Entries live in per-key `<key>.ce.json` shards, so the test
/// damages every shard the warm compile would read.
#[test]
fn damaged_cache_degrades_to_cold_compile() {
    let module = ipra_frontend::compile(DEMO).unwrap();
    let dir = cache_dir("damaged");

    let mut cfg = Config::c();
    cfg.opts.cache_dir = Some(dir.clone());
    let want = observe(&compile_only(&module, &Config::c()), &cfg);

    /// The shard files currently in the cache directory.
    fn shards(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let mut v: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(".ce.json"))
            .collect();
        v.sort();
        v
    }

    for garbage in [
        "not json at all",
        "{\"version\": 999, \"funcs\": []}",
        "{\"version\": 1, \"funcs\": [17, \"nope\"]}",
        "",
    ] {
        // Populate, then damage every shard.
        compile_only(&module, &cfg);
        let files = shards(&dir);
        assert_eq!(files.len(), 2, "one shard per single-function component");
        for f in &files {
            std::fs::write(f, garbage).unwrap();
        }

        let c = compile_only(&module, &cfg);
        assert_eq!(c.cache.hits, 0, "damaged cache yields no hits");
        assert_eq!(c.cache.misses, 2, "damaged cache compiles cold");
        assert_eq!(observe(&c, &cfg), want, "and the result is unharmed");
    }

    // The cold compile rewrote the shards; the next compile is warm again.
    let warm = compile_only(&module, &cfg);
    assert_eq!(warm.cache.hits, 2);

    // A stray legacy monolithic cache file is ignored entirely.
    std::fs::write(dir.join("ipra-cache.json"), "legacy").unwrap();
    let still_warm = compile_only(&module, &cfg);
    assert_eq!(still_warm.cache.hits, 2);
    let _ = std::fs::remove_dir_all(&dir);
}
