//! The static verifier must accept everything the compiler actually
//! produces: the 13-program paper-analog suite and every reduced fuzz
//! repro in `corpus/`, under all seven named configurations. A violation
//! here is either a compiler bug or a verifier false positive — both are
//! release blockers for the second oracle.

use ipra_driver::compile_only;
use ipra_driver::differential::all_configs;

fn assert_verifies(name: &str, source: &str) {
    let module =
        ipra_frontend::compile(source).unwrap_or_else(|e| panic!("{name}: frontend rejected: {e}"));
    for config in all_configs() {
        let compiled = compile_only(&module, &config);
        let violations =
            ipra_verify::verify_module(&compiled.mmodule, &config.target.regs, &compiled.summaries);
        assert!(
            violations.is_empty(),
            "{name} under {}: {} violation(s), first: {}",
            config.name,
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn paper_analog_suite_verifies_under_all_configs() {
    for w in ipra_workloads::all() {
        assert_verifies(w.name, w.source);
    }
}

#[test]
fn corpus_repros_verify_under_all_configs() {
    let corpus = concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus");
    let mut checked = 0;
    for entry in std::fs::read_dir(corpus).expect("corpus directory") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "mini") {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        assert_verifies(&path.display().to_string(), &source);
        checked += 1;
    }
    assert!(checked > 0, "corpus should hold at least one .mini repro");
}
