//! Acceptance test for the delta-debugging reducer: starting from a big
//! generated program with one "interesting" statement planted in `main`,
//! the reducer must strip the noise and keep the witness, landing at no
//! more than 25% of the original line count.

use ipra_ir::interp::{run_module_with, InterpOptions};
use ipra_workloads::reduce::{reduce, ReduceOptions};
use ipra_workloads::synth::{shaped_source, ShapeClass, ShapeConfig};

/// The planted marker: a constant no generated program prints on its own.
const MARKER: i64 = 424_242_787;

fn prints_marker(src: &str) -> bool {
    let Ok(module) = ipra_frontend::compile(src) else {
        return false;
    };
    match run_module_with(&module, InterpOptions::default().with_fuel(5_000_000)) {
        Ok(out) => out.output.contains(&MARKER),
        Err(_) => false,
    }
}

#[test]
fn reducer_shrinks_a_generated_program_to_a_quarter_or_less() {
    // A sizeable original: a generated acyclic program with the marker
    // planted as the first statement of `main`.
    let base = shaped_source(3, &ShapeConfig::new(ShapeClass::Acyclic));
    let original = base.replace("fn main() {", &format!("fn main() {{\n  print({MARKER});"));
    assert!(
        prints_marker(&original),
        "marker must be live before reducing"
    );

    let opts = ReduceOptions::default();
    let (minimal, stats) = reduce(&original, prints_marker, &opts).expect("reduction succeeds");

    assert!(prints_marker(&minimal), "reduction preserved the predicate");
    assert!(
        stats.final_lines * 4 <= stats.initial_lines,
        "expected <= 25% of {} lines, got {}:\n{minimal}",
        stats.initial_lines,
        stats.final_lines
    );
    assert!(
        minimal.contains(&MARKER.to_string()),
        "the witness statement survives:\n{minimal}"
    );
}
