//! Tests for the per-function analysis memo and the reusable scratch
//! pools: a persistent [`ipra_core::Pipeline`] must replay analyses for
//! unchanged bodies and recompute exactly the edited ones, the compile
//! trace must carry the memo counters, and reusing scratch across
//! compiles (at any job count) must never change the machine code.

use ipra_core::ipra::CompiledModule;
use ipra_core::Pipeline;
use ipra_driver::{compile_and_run_traced, compile_only, Config};
use ipra_obs::json::parse;

const CHAIN: &str = r#"
fn leaf(a: int) -> int { return a + 1; }
fn mid(a: int) -> int { return leaf(a) + leaf(a + 1); }
fn top(a: int) -> int { return mid(a) * 2; }
fn other(a: int) -> int { return a * 3; }
fn main() { print(top(2) + other(5)); }
"#;

/// Renders every function's machine code — the byte-identity witness.
fn asm_of(compiled: &CompiledModule, config: &Config) -> String {
    let mut out = String::new();
    for (_, f) in compiled.mmodule.funcs.iter() {
        out.push_str(
            &f.display_in(&config.target.regs, &compiled.mmodule)
                .to_string(),
        );
        out.push('\n');
    }
    out
}

/// A cold compile misses the memo for every function, a warm recompile
/// of the identical module hits for every function, and editing one
/// body recomputes exactly that function's analyses — all while staying
/// bit-identical to fresh one-shot compiles.
#[test]
fn memo_invalidation_follows_body_edits_exactly() {
    let m1 = ipra_frontend::compile(CHAIN).unwrap();
    // Same shape, different constant: only `leaf`'s body hash changes.
    let m2 = ipra_frontend::compile(&CHAIN.replace("return a + 1;", "return a + 2;")).unwrap();
    let n = m1.funcs.len() as u64;
    let cfg = Config::c();

    let pipe = Pipeline::new();
    let cold = pipe.compile(&m1, &cfg.target, &cfg.opts);
    assert_eq!((cold.analysis.hits, cold.analysis.misses), (0, n));

    let warm = pipe.compile(&m1, &cfg.target, &cfg.opts);
    assert_eq!((warm.analysis.hits, warm.analysis.misses), (n, 0));
    assert_eq!(asm_of(&warm, &cfg), asm_of(&cold, &cfg));

    let edited = pipe.compile(&m2, &cfg.target, &cfg.opts);
    assert_eq!(
        (edited.analysis.hits, edited.analysis.misses),
        (n - 1, 1),
        "editing one body must recompute exactly that function's analyses"
    );
    assert_eq!(
        asm_of(&edited, &cfg),
        asm_of(&compile_only(&m2, &cfg), &cfg),
        "memoized compile of the edited module == fresh compile"
    );

    // Lifetime totals accumulate across the three compiles.
    let life = pipe.analysis_stats();
    assert_eq!((life.hits, life.misses), (2 * n - 1, n + 1));
}

/// The compile trace carries the analysis-memo window of its compile, in
/// both the JSON document and the text rendering. A one-shot compile
/// always runs on a fresh memo: all misses, no hits.
#[test]
fn trace_reports_analysis_memo_counters() {
    let module = ipra_frontend::compile(CHAIN).unwrap();
    let m = compile_and_run_traced(&module, &Config::c()).unwrap();
    let trace = m.trace.expect("traced run carries a trace");

    let doc = parse(&trace.to_json().render_pretty()).expect("emitted JSON parses");
    let analysis = doc
        .get("analysis")
        .expect("trace JSON has an analysis object");
    assert_eq!(analysis.get("hits").unwrap().as_i64(), Some(0));
    assert_eq!(
        analysis.get("misses").unwrap().as_i64(),
        Some(module.funcs.len() as i64)
    );
    assert!(trace
        .render_text()
        .contains("analysis memo: 0 hits, 5 misses"));
}

/// Scratch reuse must be invisible in the output: recompiling through
/// one pipeline (serial and parallel, cold and warm memo) renders the
/// same bytes as a fresh one-shot compile every time.
#[test]
fn reused_scratch_is_bit_identical_across_jobs() {
    let workload = ipra_workloads::by_name("nim").unwrap();
    let module = ipra_workloads::compile_workload(workload).unwrap();

    for jobs in [1usize, 4] {
        let mut cfg = Config::c();
        cfg.opts.jobs = jobs;
        let want = asm_of(&compile_only(&module, &cfg), &cfg);

        let pipe = Pipeline::new();
        for round in 0..3 {
            let got = pipe.compile(&module, &cfg.target, &cfg.opts);
            assert_eq!(
                asm_of(&got, &cfg),
                want,
                "jobs={jobs} round={round}: reused scratch changed the output"
            );
        }
    }
}
