//! Concurrent-publish stress test for the sharded allocation cache.
//!
//! A compile daemon holds many in-flight requests in one process, and
//! several of them can compute and publish the *same* component entry
//! (same key, byte-identical value) at the same time. The publish path
//! must therefore be atomic per shard file even against sibling threads:
//! no `<key>.ce.json` may ever be observable in a torn or partial state,
//! and no temp file may be recycled while another thread is still
//! writing it (the pid-only temp names of cache format v3 had exactly
//! that hazard).

use ipra_core::ipra::{compile_module, CompiledModule};
use ipra_driver::Config;
use ipra_obs::json::{self, Json};

fn asm_of(compiled: &CompiledModule, config: &Config) -> String {
    let mut out = String::new();
    for (_, f) in compiled.mmodule.funcs.iter() {
        out.push_str(
            &f.display_in(&config.target.regs, &compiled.mmodule)
                .to_string(),
        );
        out.push('\n');
    }
    out
}

#[test]
fn many_sessions_hammering_one_key_never_tear_an_entry() {
    let module = ipra_frontend::compile(
        r#"
        fn leaf(x: int) -> int { return x * 3 + 1; }
        fn mid(a: int, b: int) -> int { return leaf(a) + leaf(b); }
        fn main() {
            var i: int = 0;
            var acc: int = 0;
            while i < 5 { acc = acc + mid(i, acc); i = i + 1; }
            print(acc);
        }
        "#,
    )
    .unwrap();
    let n = module.funcs.len() as u64;

    let dir = std::env::temp_dir().join(format!("ipra-cache-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = Config::c();
    cfg.opts.cache_dir = Some(dir.clone());
    let want = asm_of(
        &compile_module(&module, &cfg.target, &Config::c().opts),
        &cfg,
    );

    // Every thread compiles the same module against the same cache
    // directory, repeatedly. Each cold round publishes the same set of
    // keys; warm rounds race their lookups against sibling publishes.
    // Output must stay byte-identical throughout — a torn entry that
    // still parsed would surface here as divergent assembly.
    std::thread::scope(|s| {
        for _ in 0..12 {
            s.spawn(|| {
                for _ in 0..8 {
                    let compiled = compile_module(&module, &cfg.target, &cfg.opts);
                    assert_eq!(asm_of(&compiled, &cfg), want, "torn cache entry replayed");
                    assert_eq!(
                        compiled.cache.hits + compiled.cache.misses,
                        n,
                        "every function either hits or misses"
                    );
                }
            });
        }
    });

    // Every published shard file must be a complete, well-formed entry.
    let mut shards = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "leftover temp file {name} after all publishers finished"
        );
        assert!(name.ends_with(".ce.json"), "unexpected file {name}");
        shards += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("torn shard {name}: {e}"));
        assert_eq!(
            doc.get("version").and_then(Json::as_i64),
            Some(ipra_core::cache::CACHE_FORMAT_VERSION),
            "shard {name} lost its version"
        );
        assert!(doc.get("funcs").and_then(Json::as_arr).is_some());
    }
    assert!(shards > 0, "the hammer published at least one shard");

    // And a fresh compile replays everything from the surviving files.
    let warm = compile_module(&module, &cfg.target, &cfg.opts);
    assert_eq!(warm.cache.hits, n);
    assert_eq!(warm.cache.misses, 0);
    assert_eq!(asm_of(&warm, &cfg), want);

    let _ = std::fs::remove_dir_all(&dir);
}
