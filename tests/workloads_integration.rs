//! Workspace integration test: every workload, compiled under every named
//! configuration, must print exactly what the reference interpreter prints,
//! with the simulator's register-preservation checker enabled throughout.

use ipra_driver::{compile_and_run, Config};

fn all_configs() -> Vec<Config> {
    vec![
        Config::no_alloc(),
        Config::o2_base(),
        Config::a(),
        Config::b(),
        Config::c(),
        Config::d(),
        Config::e(),
    ]
}

#[test]
fn every_workload_agrees_with_the_interpreter_under_every_config() {
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w)
            .unwrap_or_else(|e| panic!("[{}] front end: {e}", w.name));
        let expected = ipra_ir::interp::run_module(&module)
            .unwrap_or_else(|t| panic!("[{}] interpreter: {t}", w.name));
        for config in all_configs() {
            let m = compile_and_run(&module, &config)
                .unwrap_or_else(|t| panic!("[{}/{}] simulator: {t}", w.name, config.name));
            assert_eq!(
                m.output, expected.output,
                "[{}/{}] output mismatch",
                w.name, config.name
            );
        }
    }
}

#[test]
fn optimizations_help_on_the_whole_suite() {
    // Aggregate claim of Table 1: -O3 must reduce total scalar traffic over
    // the suite (individual programs may regress, as ccom does in B).
    let mut base_total = 0u64;
    let mut o3_total = 0u64;
    let mut base_cycles = 0u64;
    let mut o3_cycles = 0u64;
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).unwrap();
        let base = compile_and_run(&module, &Config::o2_base()).unwrap();
        let o3 = compile_and_run(&module, &Config::c()).unwrap();
        base_total += base.scalar_mem();
        o3_total += o3.scalar_mem();
        base_cycles += base.cycles();
        o3_cycles += o3.cycles();
    }
    assert!(
        o3_total < base_total,
        "suite-wide scalar traffic must drop: {o3_total} vs {base_total}"
    );
    assert!(
        o3_cycles <= base_cycles,
        "suite-wide cycles must not regress: {o3_cycles} vs {base_cycles}"
    );
}

#[test]
fn shrink_wrap_alone_never_increases_scalar_traffic_suite_wide() {
    // Paper: "Column IIA shows that this optimization always reduces memory
    // accesses" — checked per workload.
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).unwrap();
        let base = compile_and_run(&module, &Config::o2_base()).unwrap();
        let a = compile_and_run(&module, &Config::a()).unwrap();
        assert!(
            a.scalar_mem() <= base.scalar_mem(),
            "[{}] shrink-wrap added scalar traffic: {} vs {}",
            w.name,
            a.scalar_mem(),
            base.scalar_mem()
        );
    }
}

#[test]
fn separate_compilation_degrades_gracefully() {
    // Forcing every function open must still be correct, and must not beat
    // the fully-closed compilation.
    let w = ipra_workloads::by_name("calcc").unwrap();
    let module = ipra_workloads::compile_workload(w).unwrap();
    let expected = ipra_ir::interp::run_module(&module).unwrap();

    let mut all_open = Config::c();
    all_open.name = "all-open".into();
    for (_, f) in module.funcs.iter() {
        all_open.opts.forced_open.insert(f.name.clone());
    }
    let open_m = compile_and_run(&module, &all_open).unwrap();
    assert_eq!(open_m.output, expected.output);

    let closed_m = compile_and_run(&module, &Config::c()).unwrap();
    assert!(
        closed_m.scalar_mem() <= open_m.scalar_mem(),
        "closing procedures must not hurt: {} vs {}",
        closed_m.scalar_mem(),
        open_m.scalar_mem()
    );
}
