//! Corpus regression test: every checked-in repro under `corpus/` must
//! pass the full differential check. When a fuzzing run finds a failure,
//! the minimized repro gets fixed and then checked in here, so the bug
//! stays fixed.
//!
//! Repros are plain Mini sources (`*.mini`), optionally with `//` header
//! comments recording their provenance.

use ipra_driver::differential::{check_source, DiffOptions, DiffVerdict};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("corpus")
}

#[test]
fn every_checked_in_repro_passes_the_differential_check() {
    let dir = corpus_dir();
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mini"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "corpus must contain at least one repro");

    let opts = DiffOptions::default();
    for path in &names {
        let src = std::fs::read_to_string(path).unwrap();
        match check_source(&src, &opts) {
            Ok(DiffVerdict::Pass) => {}
            Ok(DiffVerdict::Skipped(t)) => {
                panic!("{}: repro hit a resource limit ({t:?})", path.display())
            }
            Err(f) => panic!("{}: regressed: {f}", path.display()),
        }
    }
}
