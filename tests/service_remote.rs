//! Golden round-trip test: a compile answered by the service must be
//! byte-identical to a local `compile_module` of the same source under
//! the same options — across the whole bundled workload corpus, cold
//! and warm, and under register-class limits.

use std::os::unix::net::UnixStream;

use ipra_driver::service::{roundtrip, CompileRequest, RequestSource, Service};
use ipra_driver::Config;
use ipra_obs::json::Json;

fn local_asm(source: &str, config: &Config) -> String {
    let module = ipra_frontend::compile(source).unwrap();
    let compiled = ipra_core::compile_module(&module, &config.target, &config.opts);
    let mut out = String::new();
    for (_, f) in compiled.mmodule.funcs.iter() {
        out.push_str(
            &f.display_in(&config.target.regs, &compiled.mmodule)
                .to_string(),
        );
        out.push('\n');
    }
    out
}

fn remote_asm(service: &Service, req: &CompileRequest) -> (String, bool) {
    let (mut client, server) = UnixStream::pair().unwrap();
    std::thread::scope(|s| {
        let srv = s.spawn(move || service.serve_session(&server, &server).unwrap());
        let resp = roundtrip(&mut client, &req.to_json()).unwrap();
        drop(client);
        srv.join().unwrap();
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "remote compile failed: {resp:?}"
        );
        (
            resp.get("asm").and_then(Json::as_str).unwrap().to_string(),
            resp.get("warm") == Some(&Json::Bool(true)),
        )
    })
}

#[test]
fn remote_compiles_match_local_compiles_across_the_corpus() {
    let service = Service::with_defaults();
    for w in ipra_workloads::all() {
        let want = local_asm(w.source, &Config::o3());
        let req = CompileRequest::new(1, RequestSource::Workload(w.name.into()));
        let (cold, cold_warm) = remote_asm(&service, &req);
        assert_eq!(
            cold, want,
            "[{}] daemon vs local asm diverged (cold)",
            w.name
        );
        assert!(!cold_warm, "[{}] first compile cannot be warm", w.name);
        // Same request again: answered from the hot pipeline, still
        // byte-identical.
        let (warm, warm_warm) = remote_asm(&service, &req);
        assert_eq!(
            warm, want,
            "[{}] daemon vs local asm diverged (warm)",
            w.name
        );
        assert!(warm_warm, "[{}] repeat compile should be warm", w.name);
    }
}

/// Warm replay with the inliner on: repeating an `inline` request must
/// be answered entirely from the hot pipeline (warm-hit ratio 1.00
/// across the corpus) and stay byte-identical to a local
/// `Config::inline_c()` compile — the inliner's transform must be
/// memoized, not recomputed into a different module each time.
#[test]
fn inline_requests_stay_warm_on_replay_across_the_corpus() {
    let service = Service::with_defaults();
    let mut replays = 0u64;
    let mut warm_hits = 0u64;
    for w in ipra_workloads::all() {
        let want = local_asm(w.source, &Config::inline_c());
        let mut req = CompileRequest::new(1, RequestSource::Workload(w.name.into()));
        req.inline = Some(true);
        let (cold, cold_warm) = remote_asm(&service, &req);
        assert_eq!(cold, want, "[{}] daemon vs local inline asm (cold)", w.name);
        assert!(
            !cold_warm,
            "[{}] first inline compile cannot be warm",
            w.name
        );
        let (warm, warm_warm) = remote_asm(&service, &req);
        assert_eq!(warm, want, "[{}] daemon vs local inline asm (warm)", w.name);
        replays += 1;
        warm_hits += u64::from(warm_warm);
    }
    assert_eq!(
        warm_hits, replays,
        "inline replays must keep the daemon's warm-hit ratio at 1.00"
    );
}

#[test]
fn remote_option_surface_matches_local_configs() {
    let service = Service::with_defaults();
    let w = ipra_workloads::by_name("stanford").unwrap();

    // -O2, class limits, and shrink-wrap off each change codegen; the
    // remote option surface must land on exactly the local config.
    let mut o2 = CompileRequest::new(1, RequestSource::Workload(w.name.into()));
    o2.opt = "O2".into();
    assert_eq!(
        remote_asm(&service, &o2).0,
        local_asm(w.source, &Config::a())
    );

    let mut d = CompileRequest::new(2, RequestSource::Workload(w.name.into()));
    d.limit = Some((7, 0));
    assert_eq!(
        remote_asm(&service, &d).0,
        local_asm(w.source, &Config::d())
    );

    let mut b = CompileRequest::new(3, RequestSource::Workload(w.name.into()));
    b.shrink_wrap = Some(false);
    assert_eq!(
        remote_asm(&service, &b).0,
        local_asm(w.source, &Config::b())
    );

    let mut o0 = CompileRequest::new(4, RequestSource::Workload(w.name.into()));
    o0.opt = "O0".into();
    assert_eq!(
        remote_asm(&service, &o0).0,
        local_asm(w.source, &Config::no_alloc())
    );
}

#[test]
fn remote_run_reproduces_local_output_and_stats() {
    let service = Service::with_defaults();
    let w = ipra_workloads::by_name("calcc").unwrap();
    let module = ipra_frontend::compile(w.source).unwrap();
    let local = ipra_driver::compile_and_run(&module, &Config::o3()).unwrap();

    let mut req = CompileRequest::new(1, RequestSource::Workload(w.name.into()));
    req.run = true;
    let (mut client, server) = UnixStream::pair().unwrap();
    std::thread::scope(|s| {
        let srv = s.spawn(|| service.serve_session(&server, &server).unwrap());
        let resp = roundtrip(&mut client, &req.to_json()).unwrap();
        drop(client);
        srv.join().unwrap();
        let out: Vec<i64> = resp
            .get("output")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        assert_eq!(out, local.output, "simulated output diverged");
        let stats = resp.get("stats").unwrap();
        assert_eq!(
            stats.get("cycles").and_then(Json::as_i64),
            Some(local.stats.cycles as i64)
        );
        assert_eq!(
            stats.get("scalar_mem").and_then(Json::as_i64),
            Some(local.stats.scalar_mem() as i64)
        );
    });
}

#[test]
fn remote_trace_document_is_served() {
    let service = Service::with_defaults();
    let mut req = CompileRequest::new(
        1,
        RequestSource::Source(
            "fn f(x: int) -> int { return x + 1; } fn main() { print(f(1)); }".into(),
        ),
    );
    req.run = true;
    req.trace = true;
    let (mut client, server) = UnixStream::pair().unwrap();
    std::thread::scope(|s| {
        let srv = s.spawn(|| service.serve_session(&server, &server).unwrap());
        let resp = roundtrip(&mut client, &req.to_json()).unwrap();
        drop(client);
        srv.join().unwrap();
        let trace = resp.get("trace").expect("trace requested");
        // The document has the CompileTrace shape trace-tool consumes.
        assert!(trace.get("config").is_some(), "trace carries its config");
        assert!(
            trace.get("funcs").and_then(Json::as_arr).is_some()
                || trace.get("functions").and_then(Json::as_arr).is_some(),
            "trace carries per-function entries: {trace:?}"
        );
    });
}
