//! Block-by-block unit tests for the shrink-wrap dataflow equations
//! (paper Eqs. 3.1–3.6) on hand-built CFGs. Where the in-crate tests
//! exercise the solver through allocation, these pin the *placement* of
//! every save and restore for the canonical shapes: straight-line code,
//! a diamond, the paper's Fig. 2 double-save shape, and a loop whose
//! body forces saves out to the entry (§5 constraint).

use ipra_cfg::{Cfg, Dominators, LoopInfo};
use ipra_core::{shrink_wrap, verify_plan, SavePlan};
use ipra_ir::builder::FunctionBuilder;
use ipra_ir::Function;
use ipra_machine::RegMask;

fn analyses(f: &Function) -> (Cfg, LoopInfo) {
    let cfg = Cfg::new(f);
    let dom = Dominators::compute(&cfg);
    let loops = LoopInfo::compute(&cfg, &dom);
    (cfg, loops)
}

const R: RegMask = RegMask(0b01);
const S: RegMask = RegMask(0b10);

/// Asserts the full save/restore placement, block by block.
fn assert_placement(plan: &SavePlan, save_at: &[RegMask], restore_at: &[RegMask]) {
    assert_eq!(plan.save_at, save_at, "save placement");
    assert_eq!(plan.restore_at, restore_at, "restore placement");
}

/// entry(0) -> mid(1) -> exit(2, ret)
fn straight_line() -> Function {
    let mut b = FunctionBuilder::new("line");
    let m = b.new_block();
    let x = b.new_block();
    b.br(m);
    b.switch_to(m);
    b.br(x);
    b.switch_to(x);
    b.ret(None);
    b.build()
}

/// entry(0) -> then(1) | else(2) -> join(3, ret)
fn diamond() -> Function {
    let mut b = FunctionBuilder::new("d");
    let t = b.new_block();
    let e = b.new_block();
    let j = b.new_block();
    let c = b.copy(1);
    b.cond_br(c, t, e);
    b.switch_to(t);
    b.br(j);
    b.switch_to(e);
    b.br(j);
    b.ret(None);
    b.build()
}

#[test]
fn straight_line_degenerates_to_entry_exit_convention() {
    let f = straight_line();
    let (cfg, loops) = analyses(&f);
    // The register appears only in the middle block, but with no branch
    // avoiding it, anticipability (Eq. 3.1) is true from the entry down:
    // shrink-wrapping buys nothing on straight-line code and the placement
    // collapses to the classic save-at-entry / restore-at-exit protocol.
    let app = vec![RegMask::EMPTY, R, RegMask::EMPTY];
    let plan = shrink_wrap(&cfg, &loops, &app);
    assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    assert_placement(
        &plan,
        &[R, RegMask::EMPTY, RegMask::EMPTY],
        &[RegMask::EMPTY, RegMask::EMPTY, R],
    );
    assert_eq!(
        plan.entry_spanning, R,
        "entry-spanning save is the §6 candidate"
    );
    assert_eq!(
        plan.iterations, 1,
        "no range extension on straight-line code"
    );
}

#[test]
fn diamond_two_registers_wrap_independently() {
    let f = diamond();
    let (cfg, loops) = analyses(&f);
    // R appears only on the then branch; S on both branches. Each register
    // gets its own placement from the same bit-vector solve: R stays
    // confined to block 1, S merges at the entry and the join.
    let mut app = vec![RegMask::EMPTY; 4];
    app[1] = R | S;
    app[2] = S;
    let plan = shrink_wrap(&cfg, &loops, &app);
    assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    assert_placement(
        &plan,
        &[S, R, RegMask::EMPTY, RegMask::EMPTY],
        &[RegMask::EMPTY, R, RegMask::EMPTY, S],
    );
    assert_eq!(plan.entry_spanning, S, "only S spans the entry");
}

#[test]
fn diamond_use_on_one_branch_stays_on_that_branch() {
    let f = diamond();
    let (cfg, loops) = analyses(&f);
    let mut app = vec![RegMask::EMPTY; 4];
    app[1] = R;
    let plan = shrink_wrap(&cfg, &loops, &app);
    assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    // The else path (0 -> 2 -> 3) must execute no save and no restore.
    assert_placement(
        &plan,
        &[RegMask::EMPTY, R, RegMask::EMPTY, RegMask::EMPTY],
        &[RegMask::EMPTY, R, RegMask::EMPTY, RegMask::EMPTY],
    );
}

#[test]
fn diamond_use_on_both_branches_merges_at_entry_and_join() {
    let f = diamond();
    let (cfg, loops) = analyses(&f);
    let mut app = vec![RegMask::EMPTY; 4];
    app[1] = R;
    app[2] = R;
    // Anticipated on every path out of the entry (Eq. 3.1), available at
    // the join (Eq. 3.3): one save at entry, one restore at the exit —
    // never one per branch, which would double-execute on neither but cost
    // two static copies of the protocol.
    let plan = shrink_wrap(&cfg, &loops, &app);
    assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    assert_placement(
        &plan,
        &[R, RegMask::EMPTY, RegMask::EMPTY, RegMask::EMPTY],
        &[RegMask::EMPTY, RegMask::EMPTY, RegMask::EMPTY, R],
    );
    assert_eq!(plan.entry_spanning, R);
}

/// The paper's Fig. 2(a): 0 -> {1, 2}; 1 -> {3, 4}; 2 -> 4; 3 and 4 exit.
/// APP in 2 and 4 only.
fn fig2() -> Function {
    let mut b = FunctionBuilder::new("fig2");
    let n1 = b.new_block();
    let n2 = b.new_block();
    let n3 = b.new_block();
    let n4 = b.new_block();
    let c = b.copy(1);
    b.cond_br(c, n1, n2);
    b.switch_to(n1);
    let c2 = b.copy(1);
    b.cond_br(c2, n3, n4);
    b.switch_to(n2);
    b.br(n4);
    b.ret(None); // n4
    b.switch_to(n3);
    b.ret(None);
    b.build()
}

#[test]
fn fig2_double_save_shape_extends_range_instead() {
    let f = fig2();
    let (cfg, loops) = analyses(&f);
    let mut app = vec![RegMask::EMPTY; 5];
    app[2] = R;
    app[4] = R;
    // Naive placement (Eq. 3.5 alone) would save at 2 and again at 4,
    // double-saving on the 0->2->4 path — the Fig. 2 situation. Range
    // extension widens APP until the save merges above the branch.
    let plan = shrink_wrap(&cfg, &loops, &app);
    assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    assert!(
        plan.iterations >= 2,
        "Fig. 2 needs extension, took {}",
        plan.iterations
    );
    assert_placement(
        &plan,
        &[
            R,
            RegMask::EMPTY,
            RegMask::EMPTY,
            RegMask::EMPTY,
            RegMask::EMPTY,
        ],
        &[RegMask::EMPTY, RegMask::EMPTY, RegMask::EMPTY, R, R],
    );
    // Every path saves exactly once at the entry; each exit restores once,
    // including the 0->1->3 path that never touches the register — the
    // price of avoiding the double save.
    assert_eq!(plan.entry_spanning, R);
}

/// entry(0) -> header(1) <-> body(2); header -> exit(3, ret).
fn loop_shape() -> Function {
    let mut b = FunctionBuilder::new("lp");
    let h = b.new_block();
    let body = b.new_block();
    let x = b.new_block();
    b.br(h);
    b.switch_to(h);
    let c = b.copy(1);
    b.cond_br(c, body, x);
    b.switch_to(body);
    b.br(h);
    b.switch_to(x);
    b.ret(None);
    b.build()
}

#[test]
fn loop_body_use_forces_save_outside_the_loop() {
    let f = loop_shape();
    let (cfg, loops) = analyses(&f);
    let mut app = vec![RegMask::EMPTY; 4];
    app[2] = R; // appears only inside the loop body
                // §5: placing the save/restore at the body would execute them once per
                // iteration. The loop constraint extends APP over the whole loop
                // {header, body}; anticipability then hoists the save to the entry
                // (the header's other predecessor is the back edge) and the restore
                // sinks to the loop exit.
    let plan = shrink_wrap(&cfg, &loops, &app);
    assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    assert_placement(
        &plan,
        &[R, RegMask::EMPTY, RegMask::EMPTY, RegMask::EMPTY],
        &[RegMask::EMPTY, RegMask::EMPTY, RegMask::EMPTY, R],
    );
    for (b, save) in plan.save_at.iter().enumerate() {
        let inside = !save.is_empty() || !plan.restore_at[b].is_empty();
        assert!(
            !(inside && loops.depth(ipra_ir::BlockId(b as u32)) > 0),
            "save/restore placed inside the loop at block {b}"
        );
    }
}
