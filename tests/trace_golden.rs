//! Golden tests for the observability trace: JSON shape and content of a
//! fixed demo module, and the zero-cost guarantee of the disabled path.

use ipra_driver::{compile_and_run, compile_and_run_traced, compile_only, Config};
use ipra_obs::json::{parse, Json};

const DEMO: &str = r#"
fn helper(a: int, b: int) -> int {
    var t: int = a * b;
    if t > 100 { t = t - 100; }
    return t + 1;
}
fn main() {
    var acc: int = 0;
    var i: int = 0;
    while i < 20 {
        acc = acc + helper(i, acc);
        i = i + 1;
    }
    print(acc);
}
"#;

const PHASES: [&str; 5] = ["ranges", "priority", "color", "shrink_wrap", "lower"];

#[test]
fn traced_json_has_every_phase_once_per_function() {
    let module = ipra_frontend::compile(DEMO).unwrap();
    let m = compile_and_run_traced(&module, &Config::c()).unwrap();
    let trace = m.trace.expect("traced run carries a trace");
    let doc = parse(&trace.to_json().render_pretty()).expect("emitted JSON parses");

    assert_eq!(doc.get("config").unwrap().as_str(), Some("C"));
    let funcs = doc.get("functions").unwrap().as_arr().unwrap();
    assert_eq!(funcs.len(), 2, "helper and main");

    for f in funcs {
        let name = f.get("name").unwrap().as_str().unwrap();
        let phases = f.get("phases").unwrap().as_arr().unwrap();

        // Every pipeline phase appears exactly once.
        for want in PHASES {
            let n = phases
                .iter()
                .filter(|p| p.get("name").unwrap().as_str() == Some(want))
                .count();
            assert_eq!(n, 1, "phase `{want}` of `{name}` appears {n} times");
        }
        assert_eq!(phases.len(), PHASES.len());

        // Non-negative durations and monotone start times in pipeline order
        // (lower runs in a later pass, so it starts after the others).
        let mut last_start = 0i64;
        for p in phases {
            let start = p.get("start_ns").unwrap().as_i64().unwrap();
            let dur = p.get("dur_ns").unwrap().as_i64().unwrap();
            assert!(
                start >= last_start,
                "phase starts must be monotone in `{name}`"
            );
            assert!(dur >= 0);
            last_start = start;
        }

        // Iteration counters present and >= 1.
        let counters = f.get("counters").unwrap();
        for c in ["dataflow.liveness.iterations", "shrink_wrap.iterations"] {
            let v = counters
                .get(c)
                .and_then(Json::as_i64)
                .unwrap_or_else(|| panic!("counter `{c}` missing for `{name}`"));
            assert!(v >= 1, "`{c}` of `{name}` is {v}");
        }

        // One decision per candidate vreg, each with a valid kind.
        let decisions = f.get("decisions").unwrap().as_arr().unwrap();
        assert!(!decisions.is_empty(), "`{name}` has candidate vregs");
        for d in decisions {
            let kind = d.get("kind").unwrap().as_str().unwrap();
            assert!(
                ["caller_saved", "callee_saved", "split", "mem"].contains(&kind),
                "bad decision kind `{kind}`"
            );
            assert!(d.get("priority").is_some());
        }

        // Simulator attribution is present and self-consistent.
        let sim = f.get("sim").unwrap();
        assert!(
            sim.get("cycles").unwrap().as_i64().unwrap() > 0,
            "`{name}` executed"
        );
    }

    // Decision count equals the compiler's candidate-vreg count per function.
    let compiled = compile_only(&module, &Config::c());
    for (ft, report) in trace.funcs.iter().zip(&compiled.reports) {
        assert_eq!(ft.name, report.name);
        assert_eq!(
            ft.decisions.len(),
            report.candidate_vregs,
            "one decision per candidate vreg in `{}`",
            ft.name
        );
    }

    // Whole-program simulator summary: the call edge main -> helper ran 20
    // times, and the depth histogram is consistent with it.
    let sim = doc.get("sim").unwrap();
    assert!(sim.get("cycles").unwrap().as_i64().unwrap() > 0);
    assert_eq!(sim.get("max_depth").unwrap().as_i64(), Some(2));
    // The depth histogram is a log₂ histogram object: 21 activations in
    // total, `main` once at depth 1 (bucket [1,2)), `helper` 20 times at
    // depth 2 (bucket [2,4)), exact max on the side.
    let hist = sim.get("depth_hist").unwrap();
    assert_eq!(hist.get("count").unwrap().as_i64(), Some(21));
    assert_eq!(hist.get("max").unwrap().as_i64(), Some(2));
    let buckets = hist.get("buckets").unwrap().as_arr().unwrap();
    let bucket_count = |lo: i64| {
        buckets
            .iter()
            .find(|b| b.get("lo").unwrap().as_i64() == Some(lo))
            .map(|b| b.get("count").unwrap().as_i64().unwrap())
            .unwrap_or(0)
    };
    assert_eq!(bucket_count(1), 1, "main enters once at depth 1");
    assert_eq!(bucket_count(2), 20, "helper enters 20 times at depth 2");

    // The penalty ledger attributes the save/restore traffic to edges and
    // sums exactly to the aggregate counts.
    let ledger = doc.get("penalty_by_edge").unwrap().as_arr().unwrap();
    assert!(!ledger.is_empty());
    let sum = |key: &str| -> i64 {
        ledger
            .iter()
            .map(|e| e.get(key).unwrap().as_i64().unwrap())
            .sum()
    };
    assert_eq!(
        sum("sr_loads"),
        sim.get("save_restore_loads").unwrap().as_i64().unwrap(),
        "ledger reconciles with aggregate loads"
    );
    assert_eq!(
        sum("sr_stores"),
        sim.get("save_restore_stores").unwrap().as_i64().unwrap(),
        "ledger reconciles with aggregate stores"
    );
    assert_eq!(
        sum("penalty_cycles"),
        sim.get("penalty_cycles").unwrap().as_i64().unwrap(),
        "ledger reconciles with aggregate penalty cycles"
    );
    let edges = sim.get("call_edges").unwrap().as_arr().unwrap();
    assert_eq!(edges.len(), 1);
    assert_eq!(edges[0].get("caller").unwrap().as_str(), Some("main"));
    assert_eq!(edges[0].get("callee").unwrap().as_str(), Some("helper"));
    assert_eq!(edges[0].get("count").unwrap().as_i64(), Some(20));
}

#[test]
fn disabled_sink_records_nothing_and_results_are_identical() {
    let module = ipra_frontend::compile(DEMO).unwrap();

    // Plain compilation with no sink: nothing may be recorded.
    let plain = compile_and_run(&module, &Config::c()).unwrap();
    assert!(plain.trace.is_none());
    assert!(
        ipra_obs::disable().is_empty(),
        "no trace collected on the disabled path"
    );

    // Tracing must not change what is compiled or measured.
    let traced = compile_and_run_traced(&module, &Config::c()).unwrap();
    assert_eq!(plain.output, traced.output);
    assert_eq!(
        plain.stats, traced.stats,
        "tracing must not perturb the simulation"
    );

    // And the sink is closed again afterwards.
    assert!(!ipra_obs::is_enabled());
}

/// Zeroes the scheduling-dependent wall-clock fields (`start_ns`,
/// `dur_ns`) everywhere in a trace document, leaving all structural
/// content — phase nesting, counters, decisions, sim attribution — intact.
fn normalize_times(j: &Json) -> Json {
    match j {
        Json::Arr(items) => Json::Arr(items.iter().map(normalize_times).collect()),
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| {
                    if k == "start_ns" || k == "dur_ns" {
                        (k.clone(), Json::Int(0))
                    } else {
                        (k.clone(), normalize_times(v))
                    }
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

/// The wave scheduler must be invisible in every output: compiling with
/// `jobs = 4` has to produce the same machine code, summaries, clobber
/// masks, reports and (timing aside) the same trace JSON as `jobs = 1`,
/// across a corpus that covers deep call DAGs, mutual recursion and
/// generator-produced programs.
///
/// (Under a forced `IPRA_JOBS` environment both sides resolve to the same
/// worker count, so the comparison still holds — it just stops being a
/// serial-vs-parallel check for that run.)
#[test]
fn wave_scheduler_output_is_identical_to_serial() {
    use ipra_workloads::synth;

    let mutual = r#"
        fn even(n: int) -> int { if n == 0 { return 1; } return odd(n - 1); }
        fn odd(n: int) -> int { if n == 0 { return 0; } return even(n - 1); }
        fn main() { print(even(10) + odd(7)); }
    "#;

    let mut corpus: Vec<(String, ipra_ir::Module)> = vec![
        ("demo".into(), ipra_frontend::compile(DEMO).unwrap()),
        ("mutual".into(), ipra_frontend::compile(mutual).unwrap()),
        ("tree".into(), synth::call_tree_program(3, 2, 4, 5)),
    ];
    for seed in 0..6u64 {
        let src = synth::random_source(seed, &synth::SourceConfig::default());
        corpus.push((
            format!("synth-{seed}"),
            ipra_frontend::compile(&src).unwrap(),
        ));
    }
    for w in ["nim", "stanford"] {
        let workload = ipra_workloads::by_name(w).unwrap();
        corpus.push((
            w.into(),
            ipra_workloads::compile_workload(workload).unwrap(),
        ));
    }

    let mut serial_cfg = Config::c();
    serial_cfg.opts.jobs = 1;
    let mut parallel_cfg = Config::c();
    parallel_cfg.opts.jobs = 4;

    for (name, module) in &corpus {
        let serial = compile_and_run_traced(module, &serial_cfg)
            .unwrap_or_else(|t| panic!("[{name}] serial trapped: {t}"));
        let parallel = compile_and_run_traced(module, &parallel_cfg)
            .unwrap_or_else(|t| panic!("[{name}] parallel trapped: {t}"));

        assert_eq!(serial.output, parallel.output, "[{name}] program output");
        assert_eq!(serial.stats, parallel.stats, "[{name}] simulator stats");

        let sc = compile_only(module, &serial_cfg);
        let pc = compile_only(module, &parallel_cfg);
        assert_eq!(
            format!("{:?}", sc.summaries),
            format!("{:?}", pc.summaries),
            "[{name}] summaries"
        );
        assert_eq!(sc.clobber_masks, pc.clobber_masks, "[{name}] clobber masks");
        assert_eq!(
            format!("{:?}", sc.reports),
            format!("{:?}", pc.reports),
            "[{name}] reports"
        );
        for ((_, sf), (_, pf)) in sc.mmodule.funcs.iter().zip(pc.mmodule.funcs.iter()) {
            let regs = &serial_cfg.target.regs;
            assert_eq!(
                sf.display_in(regs, &sc.mmodule).to_string(),
                pf.display_in(regs, &pc.mmodule).to_string(),
                "[{name}] machine code"
            );
        }

        let st = normalize_times(&serial.trace.unwrap().to_json()).render_pretty();
        let pt = normalize_times(&parallel.trace.unwrap().to_json()).render_pretty();
        assert_eq!(st, pt, "[{name}] trace JSON (timing normalized)");
    }
}

#[test]
fn trace_counts_match_function_reports() {
    let module = ipra_frontend::compile(DEMO).unwrap();
    let m = compile_and_run_traced(&module, &Config::c()).unwrap();
    let trace = m.trace.unwrap();
    let compiled = compile_only(&module, &Config::c());

    for (ft, report) in trace.funcs.iter().zip(&compiled.reports) {
        let shrink = ft
            .counters
            .iter()
            .find(|(n, _)| n == "shrink_wrap.iterations")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(shrink, u64::from(report.shrink_iterations));
        let split = ft.decisions.iter().filter(|d| d.kind == "split").count();
        let mem = ft.decisions.iter().filter(|d| d.kind == "mem").count();
        assert_eq!(split, report.split_vregs, "split count in `{}`", ft.name);
        assert_eq!(mem, report.memory_vregs, "mem count in `{}`", ft.name);
    }
}
