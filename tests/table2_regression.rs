//! Table 2 regression pins: `Target::with_class_limits` now routes
//! through the named-target registry's [`ConventionSpec`] plumbing, and
//! these tests pin the dynamic statistics of the D (7 caller-saved) and
//! E (7 callee-saved) columns on the two bundled workloads to the exact
//! values measured before that refactor — the register-file rebuild must
//! be bit-for-bit behavior-preserving, not merely plausible.

use ipra_driver::{compile_and_run, Config};
use ipra_machine::Target;

struct Pin {
    workload: &'static str,
    config: fn() -> Config,
    cycles: u64,
    insts: u64,
    calls: u64,
    loads: u64,
    stores: u64,
    scalar_mem: u64,
}

const PINS: &[Pin] = &[
    Pin {
        workload: "nim",
        config: Config::d,
        cycles: 2_203_369,
        insts: 1_406_145,
        calls: 89_029,
        loads: 186_201,
        stores: 147_346,
        scalar_mem: 305_965,
    },
    Pin {
        workload: "nim",
        config: Config::e,
        cycles: 2_221_701,
        insts: 1_431_724,
        calls: 89_029,
        loads: 178_954,
        stores: 152_402,
        scalar_mem: 303_774,
    },
    Pin {
        workload: "stanford",
        config: Config::d,
        cycles: 1_243_353,
        insts: 941_464,
        calls: 29_071,
        loads: 139_319,
        stores: 108_264,
        scalar_mem: 127_098,
    },
    Pin {
        workload: "stanford",
        config: Config::e,
        cycles: 1_361_475,
        insts: 1_020_212,
        calls: 29_071,
        loads: 178_693,
        stores: 147_638,
        scalar_mem: 205_846,
    },
];

#[test]
fn class_limited_targets_reproduce_pre_registry_statistics() {
    for pin in PINS {
        let w = ipra_workloads::by_name(pin.workload).unwrap();
        let module = ipra_workloads::compile_workload(w).unwrap();
        let config = (pin.config)();
        let m = compile_and_run(&module, &config)
            .unwrap_or_else(|t| panic!("[{}/{}] trapped: {t}", pin.workload, config.name));
        let tag = format!("{}/{}", pin.workload, config.name);
        assert_eq!(m.stats.cycles, pin.cycles, "{tag} cycles");
        assert_eq!(m.stats.insts, pin.insts, "{tag} insts");
        assert_eq!(m.stats.calls, pin.calls, "{tag} calls");
        assert_eq!(m.stats.total_loads(), pin.loads, "{tag} loads");
        assert_eq!(m.stats.total_stores(), pin.stores, "{tag} stores");
        assert_eq!(m.stats.scalar_mem(), pin.scalar_mem, "{tag} scalar mem");
    }
}

/// The registry's `table2-d`/`table2-e` names and the `with_class_limits`
/// constructor must describe the same register files.
#[test]
fn registry_table2_names_alias_with_class_limits() {
    assert_eq!(
        Target::by_name("table2-d").unwrap().regs.fingerprint(),
        Target::with_class_limits(7, 0).regs.fingerprint()
    );
    assert_eq!(
        Target::by_name("table2-e").unwrap().regs.fingerprint(),
        Target::with_class_limits(0, 7).regs.fingerprint()
    );
    assert_ne!(
        Target::with_class_limits(7, 0).regs.fingerprint(),
        Target::with_class_limits(0, 7).regs.fingerprint()
    );
}
