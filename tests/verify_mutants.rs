//! Mutation tests: the static verifier must have teeth. Each test takes a
//! healthy compile, breaks one register contract in the lowered module (or
//! lies in a published summary), and asserts the verifier rejects the
//! mutant. A verifier that accepts any of these would also wave through
//! the real bugs it exists to catch.

use ipra_driver::{compile_only, Config};
use ipra_ir::FuncId;
use ipra_machine::{FuncSummary, MAddress, MInst, MModule, MOperand, PReg, ParamLoc, RegMask};
use ipra_verify::{verify_module, CheckKind, Violation};

/// Straight-line caller with several values live across one call: under the
/// default convention they land in callee-saved registers, so `busy` gets
/// shrink-wrap saves/restores; under configuration C they stay in
/// caller-saved registers outside `leaf`'s narrow clobber mask.
const SOURCE: &str = r#"
fn leaf(a: int, b: int) -> int {
    return a * 2 + b;
}
fn busy(a: int, b: int) -> int {
    var x: int = a + b;
    var y: int = a - b;
    var z: int = a * b;
    var w: int = a + 7;
    var v: int = leaf(x, y);
    return v + x + y + z + w;
}
fn main() {
    print(busy(3, 4));
}
"#;

struct Compiled {
    mmodule: MModule,
    summaries: Vec<FuncSummary>,
    config: Config,
}

fn compile(config: Config) -> Compiled {
    let module = ipra_frontend::compile(SOURCE).expect("fixture compiles");
    let c = compile_only(&module, &config);
    Compiled {
        mmodule: c.mmodule,
        summaries: c.summaries,
        config,
    }
}

fn verify(c: &Compiled) -> Vec<Violation> {
    verify_module(&c.mmodule, &c.config.target.regs, &c.summaries)
}

fn assert_rejected(c: &Compiled, kinds: &[CheckKind], what: &str) {
    let violations = verify(c);
    assert!(!violations.is_empty(), "{what}: mutant accepted");
    assert!(
        violations.iter().any(|v| kinds.contains(&v.kind)),
        "{what}: expected one of {kinds:?}, got: {}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Is this a load from (or store to) a shrink-wrap/link save slot?
fn save_slot_of(m: &MModule, fid: FuncId, addr: &MAddress) -> bool {
    match addr {
        MAddress::Frame { slot, .. } => m.funcs[fid].frame[*slot].label.starts_with("save"),
        _ => false,
    }
}

/// Does `inst` (over)write register `r`?
fn writes(inst: &MInst, r: PReg, ra: PReg) -> bool {
    match inst {
        MInst::Copy { dst, .. }
        | MInst::Bin { dst, .. }
        | MInst::Un { dst, .. }
        | MInst::Load { dst, .. }
        | MInst::FuncAddr { dst, .. } => *dst == r,
        // Every call clobbers the link register.
        MInst::Call { .. } => r == ra,
        MInst::Store { .. } | MInst::Print { .. } => false,
    }
}

#[test]
fn healthy_fixture_verifies_under_every_config() {
    for config in ipra_driver::differential::all_configs() {
        let c = compile(config);
        let violations = verify(&c);
        assert!(
            violations.is_empty(),
            "clean compile under {} rejected: {}",
            c.config.name,
            violations[0]
        );
    }
}

/// Mutant: delete one restore (a `SaveRestore` load from a `save_*` slot).
/// The register never gets its entry value back, so preservation — or the
/// exit-while-saved discipline — must trip.
#[test]
fn deleting_a_restore_is_rejected() {
    let mut c = compile(Config::o2_base());
    let mut deleted = false;
    'outer: for fid in c.mmodule.funcs.ids().collect::<Vec<_>>() {
        for b in c.mmodule.funcs[fid].blocks.ids().collect::<Vec<_>>() {
            let pos = c.mmodule.funcs[fid].blocks[b].insts.iter().position(
                |i| matches!(i, MInst::Load { addr, .. } if save_slot_of(&c.mmodule, fid, addr)),
            );
            if let Some(i) = pos {
                c.mmodule.funcs[fid].blocks[b].insts.remove(i);
                deleted = true;
                break 'outer;
            }
        }
    }
    assert!(deleted, "fixture should contain a restore to delete");
    assert_rejected(
        &c,
        &[CheckKind::Preservation, CheckKind::SaveDiscipline],
        "deleted restore",
    );
}

/// Mutant: move a save past the next write that clobbers the saved
/// register. The slot then holds garbage instead of the entry value —
/// write-before-save and failed preservation on every path through it.
#[test]
fn reordering_a_save_past_a_clobbering_write_is_rejected() {
    let mut c = compile(Config::o2_base());
    let ra = c.config.target.regs.ra();
    let mut moved = false;
    'outer: for fid in c.mmodule.funcs.ids().collect::<Vec<_>>() {
        for b in c.mmodule.funcs[fid].blocks.ids().collect::<Vec<_>>() {
            let insts = &c.mmodule.funcs[fid].blocks[b].insts;
            let Some((i, r)) = insts.iter().enumerate().find_map(|(i, inst)| match inst {
                MInst::Store {
                    src: MOperand::Reg(r),
                    addr,
                    ..
                } if save_slot_of(&c.mmodule, fid, addr) => Some((i, *r)),
                _ => None,
            }) else {
                continue;
            };
            let Some(j) = (i + 1..insts.len()).find(|&j| writes(&insts[j], r, ra)) else {
                continue;
            };
            let insts = &mut c.mmodule.funcs[fid].blocks[b].insts;
            let save = insts.remove(i);
            insts.insert(j, save);
            moved = true;
            break 'outer;
        }
    }
    assert!(
        moved,
        "fixture should contain a save before a clobbering write"
    );
    assert_rejected(
        &c,
        &[CheckKind::Preservation, CheckKind::SaveDiscipline],
        "reordered save",
    );
}

/// Mutant: widen a callee's published clobber mask after allocation. The
/// caller planned against the narrow mask, so values it left in registers
/// across the call are now clobberable — the live-across-call check must
/// trip in the caller.
#[test]
fn widening_a_clobber_mask_is_rejected() {
    let mut c = compile(Config::c());
    let leaf = func_named(&c.mmodule, "leaf");
    let mut wide = c.config.target.regs.default_clobbers();
    for r in c.config.target.regs.allocatable() {
        wide.insert(*r);
    }
    c.summaries[leaf.index()].clobbers = c.summaries[leaf.index()].clobbers | wide;
    assert_rejected(&c, &[CheckKind::LiveAcrossCall], "widened clobber mask");
}

/// Mutant: rebind a callee parameter to an outgoing stack cell the caller
/// never writes. Both the stack-argument count and the definite-write
/// check on the cell disagree with the staged call.
#[test]
fn rebinding_a_parameter_to_an_unwritten_stack_cell_is_rejected() {
    let mut c = compile(Config::c());
    let leaf = func_named(&c.mmodule, "leaf");
    c.summaries[leaf.index()].param_locs[0] = ParamLoc::Stack(7);
    assert_rejected(&c, &[CheckKind::ArgBinding], "rebound parameter");
}

/// Mutant: claim the caller preserves a register it actually destroys, by
/// shrinking its own published clobber mask. The register's writes are no
/// longer licensed, and it does not hold its entry value at return.
#[test]
fn shrinking_a_functions_own_clobber_mask_is_rejected() {
    let mut c = compile(Config::o2_base());
    let busy = func_named(&c.mmodule, "busy");
    let regs = &c.config.target.regs;
    // Keep only the registers the convention always allows: the exempt set.
    let mut narrow = RegMask::single(regs.ret_reg());
    narrow.insert(regs.ra());
    for s in regs.scratch() {
        narrow.insert(s);
    }
    c.summaries[busy.index()].clobbers = c.summaries[busy.index()].clobbers.intersect(narrow);
    assert_rejected(
        &c,
        &[CheckKind::Preservation, CheckKind::SaveDiscipline],
        "shrunk own clobber mask",
    );
}

fn func_named(m: &MModule, name: &str) -> FuncId {
    m.funcs
        .iter()
        .find(|(_, f)| f.name == name)
        .map(|(id, _)| id)
        .unwrap_or_else(|| panic!("no function named {name}"))
}
