//! Property-based tests over the whole pipeline, on a hand-rolled
//! harness: a splitmix64 PRNG drives the generator seeds and shapes, and
//! a greedy shrink loop reports the smallest failing shape when a
//! property breaks. No external crates — the harness is a for-loop, not
//! a framework — so the `proptest` feature leg builds and runs fully
//! offline. It stays non-default only because it multiplies CI time
//! (hundreds of full compile+simulate cycles), not because it needs the
//! network. Enable with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

use ipra_driver::{compile_and_run, Config};
use ipra_workloads::synth::{random_source, SourceConfig};

const CASES: u64 = 48;

/// splitmix64: tiny, statistically solid, and deterministic across
/// platforms — the same seeds fail on every machine.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

fn arb_shape(rng: &mut Rng) -> SourceConfig {
    SourceConfig {
        num_funcs: rng.range(1, 8),
        num_globals: rng.range(0, 6),
        num_arrays: rng.range(0, 3),
        stmts_per_func: rng.range(1, 10),
        max_depth: rng.range(0, 4),
    }
}

/// Candidate smaller shapes: each field stepped toward its minimum, one
/// at a time (the classic one-dimensional shrink lattice).
fn shrink_steps(shape: &SourceConfig) -> Vec<SourceConfig> {
    let mut steps = Vec::new();
    let mut push = |f: fn(&mut SourceConfig) -> &mut usize, min: usize, shape: &SourceConfig| {
        let mut s = shape.clone();
        let v = f(&mut s);
        if *v > min {
            *v -= 1;
            steps.push(s);
        }
    };
    push(|s| &mut s.num_funcs, 1, shape);
    push(|s| &mut s.num_globals, 0, shape);
    push(|s| &mut s.num_arrays, 0, shape);
    push(|s| &mut s.stmts_per_func, 1, shape);
    push(|s| &mut s.max_depth, 0, shape);
    steps
}

/// Runs `prop` over `CASES` generated (seed, shape) pairs. On failure,
/// greedily shrinks the shape while the property still fails and panics
/// with the smallest reproducer.
fn check(name: &str, prop: impl Fn(u64, &SourceConfig) -> Result<(), String>) {
    let mut rng = Rng(0x1b7a_c0de ^ name.len() as u64);
    for _ in 0..CASES {
        let seed = rng.next() % 10_000;
        let mut shape = arb_shape(&mut rng);
        let Err(mut err) = prop(seed, &shape) else {
            continue;
        };
        // Greedy descent: take the first smaller shape that still fails
        // until none does.
        'shrinking: loop {
            for smaller in shrink_steps(&shape) {
                if let Err(e) = prop(seed, &smaller) {
                    shape = smaller;
                    err = e;
                    continue 'shrinking;
                }
            }
            break;
        }
        panic!("property `{name}` failed\n  seed: {seed}\n  minimal shape: {shape:?}\n  {err}");
    }
}

/// The central soundness property: optimized machine code prints what
/// the IR interpreter prints, under the paper configs and the inliner.
#[test]
fn compiled_output_matches_interpreter() {
    check("interp-match", |seed, shape| {
        let src = random_source(seed, shape);
        let module = ipra_frontend::compile(&src).expect("generator emits valid Mini");
        let expected = ipra_ir::interp::run_module(&module).expect("generated programs terminate");
        for config in [Config::o2_base(), Config::c(), Config::inline_c()] {
            let m =
                compile_and_run(&module, &config).map_err(|t| format!("{}: {t}", config.name))?;
            if m.output != expected.output {
                return Err(format!("config {}: output diverged", config.name));
            }
        }
        Ok(())
    });
}

/// Determinism: compiling twice yields identical measurements.
#[test]
fn compilation_is_deterministic() {
    check("determinism", |seed, shape| {
        let src = random_source(seed, shape);
        let module = ipra_frontend::compile(&src).expect("valid");
        let a = compile_and_run(&module, &Config::c()).expect("runs");
        let b = compile_and_run(&module, &Config::c()).expect("runs");
        if a.output != b.output
            || a.stats.cycles != b.stats.cycles
            || a.stats.loads_by_class != b.stats.loads_by_class
        {
            return Err("two compiles of the same module measured differently".into());
        }
        Ok(())
    });
}

/// Register allocation only ever removes scalar memory traffic relative
/// to the unallocated baseline.
#[test]
fn allocation_reduces_scalar_traffic() {
    check("scalar-traffic", |seed, shape| {
        let src = random_source(seed, shape);
        let module = ipra_frontend::compile(&src).expect("valid");
        let none = compile_and_run(&module, &Config::no_alloc()).expect("runs");
        let o2 = compile_and_run(&module, &Config::o2_base()).expect("runs");
        if o2.scalar_mem() > none.scalar_mem() {
            return Err(format!(
                "allocation added scalar traffic: {} vs {}",
                o2.scalar_mem(),
                none.scalar_mem()
            ));
        }
        Ok(())
    });
}
