//! Property-based tests over the whole pipeline: proptest drives the
//! generator seeds and shapes, shrinking to the smallest failing
//! configuration when a property breaks.
//! Gated behind the non-default `proptest` feature: the external
//! `proptest` crate is not vendored, so offline builds compile this
//! file to nothing. Enable with `--features proptest` after adding
//! the dev-dependency back (requires network access).
#![cfg(feature = "proptest")]

use ipra_driver::{compile_and_run, Config};
use ipra_workloads::synth::{random_source, SourceConfig};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = SourceConfig> {
    (1usize..8, 0usize..6, 0usize..3, 1usize..10, 0usize..4).prop_map(
        |(num_funcs, num_globals, num_arrays, stmts_per_func, max_depth)| SourceConfig {
            num_funcs,
            num_globals,
            num_arrays,
            stmts_per_func,
            max_depth,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The central soundness property: optimized machine code prints what
    /// the IR interpreter prints, and never violates its published
    /// register-preservation summary.
    #[test]
    fn compiled_output_matches_interpreter(seed in 0u64..10_000, shape in arb_shape()) {
        let src = random_source(seed, &shape);
        let module = ipra_frontend::compile(&src).expect("generator emits valid Mini");
        let expected = ipra_ir::interp::run_module(&module).expect("generated programs terminate");
        for config in [Config::o2_base(), Config::c()] {
            let m = compile_and_run(&module, &config)
                .map_err(|t| TestCaseError::fail(format!("{}: {t}", config.name)))?;
            prop_assert_eq!(&m.output, &expected.output, "config {}", config.name);
        }
    }

    /// Determinism: compiling twice yields identical measurements.
    #[test]
    fn compilation_is_deterministic(seed in 0u64..10_000) {
        let src = random_source(seed, &SourceConfig::default());
        let module = ipra_frontend::compile(&src).expect("valid");
        let a = compile_and_run(&module, &Config::c()).expect("runs");
        let b = compile_and_run(&module, &Config::c()).expect("runs");
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.stats.cycles, b.stats.cycles);
        prop_assert_eq!(a.stats.loads_by_class, b.stats.loads_by_class);
    }

    /// Register allocation only ever removes scalar memory traffic
    /// relative to the unallocated baseline.
    #[test]
    fn allocation_reduces_scalar_traffic(seed in 0u64..10_000) {
        let src = random_source(seed, &SourceConfig::default());
        let module = ipra_frontend::compile(&src).expect("valid");
        let none = compile_and_run(&module, &Config::no_alloc()).expect("runs");
        let o2 = compile_and_run(&module, &Config::o2_base()).expect("runs");
        prop_assert!(o2.scalar_mem() <= none.scalar_mem(),
            "allocation added scalar traffic: {} vs {}", o2.scalar_mem(), none.scalar_mem());
    }
}
