//! Golden tests for the three-leg inlining × IPRA ablation
//! (`off` / `inline` / `inline+IPRA`, see `ipra_bench::inline_ablation`):
//! the rendered JSON document must be byte-identical across `--jobs 1`
//! and `--jobs 4`, and across cold and warm allocation caches; the
//! ablation invariant (inline+IPRA pays no more penalty than off) must
//! hold on every corpus program; and two workloads' inliner site counts
//! are pinned exactly, so any change to ranking, budget accounting or
//! candidate legality shows up as a diff in this file rather than as a
//! silent behavior drift.

use ipra_bench::inline_ablation::{ablation_to_json, run_ablation_modules};

/// The same 11-program corpus as `trace_golden` and `cache_golden`: the
/// demo, mutual recursion, a deep call DAG, six generator programs and
/// two real workloads.
fn corpus() -> Vec<(String, ipra_ir::Module)> {
    use ipra_workloads::synth;

    let demo = r#"
        fn helper(a: int, b: int) -> int {
            var t: int = a * b;
            if t > 100 { t = t - 100; }
            return t + 1;
        }
        fn main() {
            var acc: int = 0;
            var i: int = 0;
            while i < 20 {
                acc = acc + helper(i, acc);
                i = i + 1;
            }
            print(acc);
        }
    "#;
    let mutual = r#"
        fn even(n: int) -> int { if n == 0 { return 1; } return odd(n - 1); }
        fn odd(n: int) -> int { if n == 0 { return 0; } return even(n - 1); }
        fn main() { print(even(10) + odd(7)); }
    "#;
    let mut corpus: Vec<(String, ipra_ir::Module)> = vec![
        ("demo".into(), ipra_frontend::compile(demo).unwrap()),
        ("mutual".into(), ipra_frontend::compile(mutual).unwrap()),
        ("tree".into(), synth::call_tree_program(3, 2, 4, 5)),
    ];
    for seed in 0..6u64 {
        let src = synth::random_source(seed, &synth::SourceConfig::default());
        corpus.push((
            format!("synth-{seed}"),
            ipra_frontend::compile(&src).unwrap(),
        ));
    }
    for w in ["nim", "stanford"] {
        let workload = ipra_workloads::by_name(w).unwrap();
        corpus.push((
            w.into(),
            ipra_workloads::compile_workload(workload).unwrap(),
        ));
    }
    corpus
}

/// The full ablation document must not depend on scheduling (`jobs`) or
/// on allocation-cache temperature: four runs — jobs 1, jobs 4, cold
/// cache, warm cache over the same directory — render byte-identical
/// JSON.
#[test]
fn ablation_json_is_byte_identical_across_jobs_and_cache_temperature() {
    let corpus = corpus();
    let doc = |rows: &_| ablation_to_json(rows).render_pretty();

    let jobs1 = doc(&run_ablation_modules(&corpus, Some(1), None).expect("jobs=1 runs"));
    let jobs4 = doc(&run_ablation_modules(&corpus, Some(4), None).expect("jobs=4 runs"));
    assert_eq!(
        jobs1, jobs4,
        "ablation JSON differs between jobs=1 and jobs=4"
    );

    let dir = std::env::temp_dir().join(format!("ipra-inline-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cold = doc(&run_ablation_modules(&corpus, Some(1), Some(&dir)).expect("cold cache runs"));
    let warm = doc(&run_ablation_modules(&corpus, Some(1), Some(&dir)).expect("warm cache runs"));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        jobs1, cold,
        "ablation JSON differs between no-cache and cold cache"
    );
    assert_eq!(
        cold, warm,
        "ablation JSON differs between cold and warm cache"
    );
}

/// The budget gate's invariant on this corpus: with IPRA on, inlining
/// must not add save/restore penalty in aggregate (individual tiny
/// programs may pay a few cycles more when splicing shifts register
/// pressure — `bench --check-budgets` gates the total, and so does this
/// test), the call-heaviest real workload (`nim`) must improve outright,
/// and the corpus must actually exercise the inliner.
#[test]
fn inline_plus_ipra_never_pays_more_penalty_than_off() {
    let rows = run_ablation_modules(&corpus(), Some(1), None).expect("ablation runs");
    let total = |leg: usize| -> u64 { rows.iter().map(|r| r.legs[leg].penalty_cycles).sum() };
    assert!(
        total(2) <= total(0),
        "aggregate inline+IPRA penalty {} exceeds off-leg penalty {}",
        total(2),
        total(0)
    );
    for r in rows.iter().filter(|r| r.workload == "nim") {
        assert!(
            r.legs[2].penalty_cycles < r.legs[0].penalty_cycles,
            "[{}] inline+IPRA must strictly beat the off leg ({} vs {})",
            r.workload,
            r.legs[2].penalty_cycles,
            r.legs[0].penalty_cycles
        );
    }
    let inlined_total: u64 = rows.iter().map(|r| r.legs[2].sites_inlined).sum();
    assert!(inlined_total > 0, "corpus never exercised the inliner");
}

/// Exact inliner decisions on the two real workloads, pinned. A change
/// to the ranking, the budget arithmetic, or candidate legality must
/// update these numbers consciously — the budget off-by-one mutant in
/// `inline_mutants` is precisely the kind of drift this pin catches.
#[test]
fn site_counts_are_pinned_for_the_real_workloads() {
    let corpus: Vec<_> = corpus()
        .into_iter()
        .filter(|(n, _)| n == "nim" || n == "stanford")
        .collect();
    let rows = run_ablation_modules(&corpus, Some(1), None).expect("ablation runs");
    let pin: Vec<(String, u64, u64, u64)> = rows
        .iter()
        .map(|r| {
            let l = &r.legs[2]; // inline+IPRA
            (
                r.workload.clone(),
                l.sites_considered,
                l.sites_inlined,
                l.budget_stops,
            )
        })
        .collect();
    assert_eq!(
        pin,
        vec![
            ("nim".to_string(), 13, 5, 1),
            ("stanford".to_string(), 29, 12, 3),
        ],
        "(workload, sites_considered, sites_inlined, budget_stops) drifted"
    );
}
