//! Differential fuzzing: random well-formed Mini programs must behave
//! identically under the reference interpreter and under every compilation
//! configuration, with the register-preservation checker on — and every
//! compile must additionally pass the static register-contract verifier
//! (the fuzzer's second oracle, which covers the paths the dynamic run
//! does not take).

use ipra_driver::{compile_and_run, compile_only, Config};
use ipra_workloads::synth::{random_source, shaped_source, ShapeClass, ShapeConfig, SourceConfig};

fn check_seed(seed: u64, cfg: &SourceConfig, configs: &[Config]) {
    let src = random_source(seed, cfg);
    let module = ipra_frontend::compile(&src)
        .unwrap_or_else(|e| panic!("seed {seed}: front end {e}\n{src}"));
    let expected = ipra_ir::interp::run_module(&module)
        .unwrap_or_else(|t| panic!("seed {seed}: interpreter {t}\n{src}"));
    for c in configs {
        let m = compile_and_run(&module, c)
            .unwrap_or_else(|t| panic!("seed {seed} config {}: {t}\n{src}", c.name));
        assert_eq!(
            m.output, expected.output,
            "seed {seed} config {}\n{src}",
            c.name
        );
    }
}

#[test]
fn random_programs_default_shape() {
    let configs = [
        Config::o2_base(),
        Config::a(),
        Config::b(),
        Config::c(),
        Config::d(),
        Config::e(),
    ];
    for seed in 0..60 {
        check_seed(seed, &SourceConfig::default(), &configs);
    }
}

#[test]
fn random_programs_wide_and_flat() {
    // Many functions, little nesting: stresses summaries and param binding.
    let cfg = SourceConfig {
        num_funcs: 12,
        num_globals: 6,
        num_arrays: 1,
        stmts_per_func: 5,
        max_depth: 1,
    };
    let configs = [Config::o2_base(), Config::c()];
    for seed in 100..140 {
        check_seed(seed, &cfg, &configs);
    }
}

#[test]
fn random_programs_deep_and_branchy() {
    // Deep nesting: stresses shrink-wrap placement and splitting.
    let cfg = SourceConfig {
        num_funcs: 4,
        num_globals: 3,
        num_arrays: 2,
        stmts_per_func: 10,
        max_depth: 5,
    };
    let configs = [Config::o2_base(), Config::a(), Config::c()];
    for seed in 200..240 {
        check_seed(seed, &cfg, &configs);
    }
}

#[test]
fn random_programs_under_register_starvation() {
    // Tiny register files force heavy spilling and splitting everywhere.
    let mut tiny = Config::c();
    tiny.name = "tiny".into();
    tiny.target = ipra_machine::Target::with_class_limits(2, 1);
    let mut tiny_intra = Config::o2_base();
    tiny_intra.name = "tiny-intra".into();
    tiny_intra.target = ipra_machine::Target::with_class_limits(2, 1);
    let configs = [tiny, tiny_intra];
    for seed in 300..340 {
        check_seed(seed, &SourceConfig::default(), &configs);
    }
}

/// Proves a compile clean under the static verifier, panicking with the
/// source on any violation — the all-paths counterpart of `check_seed`.
fn check_static(what: &str, src: &str, configs: &[Config]) {
    let module =
        ipra_frontend::compile(src).unwrap_or_else(|e| panic!("{what}: front end {e}\n{src}"));
    for c in configs {
        let compiled = compile_only(&module, c);
        let violations =
            ipra_verify::verify_module(&compiled.mmodule, &c.target.regs, &compiled.summaries);
        assert!(
            violations.is_empty(),
            "{what} config {}: {}\n{src}",
            c.name,
            violations[0]
        );
    }
}

#[test]
fn shaped_programs_verify_statically_under_all_configs() {
    // The shaped generator's five classes stress the verifier's corners:
    // recursion (open callees), fan-out (many sites per summary), function
    // pointers (indirect calls under the default convention) and wide
    // arities (stack-argument bindings). Static checking needs no oracle
    // run, so every seed is checked under every config, including ones the
    // dynamic differential tests sample more sparsely.
    let configs = ipra_driver::differential::all_configs();
    for class in ShapeClass::ALL {
        let cfg = ShapeConfig::new(class);
        for seed in 0..20 {
            let src = shaped_source(seed, &cfg);
            check_static(&format!("shape {class} seed {seed}"), &src, &configs);
        }
    }
}

#[test]
fn random_programs_verify_statically_under_register_starvation() {
    // Heavy spilling and live-range splitting produce the densest
    // save/restore traffic — the hardest input for the classifier.
    let mut tiny = Config::c();
    tiny.name = "tiny".into();
    tiny.target = ipra_machine::Target::with_class_limits(2, 1);
    let mut tiny_intra = Config::o2_base();
    tiny_intra.name = "tiny-intra".into();
    tiny_intra.target = ipra_machine::Target::with_class_limits(2, 1);
    let configs = [tiny, tiny_intra];
    for seed in 300..340 {
        let src = random_source(seed, &SourceConfig::default());
        check_static(&format!("seed {seed}"), &src, &configs);
    }
}
