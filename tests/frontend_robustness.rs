//! Error-path robustness for the frontend: feeding it damaged input must
//! produce an `Err`, never a panic. The fuzz driver relies on this — a
//! byte-level mutation of a generated program lands here, and a frontend
//! rejection must be reportable as an ordinary differential failure.
//!
//! All mutations are driven by fixed seeds, so a failure names the exact
//! (seed, mutation) pair that produced it.

use ipra_workloads::synth::{shaped_source, ShapeClass, ShapeConfig, XorShift64Star};

/// Applies one random byte-level mutation: overwrite, insert, delete, or
/// truncate. The result is forced back to UTF-8 lossily, like a fuzzer
/// reading an on-disk repro would.
fn mutate(src: &str, rng: &mut XorShift64Star) -> String {
    let mut bytes = src.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let at = rng.below(bytes.len() as u64) as usize;
    match rng.below(4) {
        0 => bytes[at] = rng.below(256) as u8,
        1 => bytes.insert(at, rng.below(256) as u8),
        2 => {
            bytes.remove(at);
        }
        _ => bytes.truncate(at),
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Byte-mutated generated programs must compile or be rejected with an
/// error — the frontend must not panic, whatever the damage. Each base
/// program takes a burst of stacked mutations so the input drifts far
/// from well-formed.
#[test]
fn mutated_sources_never_panic_the_frontend() {
    for class in ShapeClass::ALL {
        let cfg = ShapeConfig::new(class);
        for seed in 0..8u64 {
            let base = shaped_source(seed, &cfg);
            let mut rng = XorShift64Star::new(seed ^ 0xBAD_BEEF ^ (class as u64) << 48);
            let mut src = base;
            for step in 0..24 {
                src = mutate(&src, &mut rng);
                // Err is fine; only a panic (which aborts the test) or a
                // compile of truly empty input would be a bug.
                let _ = std::panic::catch_unwind(|| ipra_frontend::compile(&src))
                    .unwrap_or_else(|_| panic!("{class} seed {seed} step {step} panicked:\n{src}"));
            }
        }
    }
}

/// A grab-bag of adversarial fixed inputs: empty, unterminated constructs,
/// deep nesting, stray NULs, huge literals. All must return `Err` (or a
/// valid module), never panic.
#[test]
fn adversarial_fixed_inputs_are_rejected_gracefully() {
    let deep_parens = format!(
        "fn main() {{ print({}1{}); }}",
        "(".repeat(300),
        ")".repeat(300)
    );
    let cases: Vec<String> = vec![
        String::new(),
        "fn".into(),
        "fn main(".into(),
        "fn main() { print(1); ".into(),
        "fn main() { var x: int = 99999999999999999999999999; }".into(),
        "fn main() { print(&); }".into(),
        "fn main() { print(1 + ); }".into(),
        "fn f() -> int { } fn main() { print(f()); }".into(),
        "fn main() { \u{0} }".into(),
        "fn main() { } fn main() { }".into(),
        "var g: fnptr = &missing; fn main() { }".into(),
        deep_parens,
    ];
    for (i, src) in cases.iter().enumerate() {
        let _ = std::panic::catch_unwind(|| ipra_frontend::compile(src))
            .unwrap_or_else(|_| panic!("adversarial case {i} panicked:\n{src}"));
    }
}
