//! Golden determinism tests for the convention-search report: over the
//! same 11-program corpus the cache and trace golden tests use, the
//! rendered JSON and markdown must be byte-identical across wave-scheduler
//! worker counts (`--jobs 1` vs `--jobs 4`) and across cache temperature
//! (a cold compile populating a fresh `--cache-dir` vs the warm replay
//! from it). CI diffs the `convsearch --small` artifact across its two
//! matrix legs for the same property at the binary level.

use std::path::PathBuf;

use ipra_driver::convsearch::{
    corpus_program, default_shapes, grid_points, run_search, CorpusProgram, SearchOptions,
};
use ipra_workloads::synth;

const DEMO: &str = r#"
fn helper(a: int, b: int) -> int {
    var t: int = a * b;
    if t > 100 { t = t - 100; }
    return t + 1;
}
fn main() {
    var acc: int = 0;
    var i: int = 0;
    while i < 20 {
        acc = acc + helper(i, acc);
        i = i + 1;
    }
    print(acc);
}
"#;

/// The same 11-program corpus the cache and wave golden tests use: the
/// demo, mutual recursion, a call tree, six generator programs and the
/// two bundled benchmark workloads.
fn corpus() -> Vec<CorpusProgram> {
    let mutual = r#"
        fn even(n: int) -> int { if n == 0 { return 1; } return odd(n - 1); }
        fn odd(n: int) -> int { if n == 0 { return 0; } return even(n - 1); }
        fn main() { print(even(10) + odd(7)); }
    "#;
    let mut corpus = vec![
        corpus_program("demo", ipra_frontend::compile(DEMO).unwrap()).unwrap(),
        corpus_program("mutual", ipra_frontend::compile(mutual).unwrap()).unwrap(),
        corpus_program("tree", synth::call_tree_program(3, 2, 4, 5)).unwrap(),
    ];
    for seed in 0..6u64 {
        let src = synth::random_source(seed, &synth::SourceConfig::default());
        corpus.push(
            corpus_program(
                &format!("synth-{seed}"),
                ipra_frontend::compile(&src).unwrap(),
            )
            .unwrap(),
        );
    }
    for w in ["nim", "stanford"] {
        let workload = ipra_workloads::by_name(w).unwrap();
        corpus
            .push(corpus_program(w, ipra_workloads::compile_workload(workload).unwrap()).unwrap());
    }
    corpus
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ipra-convsearch-{tag}-{}", std::process::id()))
}

/// The sparse sweep over both default shapes must pass every point on the
/// full corpus, and its report bytes must not depend on the worker count.
#[test]
fn report_is_byte_identical_across_jobs() {
    let corpus = corpus();
    let shapes = default_shapes();
    let r1 = run_search(
        &corpus,
        &shapes,
        &SearchOptions {
            jobs: 1,
            ..SearchOptions::default()
        },
    );
    assert!(r1.failures.is_empty(), "{:#?}", r1.failures);
    assert_eq!(r1.num_points(), r1.num_passing_points());
    assert_eq!(r1.corpus.len(), 11);

    let r4 = run_search(
        &corpus,
        &shapes,
        &SearchOptions {
            jobs: 4,
            ..SearchOptions::default()
        },
    );
    assert_eq!(
        r1.to_json().render_pretty(),
        r4.to_json().render_pretty(),
        "JSON report depends on the worker count"
    );
    assert_eq!(
        r1.to_markdown(),
        r4.to_markdown(),
        "markdown report depends on the worker count"
    );
}

/// A cold search populating a fresh cache directory and the warm rerun
/// replaying from it must render byte-identical reports — and both must
/// match the uncached search.
#[test]
fn report_is_byte_identical_across_cache_temperature() {
    let corpus = corpus();
    let shapes = default_shapes();
    let dir = scratch_dir("cache");
    let _ = std::fs::remove_dir_all(&dir);

    let uncached = run_search(&corpus, &shapes, &SearchOptions::default());
    let cached_opts = SearchOptions {
        cache_dir: Some(dir.clone()),
        ..SearchOptions::default()
    };
    let cold = run_search(&corpus, &shapes, &cached_opts);
    let warm = run_search(&corpus, &shapes, &cached_opts);
    let _ = std::fs::remove_dir_all(&dir);

    let want = uncached.to_json().render_pretty();
    assert_eq!(
        cold.to_json().render_pretty(),
        want,
        "cold cached report differs from uncached"
    );
    assert_eq!(
        warm.to_json().render_pretty(),
        want,
        "warm cached report differs from uncached"
    );
    assert_eq!(warm.to_markdown(), uncached.to_markdown());
}

/// The dense grid — the one the committed `BENCH_convsearch.json` was
/// produced from — meets the coverage floor on every default shape.
#[test]
fn dense_grid_meets_the_coverage_floor() {
    for shape in default_shapes() {
        assert!(
            grid_points(&shape, true).len() >= 12,
            "{} dense grid below the 12-point floor",
            shape.name
        );
    }
}
