//! Integration tests for the penalty-attribution flight recorder: exact
//! ledger reconciliation across the corpus, Chrome trace-event validity
//! on a real compile, and the `trace-tool` binary's exit-code contract.

use ipra_driver::{compile_and_run_traced, compile_only, Config};
use ipra_machine::MemClass;
use ipra_obs::json::Json;
use ipra_workloads::synth;

const DEMO: &str = r#"
fn helper(a: int, b: int) -> int {
    var t: int = a * b;
    if t > 100 { t = t - 100; }
    return t + 1;
}
fn main() {
    var acc: int = 0;
    var i: int = 0;
    while i < 20 {
        acc = acc + helper(i, acc);
        i = i + 1;
    }
    print(acc);
}
"#;

/// The same 11-program corpus the cache and wave golden tests use: the
/// demo, mutual recursion, a call tree, six generator programs and the
/// two bundled benchmark workloads.
fn corpus() -> Vec<(String, ipra_ir::Module)> {
    let mutual = r#"
        fn even(n: int) -> int { if n == 0 { return 1; } return odd(n - 1); }
        fn odd(n: int) -> int { if n == 0 { return 0; } return even(n - 1); }
        fn main() { print(even(10) + odd(7)); }
    "#;
    let mut corpus: Vec<(String, ipra_ir::Module)> = vec![
        ("demo".into(), ipra_frontend::compile(DEMO).unwrap()),
        ("mutual".into(), ipra_frontend::compile(mutual).unwrap()),
        ("tree".into(), synth::call_tree_program(3, 2, 4, 5)),
    ];
    for seed in 0..6u64 {
        let src = synth::random_source(seed, &synth::SourceConfig::default());
        corpus.push((
            format!("synth-{seed}"),
            ipra_frontend::compile(&src).unwrap(),
        ));
    }
    for w in ["nim", "stanford"] {
        let workload = ipra_workloads::by_name(w).unwrap();
        corpus.push((
            w.into(),
            ipra_workloads::compile_workload(workload).unwrap(),
        ));
    }
    corpus
}

/// The acceptance bar for the ledger: per-edge penalty rows must sum
/// *exactly* — not approximately — to the aggregate simulator statistics
/// on every corpus program, for save/restore traffic, spill traffic and
/// priced penalty cycles alike.
#[test]
fn penalty_ledger_reconciles_exactly_across_corpus() {
    for (name, module) in &corpus() {
        let config = Config::c();
        let m = compile_and_run_traced(module, &config)
            .unwrap_or_else(|t| panic!("[{name}] trapped: {t}"));
        let trace = m.trace.expect("traced run carries a trace");
        let stats = &m.stats;
        let cost = &ipra_sim::SimOptions::for_target(&config.target.regs).cost;

        let ledger = &trace.penalty_by_edge;
        assert!(!ledger.is_empty(), "[{name}] ledger has edges");
        let sum =
            |f: fn(&ipra_driver::trace::PenaltyEdge) -> u64| -> u64 { ledger.iter().map(f).sum() };
        assert_eq!(
            sum(|e| e.sr_loads),
            stats.loads(MemClass::SaveRestore),
            "[{name}] save/restore loads"
        );
        assert_eq!(
            sum(|e| e.sr_stores),
            stats.stores(MemClass::SaveRestore),
            "[{name}] save/restore stores"
        );
        assert_eq!(
            sum(|e| e.spill_loads),
            stats.loads(MemClass::Spill),
            "[{name}] spill loads"
        );
        assert_eq!(
            sum(|e| e.spill_stores),
            stats.stores(MemClass::Spill),
            "[{name}] spill stores"
        );
        assert_eq!(
            sum(|e| e.penalty_cycles),
            stats.penalty_cycles(cost),
            "[{name}] penalty cycles"
        );
        assert_eq!(
            sum(|e| e.calls),
            stats.calls,
            "[{name}] ledger call counts match aggregate calls"
        );
    }
}

/// Chrome/Perfetto export of a real traced compile: parses as JSON,
/// carries `traceEvents`, and every event has the trace-event-format
/// required keys with complete events also carrying a duration.
#[test]
fn chrome_export_of_a_real_compile_has_required_keys() {
    let module = ipra_frontend::compile(DEMO).unwrap();
    let config = Config::c();
    ipra_obs::enable();
    let _compiled = compile_only(&module, &config);
    let raw = ipra_obs::disable();
    assert!(!raw.spans.is_empty(), "traced compile records spans");

    let doc = ipra_obs::chrome::export(&raw, &config.name);
    let rendered = doc.render_pretty();
    let reparsed = ipra_obs::json::parse(&rendered).expect("chrome JSON parses");

    let events = reparsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(events.len() >= raw.spans.len(), "one X event per span");
    let mut seen_x = 0;
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing `{key}`: {ev:?}");
        }
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        match ph {
            "X" => {
                seen_x += 1;
                assert!(ev.get("dur").is_some(), "complete event missing `dur`");
                assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            }
            "M" => {}
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    assert_eq!(seen_x, raw.spans.len());
}

/// Runs the built `trace-tool` binary and returns (exit code, stdout).
fn run_tool(args: &[&str]) -> (i32, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_trace-tool"))
        .args(args)
        .output()
        .expect("trace-tool runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// End-to-end exit-code contract: a self-diff of a real trace is clean
/// (exit 0) while a planted ≥10% penalty regression makes `diff` exit
/// nonzero; `top` and `flame` work on the same document.
#[test]
fn trace_tool_diff_flags_planted_regression_with_nonzero_exit() {
    let module = ipra_frontend::compile(DEMO).unwrap();
    let m = compile_and_run_traced(&module, &Config::c()).unwrap();
    let trace = m.trace.unwrap();
    let baseline = trace.to_json().render_pretty();

    // Plant the regression structurally: re-parse the real document and
    // scale every penalty quantity up 50%, so the diff sees the same
    // program with strictly worse save/restore behaviour.
    let planted = match ipra_obs::json::parse(&baseline).unwrap() {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k == "sim" || k == "penalty_by_edge" {
                        (k, scale_penalties(v))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        _ => unreachable!("trace documents are objects"),
    };

    let dir = std::env::temp_dir().join(format!("ipra-trace-tool-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, &baseline).unwrap();
    std::fs::write(&new, planted.render_pretty()).unwrap();
    let old = old.to_str().unwrap();
    let new = new.to_str().unwrap();

    let (code, text) = run_tool(&["diff", old, old]);
    assert_eq!(code, 0, "self-diff is clean:\n{text}");
    assert!(text.contains("0 regression(s)"), "{text}");

    let (code, text) = run_tool(&["diff", old, new]);
    assert_eq!(code, 1, "planted regression exits 1:\n{text}");
    assert!(text.contains("REGRESSED"), "{text}");

    // The planted trace as a *baseline* is an improvement, not a
    // regression.
    let (code, _) = run_tool(&["diff", new, old]);
    assert_eq!(code, 0, "improvements do not fail the gate");

    let (code, text) = run_tool(&["top", old]);
    assert_eq!(code, 0);
    assert!(text.contains("functions:"), "{text}");

    let (code, text) = run_tool(&["flame", old]);
    assert_eq!(code, 0);
    assert!(text.contains("main;"), "{text}");

    // Usage errors exit 2.
    let (code, _) = run_tool(&["frobnicate"]);
    assert_eq!(code, 2);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Multiplies every penalty-relevant integer under `sim` /
/// `penalty_by_edge` by 1.5 (rounding up), leaving structure intact.
fn scale_penalties(j: Json) -> Json {
    match j {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    let scaled = matches!(
                        k.as_str(),
                        "penalty_cycles"
                            | "sr_loads"
                            | "sr_stores"
                            | "save_restore_loads"
                            | "save_restore_stores"
                    );
                    if scaled {
                        match v {
                            Json::Int(n) => (k, Json::Int(n + (n + 1) / 2)),
                            other => (k, other),
                        }
                    } else {
                        (k, scale_penalties(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(scale_penalties).collect()),
        other => other,
    }
}
