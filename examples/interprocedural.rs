//! Inter-procedural allocation demo (paper §2–§4): the bottom-up pass over
//! the call graph, open/closed classification, register-usage summaries and
//! custom parameter registers — shown on a module that mixes closed chains,
//! recursion, an indirect call and a "separately compiled" function.
//!
//! Run with: `cargo run --example interprocedural`

use ipra_driver::{compile_and_run, compile_only, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        // Closed chain: summaries flow bottom-up.
        fn leaf(x: int, y: int) -> int { return x * y + 1; }
        fn mid(x: int) -> int {
            var a: int = leaf(x, 3);
            var b: int = leaf(a, 5);
            return a + b;
        }

        // Recursive: open (its own caller is processed after it).
        fn fact(n: int) -> int {
            if n <= 1 { return 1; }
            return n * fact(n - 1);
        }

        // Address taken: open (may be called indirectly).
        fn hook(x: int) -> int { return x - 1; }

        // Marked extern: open (separately compiled).
        extern fn library(x: int) -> int { return x << 1; }

        fn main() {
            print(mid(4));
            print(fact(6));
            var f: fnptr = &hook;
            print(f(10));
            print(library(21));
        }
    "#;
    let module = ipra_frontend::compile(source)?;
    let config = Config::o3();
    let compiled = compile_only(&module, &config);

    println!("=== open/closed classification and register summaries (-O3) ===");
    for (report, summary) in compiled.reports.iter().zip(&compiled.summaries) {
        let status = if report.open_reasons.is_empty() && !report.forced_open {
            "closed".to_string()
        } else {
            let reasons: Vec<String> = report.open_reasons.iter().map(|r| r.to_string()).collect();
            format!("OPEN ({})", reasons.join(", "))
        };
        println!(
            "  {:<10} {:<28} clobbers={:?} params={:?}",
            report.name, status, summary.clobbers, summary.param_locs
        );
    }

    let m = compile_and_run(&module, &config)?;
    println!("\noutput: {:?}", m.output);
    println!(
        "cycles: {}, scalar loads/stores: {}",
        m.stats.cycles,
        m.stats.scalar_mem()
    );
    println!("\nNote how `leaf` and `mid` publish real summaries (closed), while the");
    println!("recursive, address-taken and extern functions fall back to the default");
    println!("convention — exactly the paper's §3 classification.");
    Ok(())
}
