//! Tour of the 13 workload analogs: compile and run each under the paper's
//! baseline and -O3, printing the Table 1 quantities.
//!
//! Run with: `cargo run --release --example benchmark_tour`
//! (release strongly recommended: the simulator executes millions of
//! instructions per workload).

use ipra_driver::{compile_and_run, percent_reduction, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "program", "base cycles", "o3 cycles", "Δcycles", "Δscalar"
    );
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w)?;
        let base = compile_and_run(&module, &Config::o2_base())?;
        let o3 = compile_and_run(&module, &Config::c())?;
        assert_eq!(base.output, o3.output, "semantics must not change");
        println!(
            "{:<10} {:>12} {:>12} {:>9.1}% {:>9.1}%",
            w.name,
            base.stats.cycles,
            o3.stats.cycles,
            percent_reduction(base.stats.cycles, o3.stats.cycles),
            percent_reduction(base.scalar_mem(), o3.scalar_mem()),
        );
    }
    println!("\nEach analog matches its original in kind; see DESIGN.md's");
    println!("substitution table and `ipra_workloads::all()` for descriptions.");
    Ok(())
}
