//! Shrink-wrapping demo (paper §5): callee-saved save/restore code moves
//! from procedure entry/exit to the blocks that actually need it, so cheap
//! execution paths stop paying for expensive ones. Prints the generated
//! machine code both ways so the placement difference is visible.
//!
//! Run with: `cargo run --example shrink_wrapping`

use ipra_driver::{compile_and_run, compile_only, Config};
use ipra_machine::MemClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `work` has a hot cheap path and a cold path whose values live across
    // calls (forcing protected registers). main only ever takes the hot
    // path.
    let source = r#"
        fn helper(x: int) -> int { return x + 1; }
        fn work(flag: int) -> int {
            var r: int = 0;
            if flag == 1 {
                var k1: int = 11;
                var k2: int = 22;
                var k3: int = 33;
                var c1: int = helper(k1);
                var c2: int = helper(k2);
                var c3: int = helper(k3);
                r = c1 + c2 + c3 + k1 + k2 + k3;
            } else {
                r = 1;
            }
            return r;
        }
        fn main() {
            var acc: int = 0;
            var i: int = 0;
            while i < 100 {
                acc = acc + work(0);
                i = i + 1;
            }
            print(acc);
        }
    "#;
    let module = ipra_frontend::compile(source)?;
    let work = module.func_by_name("work").expect("work exists");

    for config in [Config::o2_base(), Config::a()] {
        let compiled = compile_only(&module, &config);
        println!("=== `work` compiled under {} ===", config.name);
        println!(
            "{}",
            compiled.mmodule.funcs[work].display(&config.target.regs)
        );
        let m = compile_and_run(&module, &config)?;
        let saves = m.stats.loads(MemClass::SaveRestore) + m.stats.stores(MemClass::SaveRestore);
        println!(
            "dynamic save/restore memory ops: {saves}   (cycles: {})\n",
            m.stats.cycles
        );
    }
    println!("With shrink-wrap (config A) the saves sit inside the cold branch; the");
    println!("hot path executed 100 times pays nothing.");
    Ok(())
}
