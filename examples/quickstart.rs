//! Quickstart: compile a Mini program, allocate registers at -O2 and -O3,
//! run both on the simulator and compare the costs the paper measures.
//!
//! Run with: `cargo run --example quickstart`

use ipra_driver::{compile_and_run, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A call-intensive program: `main` repeatedly calls a closed chain.
    let source = r#"
        fn scale(x: int, k: int) -> int {
            return x * k + 1;
        }
        fn polynomial(x: int) -> int {
            var a: int = scale(x, 3);
            var b: int = scale(a, 5);
            var c: int = scale(b, 7);
            return a + b + c;
        }
        fn main() {
            var sum: int = 0;
            var i: int = 0;
            while i < 200 {
                sum = sum + polynomial(i);
                i = i + 1;
            }
            print(sum);
        }
    "#;

    let module = ipra_frontend::compile(source)?;
    println!("IR for the whole module:\n{module}");

    for config in [Config::no_alloc(), Config::o2_base(), Config::c()] {
        let m = compile_and_run(&module, &config)?;
        println!(
            "{:<8} output={:?}  cycles={:<7} scalar loads/stores={:<6} cycles/call={:.1}",
            m.config,
            m.output,
            m.stats.cycles,
            m.stats.scalar_mem(),
            m.stats.cycles_per_call()
        );
    }
    println!("\nThe -O3 run consults callee register-usage summaries, so values that");
    println!("span the calls to `scale` sit in registers the callee never touches —");
    println!("no saves, no restores (Chow, PLDI 1988).");
    Ok(())
}
