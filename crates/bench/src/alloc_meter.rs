//! A counting global allocator for the allocation benches.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps four global
//! atomics: total allocation count, total bytes requested, currently-live
//! bytes, and the high-water mark of live bytes. Install it with
//! `#[global_allocator]` in a bench binary, then wrap the region of
//! interest in [`measure`] to get that region's deltas. When the
//! allocator is *not* installed the counters simply never move and every
//! delta reads as zero, so library code (and tests) can link this module
//! unconditionally.
//!
//! The counters are process-global: run measured regions one at a time
//! (the allocation benches are serial, `jobs = 1`) or the windows overlap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

/// Books one allocation of `size` bytes into the global counters.
fn record_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = CURRENT.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Books one deallocation of `size` bytes.
fn record_dealloc(size: usize) {
    CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
}

/// The counting wrapper around [`System`].
pub struct CountingAlloc;

// SAFETY: defers every allocation to `System` unchanged; the wrapper only
// updates counters, never the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still pressures the allocator: count it as one
        // allocation of the new size, with live bytes moving by the delta.
        record_dealloc(layout.size());
        record_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap-allocation deltas of one measured region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations performed (reallocs count once).
    pub allocs: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
    /// High-water mark of live bytes above the region's starting level.
    pub peak_bytes: u64,
}

/// Runs `f` and returns its result plus the region's allocation deltas.
/// All zeros unless [`CountingAlloc`] is installed as the global
/// allocator.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocDelta) {
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = BYTES.load(Ordering::Relaxed);
    let live0 = CURRENT.load(Ordering::Relaxed);
    PEAK.store(live0, Ordering::Relaxed);
    let result = f();
    (
        result,
        AllocDelta {
            allocs: ALLOCS.load(Ordering::Relaxed) - allocs0,
            bytes: BYTES.load(Ordering::Relaxed) - bytes0,
            peak_bytes: (PEAK.load(Ordering::Relaxed) - live0).max(0) as u64,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters move
    // only through the record functions — exercise the bookkeeping
    // directly. Serialize against other tests touching the globals by
    // running everything in one test body.
    #[test]
    fn bookkeeping_tracks_counts_bytes_and_peak() {
        let ((), d) = measure(|| {
            record_alloc(100);
            record_alloc(50);
            record_dealloc(100);
            record_alloc(30);
        });
        assert_eq!(d.allocs, 3);
        assert_eq!(d.bytes, 180);
        // Live peaked at 150 (100 + 50) above the starting level.
        assert_eq!(d.peak_bytes, 150);

        // A fresh window starts from the current live level.
        let ((), d2) = measure(|| {
            record_alloc(10);
            record_dealloc(10);
        });
        assert_eq!(d2.allocs, 1);
        assert_eq!(d2.bytes, 10);
        assert_eq!(d2.peak_bytes, 10);
    }
}
