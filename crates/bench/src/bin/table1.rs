//! Prints the Table 1 reproduction: % reduction in cycles and scalar
//! loads/stores for configurations A, B, C relative to -O2 baseline.
//!
//! Flags: `--small` (three smallest workloads), `--trace-json <dir>` (dump
//! one JSON compile trace per configuration), `--jobs <n>`.

use std::process::ExitCode;

use ipra_bench::{dump_config_traces, parse_table_args};
use ipra_driver::{table_row, Config};

fn main() -> ExitCode {
    let args = match parse_table_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("Table 1 reproduction — % reduction vs -O2 (shrink-wrap off)");
    println!(
        "{:<10} {:>11} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "program", "cycles/call", "I.A", "I.B", "I.C", "II.A", "II.B", "II.C"
    );
    for w in args.workloads() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        let configs = [
            args.apply(Config::a()),
            args.apply(Config::b()),
            args.apply(Config::c()),
        ];
        let base = args.apply(Config::o2_base());
        let row = table_row(w.name, &module, &base, &configs);
        println!(
            "{:<10} {:>11.0} | {:>6.1}% {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}% {:>6.1}%",
            row.workload,
            row.cycles_per_call,
            row.columns[0].1,
            row.columns[1].1,
            row.columns[2].1,
            row.columns[0].2,
            row.columns[1].2,
            row.columns[2].2
        );
        if let Some(dir) = &args.trace_json {
            let mut all = vec![base];
            all.extend(configs);
            if let Err(e) = dump_config_traces(dir, w.name, &module, &all) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
