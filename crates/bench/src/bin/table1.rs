//! Prints the Table 1 reproduction: % reduction in cycles and scalar
//! loads/stores for configurations A, B, C relative to -O2 baseline.

use ipra_driver::{table_row, Config};

fn main() {
    println!("Table 1 reproduction — % reduction vs -O2 (shrink-wrap off)");
    println!(
        "{:<10} {:>11} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "program", "cycles/call", "I.A", "I.B", "I.C", "II.A", "II.B", "II.C"
    );
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        let row = table_row(
            w.name,
            &module,
            &Config::o2_base(),
            &[Config::a(), Config::b(), Config::c()],
        );
        println!(
            "{:<10} {:>11.0} | {:>6.1}% {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}% {:>6.1}%",
            row.workload,
            row.cycles_per_call,
            row.columns[0].1,
            row.columns[1].1,
            row.columns[2].1,
            row.columns[0].2,
            row.columns[1].2,
            row.columns[2].2
        );
    }
}
