//! Measures the heap-allocation cost of warm-cache recompiles: for each
//! workload, compares a warm recompile through a fresh pipeline (every
//! cache hit re-read and re-decoded from disk) against one through a
//! persistent [`ipra_core::Pipeline`] (hits answered from the in-memory
//! entry image, analyses replayed from the memo, scratch recycled), and
//! writes the results as `BENCH_allocs.json` at the repository root.
//!
//! The two compiles must render byte-identical assembly — the bench
//! doubles as a parity check — and the corpus-total allocation reduction
//! must reach 50%, the budget `bench --check-budgets` enforces.
//!
//! ```text
//! recompile_allocs [--small] [--out <path>] [--history <path>]
//!   --small         three smallest workloads only
//!   --out <p>       output path (default BENCH_allocs.json)
//!   --history <p>   trajectory file to append one summary line to
//!                   (default BENCH_history.jsonl; `--history none` skips)
//! ```

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use ipra_bench::alloc_meter::{measure, AllocDelta, CountingAlloc};
use ipra_bench::{append_history, history_entry};
use ipra_core::ipra::{compile_module, CompiledModule};
use ipra_core::Pipeline;
use ipra_driver::Config;
use ipra_obs::json::Json;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Row {
    name: String,
    funcs: usize,
    baseline: AllocDelta,
    reuse: AllocDelta,
}

impl Row {
    fn reduction(&self) -> f64 {
        1.0 - self.reuse.allocs as f64 / self.baseline.allocs.max(1) as f64
    }
}

/// Renders every function's machine code — the byte-identity witness.
fn asm_of(compiled: &CompiledModule, config: &Config) -> String {
    let mut out = String::new();
    for (_, f) in compiled.mmodule.funcs.iter() {
        out.push_str(
            &f.display_in(&config.target.regs, &compiled.mmodule)
                .to_string(),
        );
        out.push('\n');
    }
    out
}

fn main() -> ExitCode {
    let mut small = false;
    let mut out_path = "BENCH_allocs.json".to_string();
    let mut history = Some("BENCH_history.jsonl".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let ok = match a.as_str() {
            "--small" => {
                small = true;
                true
            }
            "--out" => match args.next() {
                Some(p) => {
                    out_path = p;
                    true
                }
                None => false,
            },
            "--history" => match args.next() {
                Some(p) => {
                    history = (p != "none").then_some(p);
                    true
                }
                None => false,
            },
            _ => false,
        };
        if !ok {
            eprintln!("usage: recompile_allocs [--small] [--out PATH] [--history PATH|none]");
            return ExitCode::FAILURE;
        }
    }

    let modules: Vec<_> = ipra_workloads::all()
        .into_iter()
        .take(if small { 3 } else { usize::MAX })
        .map(|w| {
            let m = ipra_workloads::compile_workload(w).expect("workload compiles");
            (w.name.to_string(), m)
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("ipra-alloc-bench-{}", std::process::id()));
    println!("warm-recompile heap allocations — fresh pipeline vs reused pipeline, jobs=1");
    println!(
        "{:<10} {:>6} | {:>10} {:>12} | {:>10} {:>12} | {:>9}",
        "program", "funcs", "allocs", "bytes", "allocs'", "bytes'", "reduction"
    );

    let mut rows = Vec::new();
    for (name, module) in &modules {
        let mut cfg = Config::c();
        cfg.opts.jobs = 1;
        let cache_dir = dir.join(name);
        let _ = std::fs::remove_dir_all(&cache_dir);
        cfg.opts.cache_dir = Some(cache_dir);

        // Cold compile populates the disk cache (not measured).
        compile_module(module, &cfg.target, &cfg.opts);

        // Baseline: warm-disk recompile through a fresh pipeline — every
        // hit is re-read, re-parsed and re-decoded from the cache files.
        let (base_out, baseline) = measure(|| compile_module(module, &cfg.target, &cfg.opts));

        // Reused pipeline: the priming compile decodes the entries into
        // the in-memory image; the measured recompile then never touches
        // the cache directory and replays analyses from the memo.
        let pipe = Pipeline::new();
        pipe.compile(module, &cfg.target, &cfg.opts);
        let (reuse_out, reuse) = measure(|| pipe.compile(module, &cfg.target, &cfg.opts));

        if asm_of(&reuse_out, &cfg) != asm_of(&base_out, &cfg) {
            eprintln!("{name}: reused-pipeline assembly differs from fresh-pipeline assembly");
            return ExitCode::FAILURE;
        }

        // Export the measurements as gauges through the metrics registry,
        // so traced runs of this harness carry them like any other metric.
        for (pipeline, d) in [("fresh", &baseline), ("reused", &reuse)] {
            let labels = &[("pipeline", pipeline), ("program", name.as_str())];
            ipra_obs::metric_gauge("recompile.heap_allocs", labels, d.allocs as i64);
            ipra_obs::metric_gauge("recompile.heap_bytes", labels, d.bytes as i64);
            ipra_obs::metric_gauge("recompile.heap_peak_bytes", labels, d.peak_bytes as i64);
        }

        let row = Row {
            name: name.clone(),
            funcs: module.funcs.len(),
            baseline,
            reuse,
        };
        println!(
            "{:<10} {:>6} | {:>10} {:>12} | {:>10} {:>12} | {:>8.1}%",
            row.name,
            row.funcs,
            row.baseline.allocs,
            row.baseline.bytes,
            row.reuse.allocs,
            row.reuse.bytes,
            100.0 * row.reduction()
        );
        rows.push(row);
    }

    let sum = |f: fn(&Row) -> u64| rows.iter().map(f).sum::<u64>();
    let allocs_baseline = sum(|r| r.baseline.allocs);
    let allocs_reuse = sum(|r| r.reuse.allocs);
    let bytes_baseline = sum(|r| r.baseline.bytes);
    let bytes_reuse = sum(|r| r.reuse.bytes);
    let reduction = 1.0 - allocs_reuse as f64 / allocs_baseline.max(1) as f64;
    println!(
        "{:<10} {:>6} | {:>10} {:>12} | {:>10} {:>12} | {:>8.1}%",
        "TOTAL",
        "",
        allocs_baseline,
        bytes_baseline,
        allocs_reuse,
        bytes_reuse,
        100.0 * reduction
    );

    let total = Json::obj(vec![
        ("allocs_baseline", Json::Int(allocs_baseline as i64)),
        ("allocs_reuse", Json::Int(allocs_reuse as i64)),
        ("bytes_baseline", Json::Int(bytes_baseline as i64)),
        ("bytes_reuse", Json::Int(bytes_reuse as i64)),
        ("reduction", Json::Float(reduction)),
    ]);
    let doc = Json::obj(vec![
        ("bench", Json::Str("recompile_allocs".into())),
        ("total", total.clone()),
        (
            "programs",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("funcs", Json::Int(r.funcs as i64)),
                            ("allocs_baseline", Json::Int(r.baseline.allocs as i64)),
                            ("allocs_reuse", Json::Int(r.reuse.allocs as i64)),
                            ("bytes_baseline", Json::Int(r.baseline.bytes as i64)),
                            ("bytes_reuse", Json::Int(r.reuse.bytes as i64)),
                            ("peak_baseline", Json::Int(r.baseline.peak_bytes as i64)),
                            ("peak_reuse", Json::Int(r.reuse.peak_bytes as i64)),
                            ("reduction", Json::Float(r.reduction())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render_pretty()) {
        eprintln!("{out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = history {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis());
        if let Err(e) = append_history(
            path.as_ref(),
            &history_entry("recompile_allocs", unix_ms, total),
        ) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("appended to {path}");
    }
    let _ = std::fs::remove_dir_all(&dir);

    if reduction < 0.5 {
        eprintln!(
            "allocation reduction {:.1}% is below the 50% target",
            100.0 * reduction
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
