//! Prints the Table 2 reproduction: D = only 7 caller-saved registers,
//! E = only 7 callee-saved registers, vs the full-register-set -O2 base.

use ipra_driver::{table_row, Config};

fn main() {
    println!("Table 2 reproduction — % reduction vs -O2 full register set");
    println!(
        "{:<10} | {:>7} {:>7} | {:>7} {:>7}",
        "program", "I.D", "I.E", "II.D", "II.E"
    );
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        let row = table_row(
            w.name,
            &module,
            &Config::o2_base(),
            &[Config::d(), Config::e()],
        );
        println!(
            "{:<10} | {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}%",
            row.workload, row.columns[0].1, row.columns[1].1, row.columns[0].2, row.columns[1].2
        );
    }
}
