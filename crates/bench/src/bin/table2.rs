//! Prints the Table 2 reproduction: D = only 7 caller-saved registers,
//! E = only 7 callee-saved registers, vs the full-register-set -O2 base.
//!
//! Flags: `--small` (three smallest workloads), `--trace-json <dir>` (dump
//! one JSON compile trace per configuration), `--jobs <n>`.

use std::process::ExitCode;

use ipra_bench::{dump_config_traces, parse_table_args};
use ipra_driver::{table_row, Config};

fn main() -> ExitCode {
    let args = match parse_table_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("Table 2 reproduction — % reduction vs -O2 full register set");
    println!(
        "{:<10} | {:>7} {:>7} | {:>7} {:>7}",
        "program", "I.D", "I.E", "II.D", "II.E"
    );
    for w in args.workloads() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        let configs = [args.apply(Config::d()), args.apply(Config::e())];
        let base = args.apply(Config::o2_base());
        let row = table_row(w.name, &module, &base, &configs);
        println!(
            "{:<10} | {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}%",
            row.workload, row.columns[0].1, row.columns[1].1, row.columns[0].2, row.columns[1].2
        );
        if let Some(dir) = &args.trace_json {
            let mut all = vec![base];
            all.extend(configs);
            if let Err(e) = dump_config_traces(dir, w.name, &module, &all) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
