//! Load generator for the mini-ccd compile service: drives hundreds of
//! concurrent mixed cold/warm compile requests against an in-process
//! [`Service`] over socketpairs — the same framing, dispatch, admission
//! gate and shared pipeline a real daemon runs — and reports request
//! latency quantiles, throughput and the warm-hit ratio as
//! `BENCH_service.json` at the repository root.
//!
//! The schedule is deterministic: an untimed single-session pass first
//! compiles every workload once, priming the shared analysis memo. Then
//! request `i` of the timed phase is a warm workload compile (cycling
//! the primed corpus) unless `i % 3 == 0`, in which case it is a unique
//! synthetic program no cache has ever seen (a forced cold compile).
//! Requests are dealt round-robin across client sessions, so the
//! warm-hit ratio measures whether the memo actually serves replays
//! under concurrent mixed load.
//!
//! ```text
//! service_bench [--requests <n>] [--clients <k>] [--small]
//!               [--max-active <a>] [--out <path>] [--history <path>]
//!   --requests <n>   total compile requests (default 240, min 100)
//!   --clients <k>    concurrent client sessions (default 16)
//!   --small          three smallest workloads only (CI-sized; the
//!                    request count floor still applies)
//!   --max-active <a> admission-gate width (default 4)
//!   --out <p>        output path (default BENCH_service.json)
//!   --history <p>    trajectory file to append one summary line to
//!                    (default BENCH_history.jsonl; `--history none` skips)
//! ```

use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use ipra_bench::{append_history, history_entry};
use ipra_driver::service::{roundtrip, CompileRequest, RequestSource, Service, ServiceConfig};
use ipra_obs::json::Json;

/// One finished request as observed by its client thread.
struct Sample {
    latency_us: u128,
    warm: bool,
    cold_intent: bool,
    status: String,
}

/// A synthetic program no cache has seen: the function name, arithmetic
/// constants and call argument all vary with `i`, so the body hash — and
/// therefore every cache key — is unique per request.
fn cold_source(i: usize) -> String {
    format!(
        "fn churn{i}(x: int) -> int {{ return x * {} + {}; }} \
         fn main() {{ print(churn{i}({})); }}",
        (i % 7) + 2,
        i + 1,
        (i % 11) + 1,
    )
}

fn quantile_us(sorted: &[u128], q: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let mut requests = 240usize;
    let mut clients = 16usize;
    let mut small = false;
    let mut max_active = 4usize;
    let mut out_path = "BENCH_service.json".to_string();
    let mut history = Some("BENCH_history.jsonl".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let ok = match a.as_str() {
            "--requests" => match args.next().and_then(|v| v.trim().parse().ok()) {
                Some(v) => {
                    requests = v;
                    true
                }
                None => false,
            },
            "--clients" => match args.next().and_then(|v| v.trim().parse().ok()) {
                Some(v) => {
                    clients = v;
                    true
                }
                None => false,
            },
            "--small" => {
                small = true;
                true
            }
            "--max-active" => match args.next().and_then(|v| v.trim().parse().ok()) {
                Some(v) => {
                    max_active = v;
                    true
                }
                None => false,
            },
            "--out" => match args.next() {
                Some(p) => {
                    out_path = p;
                    true
                }
                None => false,
            },
            "--history" => match args.next() {
                Some(p) => {
                    history = (p != "none").then_some(p);
                    true
                }
                None => false,
            },
            _ => false,
        };
        if !ok {
            eprintln!(
                "usage: service_bench [--requests N] [--clients K] [--small] \
                 [--max-active A] [--out PATH] [--history PATH|none]"
            );
            return ExitCode::FAILURE;
        }
    }
    // The acceptance bar for this benchmark is "≥100 concurrent mixed
    // requests"; anything smaller measures startup, not service.
    requests = requests.max(100);
    clients = clients.clamp(1, requests);

    let workloads: Vec<&str> = ipra_workloads::all()
        .iter()
        .take(if small { 3 } else { usize::MAX })
        .map(|w| w.name)
        .collect();

    // The bench measures latency under load, not shedding: queue deep
    // enough that no request is turned away as `busy`.
    let cfg = ServiceConfig {
        max_active: max_active.max(1),
        max_queue: requests,
        ..ServiceConfig::default()
    };
    let service = Service::new(cfg);

    println!(
        "service_bench — {requests} requests, {clients} clients, {} workloads, max-active {max_active}",
        workloads.len()
    );

    // Untimed priming pass: one serial session compiles each workload
    // once, so the timed phase measures memo service, not first-compile
    // racing.
    {
        let (mut client, server) = UnixStream::pair().expect("socketpair");
        std::thread::scope(|s| {
            let session = s.spawn(|| service.serve_session(&server, &server));
            for (i, w) in workloads.iter().enumerate() {
                let req =
                    CompileRequest::new(-(i as i64) - 1, RequestSource::Workload((*w).into()));
                let resp = roundtrip(&mut client, &req.to_json()).expect("prime roundtrip");
                assert_eq!(
                    resp.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "priming {w} failed"
                );
            }
            drop(client);
            session.join().expect("prime session").expect("clean close");
        });
    }

    let samples = Mutex::new(Vec::with_capacity(requests));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let service = &service;
            let workloads = &workloads;
            let samples = &samples;
            s.spawn(move || {
                let (mut client, server) = UnixStream::pair().expect("socketpair");
                let session = s.spawn(move || service.serve_session(&server, &server));
                let mut local = Vec::new();
                for i in (c..requests).step_by(clients) {
                    let cold_intent = i % 3 == 0;
                    let source = if cold_intent {
                        RequestSource::Source(cold_source(i))
                    } else {
                        RequestSource::Workload(workloads[i % workloads.len()].into())
                    };
                    let req = CompileRequest::new(i as i64, source);
                    let t = Instant::now();
                    let resp = roundtrip(&mut client, &req.to_json()).expect("roundtrip");
                    local.push(Sample {
                        latency_us: t.elapsed().as_micros(),
                        warm: resp.get("warm") == Some(&Json::Bool(true)),
                        cold_intent,
                        status: resp
                            .get("status")
                            .and_then(Json::as_str)
                            .unwrap_or("missing")
                            .to_string(),
                    });
                }
                drop(client);
                session
                    .join()
                    .expect("session thread")
                    .expect("clean close");
                samples.lock().unwrap().extend(local);
            });
        }
    });
    let wall = t0.elapsed();

    let samples = samples.into_inner().unwrap();
    assert_eq!(samples.len(), requests, "every request completed");
    let failed = samples.iter().filter(|s| s.status != "ok").count();
    let warm_hits = samples.iter().filter(|s| s.warm).count();
    let warm_eligible = samples.iter().filter(|s| !s.cold_intent).count();
    let warm_hit_ratio = warm_hits as f64 / warm_eligible.max(1) as f64;
    let mut lat: Vec<u128> = samples.iter().map(|s| s.latency_us).collect();
    lat.sort_unstable();
    let p50 = quantile_us(&lat, 0.50);
    let p99 = quantile_us(&lat, 0.99);
    let max = *lat.last().unwrap_or(&0);
    let mean = lat.iter().sum::<u128>() as f64 / lat.len().max(1) as f64;
    let throughput = requests as f64 / wall.as_secs_f64().max(1e-9);

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "", "p50(us)", "p99(us)", "max(us)", "mean(us)"
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10.1}",
        "latency", p50, p99, max, mean
    );
    println!(
        "throughput {throughput:.1} req/s over {:.2}s wall; warm hits {warm_hits}/{warm_eligible} \
         ({:.0}% of warm-eligible); {failed} failed",
        wall.as_secs_f64(),
        warm_hit_ratio * 100.0,
    );

    let total = Json::obj(vec![
        ("requests", Json::Int(requests as i64)),
        ("clients", Json::Int(clients as i64)),
        ("failed", Json::Int(failed as i64)),
        ("wall_us", Json::Int(wall.as_micros() as i64)),
        ("p50_us", Json::Int(p50 as i64)),
        ("p99_us", Json::Int(p99 as i64)),
        ("max_us", Json::Int(max as i64)),
        ("mean_us", Json::Float(mean)),
        ("throughput_rps", Json::Float(throughput)),
        ("warm_hit_ratio", Json::Float(warm_hit_ratio)),
    ]);
    let doc = Json::obj(vec![
        ("bench", Json::Str("service_bench".into())),
        ("max_active", Json::Int(max_active as i64)),
        (
            "workloads",
            Json::Arr(workloads.iter().map(|w| Json::Str((*w).into())).collect()),
        ),
        ("total", total.clone()),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render_pretty()) {
        eprintln!("{out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = history {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis());
        if let Err(e) = append_history(
            path.as_ref(),
            &history_entry("service_bench", unix_ms, total),
        ) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("appended to {path}");
    }

    if failed > 0 {
        eprintln!("{failed} requests did not return ok");
        return ExitCode::FAILURE;
    }
    if warm_hit_ratio < 0.25 {
        eprintln!("warm-hit ratio {warm_hit_ratio:.2} is below the 0.25 target");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
