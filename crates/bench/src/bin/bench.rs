//! `bench` — performance-budget gate over the committed benchmark
//! artifacts.
//!
//! ```text
//! bench --check-budgets [--cache-file <p>] [--waves-file <p>]
//!       [--allocs-file <p>] [--service-file <p>] [--convsearch-file <p>]
//!       [--inline-file <p>] [--history <p>]
//!       [--warm-floor <x>] [--wave-floor <x>] [--allocs-floor <x>]
//!       [--service-throughput-floor <x>] [--service-warm-floor <x>]
//!       [--service-p99-ceiling-us <n>]
//!   --check-budgets    verify the artifacts against the budget floors
//!   --cache-file <p>   cache results (default BENCH_cache.json)
//!   --waves-file <p>   wave results (default BENCH_waves.json)
//!   --allocs-file <p>  allocation results (default BENCH_allocs.json;
//!                      `none` skips the allocation budget)
//!   --service-file <p> compile-service results (default
//!                      BENCH_service.json; `none` skips)
//!   --convsearch-file <p>  convention-search report (default
//!                      BENCH_convsearch.json; `none` skips). Gated on
//!                      zero failures, every point passing both the
//!                      static verifier and the interpreter oracle, and
//!                      at least 12 points per register-file shape
//!   --inline-file <p>  inlining × IPRA ablation (default
//!                      BENCH_inline.json; `none` skips). Gated on the
//!                      inline+IPRA leg's total penalty cycles staying at
//!                      or below the inline-off leg's, and on the inliner
//!                      having actually fired
//!   --history <p>      trajectory file whose lines must all parse
//!                      (default BENCH_history.jsonl; `none` skips)
//!   --warm-floor <x>   minimum warm-cache compile speedup (default 3.0)
//!   --wave-floor <x>   minimum wave-scheduler speedup (default 0.0 —
//!                      informational until hosts guarantee >1 cores)
//!   --allocs-floor <x> minimum warm-recompile allocation reduction as a
//!                      fraction (default 0.5)
//!   --service-throughput-floor <x>  minimum daemon throughput in
//!                      requests/s (default 5.0)
//!   --service-warm-floor <x>  minimum warm-hit ratio over warm-eligible
//!                      daemon requests (default 0.25)
//!   --service-p99-ceiling-us <n>  maximum p99 request latency in
//!                      microseconds (default 2000000 — generous so the
//!                      gate trips on collapse, not scheduler jitter)
//! ```
//!
//! Exits nonzero when a budget is violated or an artifact is missing or
//! malformed, so CI can run it as a hard gate after refreshing the
//! artifacts with `cache_speedup --small` / `wave_speedup --small` /
//! `recompile_allocs --small` / `service_bench --small`.

use std::process::ExitCode;

use ipra_bench::read_history;
use ipra_obs::json::{parse_bytes, Json};

fn usage() -> &'static str {
    "usage: bench --check-budgets [--cache-file P] [--waves-file P] \
     [--allocs-file P|none] [--service-file P|none] \
     [--convsearch-file P|none] [--inline-file P|none] [--history P|none] \
     [--warm-floor X] [--wave-floor X] [--allocs-floor X] \
     [--service-throughput-floor X] [--service-warm-floor X] \
     [--service-p99-ceiling-us N]"
}

/// Loads an artifact and extracts `total.<key>` as a float.
fn total_of(path: &str, key: &str) -> Result<f64, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    doc.get("total")
        .and_then(|t| t.get(key))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: no `total.{key}` member"))
}

fn real_main() -> Result<ExitCode, String> {
    let mut check = false;
    let mut cache_file = "BENCH_cache.json".to_string();
    let mut waves_file = "BENCH_waves.json".to_string();
    let mut allocs_file = Some("BENCH_allocs.json".to_string());
    let mut service_file = Some("BENCH_service.json".to_string());
    let mut convsearch_file = Some("BENCH_convsearch.json".to_string());
    let mut inline_file = Some("BENCH_inline.json".to_string());
    let mut history = Some("BENCH_history.jsonl".to_string());
    let mut warm_floor = 3.0f64;
    let mut wave_floor = 0.0f64;
    let mut allocs_floor = 0.5f64;
    let mut service_throughput_floor = 5.0f64;
    let mut service_warm_floor = 0.25f64;
    let mut service_p99_ceiling_us = 2_000_000.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-budgets" => check = true,
            "--cache-file" => cache_file = args.next().ok_or_else(|| usage().to_string())?,
            "--waves-file" => waves_file = args.next().ok_or_else(|| usage().to_string())?,
            "--allocs-file" => {
                let p = args.next().ok_or_else(|| usage().to_string())?;
                allocs_file = (p != "none").then_some(p);
            }
            "--service-file" => {
                let p = args.next().ok_or_else(|| usage().to_string())?;
                service_file = (p != "none").then_some(p);
            }
            "--convsearch-file" => {
                let p = args.next().ok_or_else(|| usage().to_string())?;
                convsearch_file = (p != "none").then_some(p);
            }
            "--inline-file" => {
                let p = args.next().ok_or_else(|| usage().to_string())?;
                inline_file = (p != "none").then_some(p);
            }
            "--history" => {
                let p = args.next().ok_or_else(|| usage().to_string())?;
                history = (p != "none").then_some(p);
            }
            "--warm-floor" => {
                warm_floor = args
                    .next()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or("--warm-floor needs a number")?
            }
            "--wave-floor" => {
                wave_floor = args
                    .next()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or("--wave-floor needs a number")?
            }
            "--allocs-floor" => {
                allocs_floor = args
                    .next()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or("--allocs-floor needs a number")?
            }
            "--service-throughput-floor" => {
                service_throughput_floor = args
                    .next()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or("--service-throughput-floor needs a number")?
            }
            "--service-warm-floor" => {
                service_warm_floor = args
                    .next()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or("--service-warm-floor needs a number")?
            }
            "--service-p99-ceiling-us" => {
                service_p99_ceiling_us = args
                    .next()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or("--service-p99-ceiling-us needs a number")?
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    if !check {
        return Err(usage().to_string());
    }

    let mut violations = 0;
    let mut gate = |what: &str, value: f64, floor: f64, unit: &str| {
        let ok = value >= floor;
        println!(
            "{} {what}: {value:.2}{unit} (floor {floor:.2}{unit})",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            violations += 1;
        }
    };

    gate(
        "warm-cache speedup",
        total_of(&cache_file, "warm_speedup")?,
        warm_floor,
        "x",
    );
    gate(
        "wave-scheduler speedup",
        total_of(&waves_file, "speedup")?,
        wave_floor,
        "x",
    );
    if let Some(path) = &allocs_file {
        gate(
            "warm-recompile allocation reduction",
            total_of(path, "reduction")?,
            allocs_floor,
            "",
        );
    }
    if let Some(path) = &service_file {
        gate(
            "service throughput",
            total_of(path, "throughput_rps")?,
            service_throughput_floor,
            " req/s",
        );
        gate(
            "service warm-hit ratio",
            total_of(path, "warm_hit_ratio")?,
            service_warm_floor,
            "",
        );
        let p99 = total_of(path, "p99_us")?;
        let ok = p99 <= service_p99_ceiling_us;
        println!(
            "{} service p99 latency: {p99:.0}us (ceiling {service_p99_ceiling_us:.0}us)",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            violations += 1;
        }
    }

    if let Some(path) = &convsearch_file {
        // Correctness floors, not perf floors: the committed penalty
        // surface must have zero failing point/program pairs, every point
        // verified and interpreter-matched, and Table-2-style coverage of
        // at least 12 points per register-file shape.
        let points = total_of(path, "points")?;
        let passing = total_of(path, "passing_points")?;
        let failures = total_of(path, "failures")?;
        let min_pts = total_of(path, "min_points_per_shape")?;
        let mut conv_gate = |what: &str, ok: bool, detail: String| {
            println!("{} {what}: {detail}", if ok { "ok  " } else { "FAIL" });
            if !ok {
                violations += 1;
            }
        };
        conv_gate(
            "convsearch failures",
            failures == 0.0,
            format!("{failures:.0} (must be 0)"),
        );
        conv_gate(
            "convsearch verified points",
            points > 0.0 && passing == points,
            format!("{passing:.0}/{points:.0} points pass verify + interp"),
        );
        conv_gate(
            "convsearch shape coverage",
            min_pts >= 12.0,
            format!("{min_pts:.0} points on the sparsest shape (floor 12)"),
        );
    }

    if let Some(path) = &inline_file {
        // Correctness floor: inlining a call site removes its
        // save/restore obligation entirely, so with IPRA also on the
        // total register-usage penalty must not exceed the no-inlining
        // baseline's — if it does, the inliner is creating pressure the
        // allocator can't recover.
        let off = total_of(path, "penalty_off")?;
        let with = total_of(path, "penalty_inline_ipra")?;
        let inlined = total_of(path, "sites_inlined")?;
        let mut inline_gate = |what: &str, ok: bool, detail: String| {
            println!("{} {what}: {detail}", if ok { "ok  " } else { "FAIL" });
            if !ok {
                violations += 1;
            }
        };
        inline_gate(
            "inline+IPRA penalty",
            with <= off,
            format!("{with:.0} cycles vs {off:.0} inline-off (must not exceed)"),
        );
        inline_gate(
            "inline sites",
            inlined > 0.0,
            format!("{inlined:.0} sites inlined (must be > 0)"),
        );
    }

    if let Some(path) = &history {
        let entries = read_history(path.as_ref())?;
        println!(
            "ok   history: {} well-formed entries in {path}",
            entries.len()
        );
    }

    if violations > 0 {
        eprintln!("{violations} budget violation(s)");
        return Ok(ExitCode::FAILURE);
    }
    println!("all perf budgets hold");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
