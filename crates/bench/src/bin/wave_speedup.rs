//! Measures the wall-clock effect of the wave scheduler: compiles each
//! workload repeatedly under `--jobs 1` and `--jobs N` and prints the
//! speedup, together with the call-graph wave shape (how much parallelism
//! each module exposes).
//!
//! ```text
//! wave_speedup [--jobs <n>] [--reps <r>] [--small] [--out <path>]
//!              [--history <path>]
//!   --jobs <n>      parallel worker count to compare against serial
//!                   (default: available parallelism)
//!   --reps <r>      timed repetitions per configuration (default 5; the
//!                   minimum over reps is reported to suppress scheduling
//!                   noise)
//!   --small         three smallest workloads only
//!   --out <p>       JSON results path (default BENCH_waves.json)
//!   --history <p>   trajectory file to append one summary line to
//!                   (default BENCH_history.jsonl; `--history none` skips)
//! ```

use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use ipra_bench::{append_history, history_entry};
use ipra_callgraph::{scc::SccInfo, CallGraph};
use ipra_core::ipra::compile_module;
use ipra_driver::Config;
use ipra_ir::Module;
use ipra_obs::json::Json;
use ipra_workloads::synth;

struct Row {
    name: String,
    funcs: usize,
    waves: usize,
    widest: usize,
    serial_us: u128,
    parallel_us: u128,
}

fn wave_shape(module: &Module) -> (usize, usize, usize) {
    let cg = CallGraph::build(module);
    let scc = SccInfo::compute(&cg);
    let waves = scc.levels(&cg);
    let widest = waves.iter().map(Vec::len).max().unwrap_or(0);
    (module.funcs.len(), waves.len(), widest)
}

fn best_of(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_micros());
    }
    best
}

fn main() -> ExitCode {
    let mut jobs = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut reps = 5usize;
    let mut small = false;
    let mut out_path = "BENCH_waves.json".to_string();
    let mut history = Some("BENCH_history.jsonl".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let ok = match a.as_str() {
            "--jobs" => match args.next().and_then(|v| v.trim().parse().ok()) {
                Some(v) => {
                    jobs = v;
                    true
                }
                None => false,
            },
            "--reps" => match args.next().and_then(|v| v.trim().parse().ok()) {
                Some(v) => {
                    reps = v;
                    true
                }
                None => false,
            },
            "--small" => {
                small = true;
                true
            }
            "--out" => match args.next() {
                Some(p) => {
                    out_path = p;
                    true
                }
                None => false,
            },
            "--history" => match args.next() {
                Some(p) => {
                    history = (p != "none").then_some(p);
                    true
                }
                None => false,
            },
            _ => false,
        };
        if !ok {
            eprintln!(
                "usage: wave_speedup [--jobs N] [--reps R] [--small] [--out PATH] [--history PATH|none]"
            );
            return ExitCode::FAILURE;
        }
    }

    let mut modules: Vec<(String, Module)> = ipra_workloads::all()
        .into_iter()
        .take(if small { 3 } else { usize::MAX })
        .map(|w| {
            let m = ipra_workloads::compile_workload(w).expect("workload compiles");
            (w.name.to_string(), m)
        })
        .collect();
    // A wide synthetic call DAG (255 leaf-heavy functions): the upper end of
    // the parallelism the paper's workloads expose.
    modules.push(("tree-8x2".into(), synth::call_tree_program(7, 2, 8, 1)));

    let base = Config::c();
    println!(
        "wave scheduler speedup — jobs=1 vs jobs={jobs}, best of {reps} reps, host parallelism {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!(
        "{:<10} {:>6} {:>6} {:>7} | {:>11} {:>11} {:>8}",
        "program", "funcs", "waves", "widest", "serial(us)", "jobs-N(us)", "speedup"
    );
    let mut rows = Vec::new();
    for (name, module) in &modules {
        let (funcs, waves, widest) = wave_shape(module);
        let mut serial = base.clone();
        serial.opts.jobs = 1;
        let mut parallel = base.clone();
        parallel.opts.jobs = jobs;
        let serial_us = best_of(reps, || {
            compile_module(module, &serial.target, &serial.opts);
        });
        let parallel_us = best_of(reps, || {
            compile_module(module, &parallel.target, &parallel.opts);
        });
        rows.push(Row {
            name: name.clone(),
            funcs,
            waves,
            widest,
            serial_us,
            parallel_us,
        });
    }
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>6} {:>7} | {:>11} {:>11} {:>7.2}x",
            r.name,
            r.funcs,
            r.waves,
            r.widest,
            r.serial_us,
            r.parallel_us,
            r.serial_us as f64 / r.parallel_us.max(1) as f64
        );
    }
    let s: u128 = rows.iter().map(|r| r.serial_us).sum();
    let p: u128 = rows.iter().map(|r| r.parallel_us).sum();
    let speedup = s as f64 / p.max(1) as f64;
    println!(
        "{:<10} {:>6} {:>6} {:>7} | {:>11} {:>11} {:>7.2}x",
        "TOTAL", "", "", "", s, p, speedup
    );

    let total = Json::obj(vec![
        ("serial_us", Json::Int(s as i64)),
        ("parallel_us", Json::Int(p as i64)),
        ("speedup", Json::Float(speedup)),
    ]);
    let doc = Json::obj(vec![
        ("bench", Json::Str("wave_speedup".into())),
        ("reps", Json::Int(reps as i64)),
        ("jobs", Json::Int(jobs as i64)),
        ("total", total.clone()),
        (
            "programs",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("funcs", Json::Int(r.funcs as i64)),
                            ("waves", Json::Int(r.waves as i64)),
                            ("widest", Json::Int(r.widest as i64)),
                            ("serial_us", Json::Int(r.serial_us as i64)),
                            ("parallel_us", Json::Int(r.parallel_us as i64)),
                            (
                                "speedup",
                                Json::Float(r.serial_us as f64 / r.parallel_us.max(1) as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render_pretty()) {
        eprintln!("{out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = history {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis());
        if let Err(e) = append_history(
            path.as_ref(),
            &history_entry("wave_speedup", unix_ms, total),
        ) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("appended to {path}");
    }
    ExitCode::SUCCESS
}
