//! `inline_ablation` — the three-leg inlining × IPRA ablation.
//!
//! ```text
//! inline_ablation [--small] [--jobs <n>] [--out <path>] [--history <path>]
//!   --small        only the three smallest workloads (CI smoke runs)
//!   --jobs <n>     wave-scheduler worker threads (0 = auto, 1 = serial)
//!   --out <path>   artifact path (default BENCH_inline.json)
//!   --history <p>  trajectory file to append one summary line to
//!                  (default BENCH_history.jsonl; `--history none` skips)
//! ```
//!
//! Runs every workload under `off` (configuration C, no inlining),
//! `inline` (`inline/A`) and `inline+IPRA` (`inline/C`) with a training
//! run feeding both inline legs, prints a per-workload table, writes the
//! deterministic `BENCH_inline.json` artifact `bench --check-budgets`
//! gates on, and appends a trajectory entry to `BENCH_history.jsonl`.

use std::path::PathBuf;
use std::process::ExitCode;

use ipra_bench::inline_ablation::{ablation_to_json, run_ablation};
use ipra_bench::{append_history, history_entry};

fn usage() -> &'static str {
    "usage: inline_ablation [--small] [--jobs N] [--out PATH] [--history PATH|none]"
}

fn real_main() -> Result<(), String> {
    let mut small = false;
    let mut jobs = None;
    let mut out = PathBuf::from("BENCH_inline.json");
    let mut history = Some("BENCH_history.jsonl".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a count")?;
                jobs = Some(v.trim().parse::<usize>().map_err(|_| "bad --jobs count")?);
            }
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--history" => {
                let p = args.next().ok_or("--history needs a path")?;
                history = (p != "none").then_some(p);
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }

    let workloads = {
        let all = ipra_workloads::all();
        if small {
            all.into_iter().take(3).collect::<Vec<_>>()
        } else {
            all
        }
    };

    let rows = run_ablation(&workloads, jobs)?;
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>7} {:>7}",
        "workload", "penalty-off", "penalty-inl", "penalty-i+I", "sites", "stops"
    );
    for r in &rows {
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>7} {:>7}",
            r.workload,
            r.legs[0].penalty_cycles,
            r.legs[1].penalty_cycles,
            r.legs[2].penalty_cycles,
            r.legs[2].sites_inlined,
            r.legs[2].budget_stops,
        );
    }

    let doc = ablation_to_json(&rows);
    std::fs::write(&out, doc.render_pretty()).map_err(|e| format!("{}: {e}", out.display()))?;
    println!("wrote {}", out.display());

    if let Some(history) = history {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let total = doc.get("total").cloned().expect("artifact carries total");
        append_history(
            history.as_ref(),
            &history_entry("inline_ablation", unix_ms, total),
        )?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
