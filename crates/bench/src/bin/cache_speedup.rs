//! Measures the wall-clock effect of the incremental allocation cache:
//! for each workload, times a cold compile (empty cache), a warm compile
//! (everything replays) and an incremental compile after a one-function
//! edit, and writes the results as `BENCH_cache.json` at the repository
//! root.
//!
//! ```text
//! cache_speedup [--reps <r>] [--small] [--out <path>] [--history <path>]
//!   --reps <r>      timed repetitions per configuration (default 5; the
//!                   minimum over reps is reported to suppress scheduling
//!                   noise)
//!   --small         three smallest workloads only
//!   --out <p>       output path (default BENCH_cache.json)
//!   --history <p>   trajectory file to append one summary line to
//!                   (default BENCH_history.jsonl; `--history none` skips)
//! ```

use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use ipra_bench::{append_history, history_entry};

use ipra_core::ipra::compile_module;
use ipra_driver::Config;
use ipra_ir::Module;
use ipra_obs::json::Json;
use ipra_workloads::synth;

struct Row {
    name: String,
    funcs: usize,
    cold_us: u128,
    warm_us: u128,
    incr_us: u128,
    incr_misses: u64,
}

fn best_of(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_micros());
    }
    best
}

/// A no-interface-change edit: adds an unused named vreg to the first
/// non-main function. The vreg-name table feeds the body hash, so exactly
/// that function's cache key changes, while its allocation — and therefore
/// its exported summary — stays the same (the early-cutoff case).
fn edited_copy(module: &Module) -> Module {
    let mut m = module.clone();
    let fid = m
        .funcs
        .iter()
        .map(|(id, _)| id)
        .find(|&id| m.funcs[id].name != "main")
        .or_else(|| m.funcs.iter().map(|(id, _)| id).next())
        .expect("module has a function");
    m.funcs[fid].new_named_vreg("__bench_edit");
    m
}

fn main() -> ExitCode {
    let mut reps = 5usize;
    let mut small = false;
    let mut out_path = "BENCH_cache.json".to_string();
    let mut history = Some("BENCH_history.jsonl".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let ok = match a.as_str() {
            "--reps" => match args.next().and_then(|v| v.trim().parse().ok()) {
                Some(v) => {
                    reps = v;
                    true
                }
                None => false,
            },
            "--small" => {
                small = true;
                true
            }
            "--out" => match args.next() {
                Some(p) => {
                    out_path = p;
                    true
                }
                None => false,
            },
            "--history" => match args.next() {
                Some(p) => {
                    history = (p != "none").then_some(p);
                    true
                }
                None => false,
            },
            _ => false,
        };
        if !ok {
            eprintln!(
                "usage: cache_speedup [--reps R] [--small] [--out PATH] [--history PATH|none]"
            );
            return ExitCode::FAILURE;
        }
    }

    let mut modules: Vec<(String, Module)> = ipra_workloads::all()
        .into_iter()
        .take(if small { 3 } else { usize::MAX })
        .map(|w| {
            let m = ipra_workloads::compile_workload(w).expect("workload compiles");
            (w.name.to_string(), m)
        })
        .collect();
    // The wide synthetic call DAG from `wave_speedup` (255 functions): the
    // best case for caching, and the worst case for recompiling.
    modules.push(("tree-8x2".into(), synth::call_tree_program(7, 2, 8, 1)));

    let dir = std::env::temp_dir().join(format!("ipra-cache-bench-{}", std::process::id()));
    let base = Config::c();
    println!("incremental cache speedup — best of {reps} reps, serial (jobs=1)");
    println!(
        "{:<10} {:>6} | {:>10} {:>10} {:>10} | {:>8} {:>8}",
        "program", "funcs", "cold(us)", "warm(us)", "1-edit(us)", "warm-x", "edit-x"
    );

    let mut rows = Vec::new();
    for (name, module) in &modules {
        let cache_dir = dir.join(name);
        let mut cfg = base.clone();
        cfg.opts.jobs = 1;
        cfg.opts.cache_dir = Some(cache_dir.clone());

        // Cold: empty cache every rep (includes the write-back cost).
        let cold_us = best_of(reps, || {
            let _ = std::fs::remove_dir_all(&cache_dir);
            compile_module(module, &cfg.target, &cfg.opts);
        });
        // Warm: the cache is now populated; every rep replays everything.
        let warm_us = best_of(reps, || {
            compile_module(module, &cfg.target, &cfg.opts);
        });
        // Incremental: one function's body hash changes, the rest replays.
        // The cache is re-primed (untimed) from the *unedited* module each
        // rep, so the edited entry is never already present.
        let edited = edited_copy(module);
        let mut incr_us = u128::MAX;
        let mut incr_misses = 0;
        for _ in 0..reps {
            let _ = std::fs::remove_dir_all(&cache_dir);
            compile_module(module, &cfg.target, &cfg.opts);
            let t = Instant::now();
            let compiled = compile_module(&edited, &cfg.target, &cfg.opts);
            incr_us = incr_us.min(t.elapsed().as_micros());
            incr_misses = compiled.cache.misses;
        }

        println!(
            "{:<10} {:>6} | {:>10} {:>10} {:>10} | {:>7.2}x {:>7.2}x",
            name,
            module.funcs.len(),
            cold_us,
            warm_us,
            incr_us,
            cold_us as f64 / warm_us.max(1) as f64,
            cold_us as f64 / incr_us.max(1) as f64,
        );
        rows.push(Row {
            name: name.clone(),
            funcs: module.funcs.len(),
            cold_us,
            warm_us,
            incr_us,
            incr_misses,
        });
    }

    let cold: u128 = rows.iter().map(|r| r.cold_us).sum();
    let warm: u128 = rows.iter().map(|r| r.warm_us).sum();
    let incr: u128 = rows.iter().map(|r| r.incr_us).sum();
    let warm_speedup = cold as f64 / warm.max(1) as f64;
    println!(
        "{:<10} {:>6} | {:>10} {:>10} {:>10} | {:>7.2}x {:>7.2}x",
        "TOTAL",
        "",
        cold,
        warm,
        incr,
        warm_speedup,
        cold as f64 / incr.max(1) as f64
    );

    let total = Json::obj(vec![
        ("cold_us", Json::Int(cold as i64)),
        ("warm_us", Json::Int(warm as i64)),
        ("incremental_us", Json::Int(incr as i64)),
        ("warm_speedup", Json::Float(warm_speedup)),
    ]);
    let doc = Json::obj(vec![
        ("bench", Json::Str("cache_speedup".into())),
        ("reps", Json::Int(reps as i64)),
        ("total", total.clone()),
        (
            "programs",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("funcs", Json::Int(r.funcs as i64)),
                            ("cold_us", Json::Int(r.cold_us as i64)),
                            ("warm_us", Json::Int(r.warm_us as i64)),
                            ("incremental_us", Json::Int(r.incr_us as i64)),
                            ("incremental_misses", Json::Int(r.incr_misses as i64)),
                            (
                                "warm_speedup",
                                Json::Float(r.cold_us as f64 / r.warm_us.max(1) as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render_pretty()) {
        eprintln!("{out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = history {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis());
        if let Err(e) = append_history(
            path.as_ref(),
            &history_entry("cache_speedup", unix_ms, total),
        ) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("appended to {path}");
    }
    let _ = std::fs::remove_dir_all(&dir);

    if warm_speedup < 3.0 {
        eprintln!("warm speedup {warm_speedup:.2}x is below the 3x target");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
