//! Bench crate: table/figure harnesses live in benches/ and src/bin/.
