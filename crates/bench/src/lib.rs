//! Bench crate: table/figure harnesses live in benches/ and src/bin/.
//!
//! The table binaries share a tiny CLI:
//!
//! ```text
//! table1 [--small] [--trace-json <dir>] [--jobs <n>]
//!   --small             only the three smallest workloads (CI smoke runs)
//!   --trace-json <dir>  also run each configuration traced and write one
//!                       JSON compile trace per (workload, configuration)
//!                       to <dir>/<workload>-<config>.json
//!   --jobs <n>          wave-scheduler worker threads (0 = auto, 1 = serial)
//! ```

pub mod alloc_meter;
pub mod inline_ablation;

use std::path::{Path, PathBuf};

use ipra_driver::{compile_and_run_traced, Config};
use ipra_ir::Module;
use ipra_obs::json::Json;
use ipra_workloads::Workload;

/// Options shared by the `table1`/`table2` binaries.
#[derive(Clone, Debug, Default)]
pub struct TableArgs {
    /// Restrict the run to the three smallest workloads (CI smoke mode).
    pub small: bool,
    /// Directory to dump one JSON compile trace per configuration into.
    pub trace_json: Option<PathBuf>,
    /// Wave-scheduler worker override applied to every configuration.
    pub jobs: Option<usize>,
}

/// Parses the shared table-binary flags.
///
/// # Errors
///
/// Returns a usage message on unknown flags or missing operands.
pub fn parse_table_args(args: impl Iterator<Item = String>) -> Result<TableArgs, String> {
    const USAGE: &str = "usage: table [--small] [--trace-json DIR] [--jobs N]";
    let mut parsed = TableArgs::default();
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => parsed.small = true,
            "--trace-json" => {
                let dir = args.next().ok_or("--trace-json needs a directory")?;
                parsed.trace_json = Some(PathBuf::from(dir));
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a count")?;
                parsed.jobs = Some(v.trim().parse::<usize>().map_err(|_| "bad --jobs count")?);
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    Ok(parsed)
}

impl TableArgs {
    /// The workload list this run covers: all thirteen, or the three
    /// smallest under `--small`.
    pub fn workloads(&self) -> Vec<Workload> {
        let all = ipra_workloads::all();
        if self.small {
            // `all()` is ordered by increasing size, so the small corpus is
            // just the head of the list.
            all.into_iter().take(3).collect()
        } else {
            all
        }
    }

    /// Applies the `--jobs` override to a configuration.
    pub fn apply(&self, mut config: Config) -> Config {
        if let Some(j) = self.jobs {
            config.opts.jobs = j;
        }
        config
    }
}

/// Runs every configuration traced and writes one pretty-printed JSON
/// compile trace per configuration to `dir/<workload>-<config>.json`.
///
/// # Errors
///
/// Returns an error string on I/O failure or a simulator trap (the latter
/// indicates a compiler bug, like [`ipra_driver::table_row`]'s panics).
pub fn dump_config_traces(
    dir: &Path,
    workload: &str,
    module: &Module,
    configs: &[Config],
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for c in configs {
        let m = compile_and_run_traced(module, c)
            .map_err(|t| format!("[{workload}/{}] trapped: {t}", c.name))?;
        let trace = m.trace.expect("traced run carries a trace");
        let path = dir.join(format!("{workload}-{}.json", c.name));
        std::fs::write(&path, trace.to_json().render_pretty())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(())
}

/// Builds one benchmark-trajectory entry: the bench name, a Unix
/// timestamp in milliseconds, and the run's `total` object. One of these
/// per speedup-bench run is appended to `BENCH_history.jsonl`, giving the
/// budget checker (and humans) a performance trajectory across commits.
pub fn history_entry(bench: &str, unix_ms: u128, total: Json) -> Json {
    Json::obj(vec![
        ("bench", Json::Str(bench.into())),
        ("unix_ms", Json::Int(unix_ms.min(i64::MAX as u128) as i64)),
        ("total", total),
    ])
}

/// Appends one entry to a JSON-lines history file, creating it if absent.
/// Each line is a compact, self-contained JSON document.
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn append_history(path: &Path, entry: &Json) -> Result<(), String> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(f, "{}", entry.render()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads a JSON-lines history file back as parsed entries, newest last.
///
/// # Errors
///
/// Returns a message on I/O failure or if any line fails to parse — a
/// corrupt history should fail the budget check loudly, not silently
/// shorten the trajectory.
pub fn read_history(path: &Path) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| {
            ipra_obs::json::parse(l).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> TableArgs {
        parse_table_args(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn history_appends_and_reads_back_in_order() {
        let path = std::env::temp_dir().join(format!("ipra-hist-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        for (i, name) in ["cache_speedup", "wave_speedup"].iter().enumerate() {
            let e = history_entry(
                name,
                1_700_000_000_000 + i as u128,
                Json::obj(vec![("speedup", Json::Float(3.5))]),
            );
            append_history(&path, &e).unwrap();
        }
        let entries = read_history(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].get("bench").unwrap().as_str(),
            Some("cache_speedup")
        );
        assert_eq!(
            entries[1]
                .get("total")
                .unwrap()
                .get("speedup")
                .unwrap()
                .as_f64(),
            Some(3.5)
        );
        // A corrupt line is an error, not a shorter history.
        std::fs::write(&path, "{\"ok\": true}\nnot json\n").unwrap();
        assert!(read_history(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn defaults_are_full_corpus_no_traces() {
        let a = parse(&[]);
        assert!(!a.small);
        assert!(a.trace_json.is_none());
        assert!(a.jobs.is_none());
        assert_eq!(a.workloads().len(), 13);
    }

    #[test]
    fn small_selects_head_of_corpus() {
        let a = parse(&["--small"]);
        let names: Vec<_> = a.workloads().iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["nim", "map", "calcc"]);
    }

    #[test]
    fn trace_json_and_jobs_parse() {
        let a = parse(&["--trace-json", "out/traces", "--jobs", "4"]);
        assert_eq!(a.trace_json.as_deref(), Some(Path::new("out/traces")));
        assert_eq!(a.jobs, Some(4));
        let c = a.apply(Config::c());
        assert_eq!(c.opts.jobs, 4);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(parse_table_args(["--frobnicate".to_string()].into_iter()).is_err());
    }

    #[test]
    fn dump_writes_one_trace_per_config() {
        let module = ipra_frontend::compile(
            "fn id(x: int) -> int { return x; } fn main() { print(id(7)); }",
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("ipra-bench-trace-{}", std::process::id()));
        dump_config_traces(&dir, "demo", &module, &[Config::o2_base(), Config::c()]).unwrap();
        for name in ["demo-base.json", "demo-C.json"] {
            let text = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(text.contains("\"functions\""), "{name} looks like a trace");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
