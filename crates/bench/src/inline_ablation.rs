//! Three-leg inlining × IPRA ablation shared by the `inline_ablation`
//! binary and the `inline_golden` integration test.
//!
//! Per workload the legs are:
//!
//! 1. `off` — configuration C (`-O3` interprocedural allocation with
//!    shrink-wrap), inliner off: the paper's best column and this
//!    ablation's baseline.
//! 2. `inline` — configuration `inline/A` (`-O2` intra-procedural
//!    allocation plus the profile-guided inliner): what inlining buys
//!    *without* interprocedural save/restore placement.
//! 3. `inline+IPRA` — configuration `inline/C`: both together. The
//!    budget gate pins this leg's total register-usage penalty at or
//!    below leg 1's — removing calls must never add save/restore
//!    traffic when IPRA is also on.
//!
//! Both inline legs are profile-guided the honest way: a training run
//! under the baseline configuration collects per-block execution counts,
//! and those counts rank the call sites (and feed the allocator's
//! priority function) in the feedback compile. The training module is
//! compiled without inlining, so its block numbering is exactly the
//! pre-inline prepared-module order the inliner consumes.

use ipra_driver::Config;
use ipra_machine::CostModel;
use ipra_obs::json::Json;
use ipra_workloads::Workload;

/// One leg's measurements for one workload.
#[derive(Clone, Debug)]
pub struct LegResult {
    /// Leg label (`off`, `inline`, `inline+IPRA`).
    pub leg: String,
    /// Configuration name the leg compiled under.
    pub config: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Scalar loads + stores.
    pub scalar_mem: u64,
    /// Save/restore penalty cycles (Eqs 3.5/3.6 summed over all edges).
    pub penalty_cycles: u64,
    /// Direct call sites the inliner looked at (0 on the off leg).
    pub sites_considered: u64,
    /// Call sites actually inlined.
    pub sites_inlined: u64,
    /// Candidates refused for budget exhaustion alone.
    pub budget_stops: u64,
    /// Program output, for cross-leg equality checking.
    pub output: Vec<i64>,
}

/// All three legs for one workload.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Workload name.
    pub workload: String,
    /// `off`, `inline`, `inline+IPRA`, in that order.
    pub legs: Vec<LegResult>,
}

/// The three ablation configurations, in leg order.
pub fn ablation_configs() -> Vec<(&'static str, Config)> {
    vec![
        ("off", Config::c()),
        ("inline", Config::inline_a()),
        ("inline+IPRA", Config::inline_c()),
    ]
}

/// Per-`[function][block]` execution counts from a training run.
type BlockProfile = Vec<Vec<u64>>;

fn run_leg(
    leg: &str,
    module: &ipra_ir::Module,
    config: &Config,
    profile: Option<&[Vec<u64>]>,
    want_profile: bool,
) -> Result<(LegResult, Option<BlockProfile>), String> {
    let compiled =
        ipra_core::ipra::compile_module_with_profile(module, &config.target, &config.opts, profile);
    let mut sim_opts = ipra_sim::SimOptions::for_target(&config.target.regs)
        .check_preservation(compiled.clobber_masks.clone());
    if want_profile {
        sim_opts = sim_opts.with_block_profile();
    }
    let r = ipra_sim::run(&compiled.mmodule, &config.target.regs, &sim_opts)
        .map_err(|t| format!("[{leg}/{}] trapped: {t}", config.name))?;
    let result = LegResult {
        leg: leg.to_string(),
        config: config.name.clone(),
        cycles: r.stats.cycles,
        scalar_mem: r.stats.scalar_mem(),
        penalty_cycles: r.stats.penalty_cycles(&CostModel::default()),
        sites_considered: compiled.inline.sites_considered,
        sites_inlined: compiled.inline.inlined,
        budget_stops: compiled.inline.budget_stops,
        output: r.output,
    };
    Ok((result, r.block_profile))
}

/// Runs the full three-leg ablation over `workloads`, applying a `--jobs`
/// override when given.
///
/// # Errors
///
/// Returns an error on a simulator trap or on a cross-leg output
/// mismatch — both indicate an inliner or allocator bug, and the caller
/// (binary or test) must fail loudly.
pub fn run_ablation(
    workloads: &[Workload],
    jobs: Option<usize>,
) -> Result<Vec<AblationRow>, String> {
    let mut corpus = Vec::new();
    for w in workloads {
        let module =
            ipra_frontend::compile(w.source).map_err(|e| format!("[{}] frontend: {e}", w.name))?;
        corpus.push((w.name.to_string(), module));
    }
    run_ablation_modules(&corpus, jobs, None)
}

/// The ablation over already-compiled modules — the entry point the
/// `inline_golden` test uses on its mixed fixture/generator corpus. When
/// `cache_dir` is given, every compile goes through the incremental
/// allocation cache under `<dir>/<workload>` (the three legs share the
/// directory; their config fingerprints keep the entries apart), so a
/// second run over the same directory measures the warm path.
///
/// # Errors
///
/// Same contract as [`run_ablation`].
pub fn run_ablation_modules(
    corpus: &[(String, ipra_ir::Module)],
    jobs: Option<usize>,
    cache_dir: Option<&std::path::Path>,
) -> Result<Vec<AblationRow>, String> {
    let mut rows = Vec::new();
    for (name, module) in corpus {
        let mut legs: Vec<LegResult> = Vec::new();
        let mut profile: Option<Vec<Vec<u64>>> = None;
        for (i, (leg, mut config)) in ablation_configs().into_iter().enumerate() {
            if let Some(j) = jobs {
                config.opts.jobs = j;
            }
            if let Some(dir) = cache_dir {
                config.opts.cache_dir = Some(dir.join(name));
            }
            // Leg 0 doubles as the training run; its block profile feeds
            // both inline legs.
            let (result, trained) = run_leg(leg, module, &config, profile.as_deref(), i == 0)?;
            if i == 0 {
                profile = trained;
            } else if result.output != legs[0].output {
                return Err(format!("[{name}/{leg}] output differs from the off leg"));
            }
            legs.push(result);
        }
        rows.push(AblationRow {
            workload: name.clone(),
            legs,
        });
    }
    Ok(rows)
}

fn sum(rows: &[AblationRow], leg: usize, f: impl Fn(&LegResult) -> u64) -> u64 {
    rows.iter().map(|r| f(&r.legs[leg])).sum()
}

/// Renders the ablation as the `BENCH_inline.json` document: one row per
/// workload plus the `total` object `bench --check-budgets` gates on.
/// Deterministic: no timestamps, fixed key order, fixed leg order.
pub fn ablation_to_json(rows: &[AblationRow]) -> Json {
    let row_docs = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("workload", Json::Str(r.workload.clone())),
                (
                    "legs",
                    Json::Arr(
                        r.legs
                            .iter()
                            .map(|l| {
                                Json::obj(vec![
                                    ("leg", Json::Str(l.leg.clone())),
                                    ("config", Json::Str(l.config.clone())),
                                    ("cycles", Json::Int(l.cycles as i64)),
                                    ("scalar_mem", Json::Int(l.scalar_mem as i64)),
                                    ("penalty_cycles", Json::Int(l.penalty_cycles as i64)),
                                    ("sites_considered", Json::Int(l.sites_considered as i64)),
                                    ("sites_inlined", Json::Int(l.sites_inlined as i64)),
                                    ("budget_stops", Json::Int(l.budget_stops as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let total = Json::obj(vec![
        ("workloads", Json::Int(rows.len() as i64)),
        (
            "penalty_off",
            Json::Int(sum(rows, 0, |l| l.penalty_cycles) as i64),
        ),
        (
            "penalty_inline",
            Json::Int(sum(rows, 1, |l| l.penalty_cycles) as i64),
        ),
        (
            "penalty_inline_ipra",
            Json::Int(sum(rows, 2, |l| l.penalty_cycles) as i64),
        ),
        ("cycles_off", Json::Int(sum(rows, 0, |l| l.cycles) as i64)),
        (
            "cycles_inline_ipra",
            Json::Int(sum(rows, 2, |l| l.cycles) as i64),
        ),
        (
            "sites_considered",
            Json::Int(sum(rows, 2, |l| l.sites_considered) as i64),
        ),
        (
            "sites_inlined",
            Json::Int(sum(rows, 2, |l| l.sites_inlined) as i64),
        ),
        (
            "budget_stops",
            Json::Int(sum(rows, 2, |l| l.budget_stops) as i64),
        ),
    ]);
    Json::obj(vec![
        ("bench", Json::Str("inline_ablation".into())),
        ("rows", Json::Arr(row_docs)),
        ("total", total),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_ablation_is_sound_and_gateable() {
        let workloads: Vec<_> = ipra_workloads::all().into_iter().take(2).collect();
        let rows = run_ablation(&workloads, Some(1)).unwrap();
        assert_eq!(rows.len(), 2);
        let doc = ablation_to_json(&rows);
        let total = doc.get("total").unwrap();
        let g = |k: &str| total.get(k).and_then(Json::as_i64).unwrap();
        assert!(g("penalty_off") > 0, "baseline pays some penalty");
        assert!(
            g("penalty_inline_ipra") <= g("penalty_off"),
            "the budget gate's invariant must hold on the small corpus too"
        );
        assert!(g("sites_considered") > 0);
    }

    #[test]
    fn off_leg_reports_no_inliner_activity() {
        let workloads: Vec<_> = ipra_workloads::all().into_iter().take(1).collect();
        let rows = run_ablation(&workloads, Some(1)).unwrap();
        assert_eq!(rows[0].legs[0].sites_considered, 0);
        assert_eq!(rows[0].legs[0].sites_inlined, 0);
    }
}
