//! Figure 2 reproduction: the shrink-wrap double-save hazard and its range
//! extension fix. The paper's CFG (a register appearing in two blocks with
//! a path between their regions) would get two saves from the naive
//! equations; instead of inserting a new CFG node, APP is extended and the
//! save merges upward. We build the exact shape and show the resulting
//! placement plus the iteration count (paper: "from one to two
//! iterations").

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_cfg::{Cfg, Dominators, LoopInfo};
use ipra_core::shrinkwrap::{shrink_wrap, verify_plan};
use ipra_ir::builder::FunctionBuilder;
use ipra_machine::RegMask;

/// 0 -> {1, 2}; 1 -> {3, 4}; 2 -> 4; 3 ret; 4 ret. APP in 2 and 4.
fn fig2_cfg() -> (Cfg, LoopInfo) {
    let mut b = FunctionBuilder::new("fig2");
    let n1 = b.new_block();
    let n2 = b.new_block();
    let n3 = b.new_block();
    let n4 = b.new_block();
    let c = b.copy(1);
    b.cond_br(c, n1, n2);
    b.switch_to(n1);
    let c2 = b.copy(1);
    b.cond_br(c2, n3, n4);
    b.switch_to(n2);
    b.br(n4);
    b.ret(None);
    b.switch_to(n3);
    b.ret(None);
    let f = b.build();
    let cfg = Cfg::new(&f);
    let dom = Dominators::compute(&cfg);
    let loops = LoopInfo::compute(&cfg, &dom);
    (cfg, loops)
}

fn print_figure() {
    println!("\n=== Figure 2 reproduction: range extension avoids double saves ===");
    let (cfg, loops) = fig2_cfg();
    let r = RegMask(1);
    let mut app = vec![RegMask::EMPTY; 5];
    app[2] = r;
    app[4] = r;
    let plan = shrink_wrap(&cfg, &loops, &app);
    verify_plan(&cfg, &app, &plan).expect("placement is correct");
    for i in 0..5 {
        if !plan.save_at[i].is_empty() || !plan.restore_at[i].is_empty() {
            println!(
                "  block {i}: save {:?}, restore {:?}",
                plan.save_at[i], plan.restore_at[i]
            );
        }
    }
    println!("  range-extension iterations: {}", plan.iterations);
    assert!(plan.iterations >= 2, "this shape requires extension");
    assert!(plan.iterations <= 3, "paper: one to two extension rounds");
    let total_saves: u32 = plan.save_at.iter().map(|m| m.count()).sum();
    assert_eq!(
        total_saves, 1,
        "exactly one save after merging, no new CFG node"
    );
    println!("  [figure 2 claim verified: single save, no edge splitting]\n");
}

fn run(c: &mut Criterion) {
    print_figure();
    let (cfg, loops) = fig2_cfg();
    let r = RegMask(1);
    let mut app = vec![RegMask::EMPTY; 5];
    app[2] = r;
    app[4] = r;
    c.bench_function("fig2_shrink_wrap", |b| {
        b.iter(|| shrink_wrap(&cfg, &loops, &app))
    });
}

criterion_group!(benches, run);
criterion_main!(benches);
