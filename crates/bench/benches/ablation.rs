//! Ablations of the design choices DESIGN.md calls out, plus the paper's
//! prose claim that shrink-wrap range extension needs only one or two
//! iterations on real control flow.

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_core::config::AllocOptions;
use ipra_driver::{compile_and_run, compile_only, Config};

fn custom(name: &str, f: impl FnOnce(&mut AllocOptions)) -> Config {
    let mut c = Config::c();
    c.name = name.to_string();
    f(&mut c.opts);
    c
}

fn print_ablation() {
    println!("\n=== Ablations: scalar loads/stores under -O3 variants ===");
    let configs = vec![
        Config::c(),
        custom("-split", |o| o.split_ranges = false),
        custom("-params", |o| o.custom_param_regs = false),
        custom("-promote", |o| o.promote_globals = false),
        Config::b(), // -O3 without shrink-wrap (drops the §6 rule too)
    ];
    print!("{:<10}", "program");
    for c in &configs {
        print!(" {:>10}", c.name);
    }
    println!("  | sw-iters");
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        print!("{:<10}", w.name);
        let mut base_out = None;
        for c in &configs {
            let m = compile_and_run(&module, c)
                .unwrap_or_else(|t| panic!("[{}/{}] {t}", w.name, c.name));
            match &base_out {
                None => base_out = Some(m.output.clone()),
                Some(o) => assert_eq!(&m.output, o, "[{}/{}]", w.name, c.name),
            }
            print!(" {:>10}", m.scalar_mem());
        }
        // Paper §5: "this extension ... requires from one to two iterations".
        let compiled = compile_only(&module, &Config::c());
        let max_iters = compiled
            .reports
            .iter()
            .map(|r| r.shrink_iterations)
            .max()
            .unwrap_or(0);
        println!("  | {max_iters}");
        assert!(
            max_iters <= 3,
            "[{}] extension exploded: {max_iters}",
            w.name
        );
    }
    println!("(columns: full -O3, without splitting, without §4 parameter binding,");
    println!(" without global promotion, without shrink-wrap/§6)\n");

    // Live-range splitting only matters under register pressure; repeat the
    // split ablation with a starved register file (4 caller + 3 callee).
    println!("=== Splitting under register starvation (4+3 registers), scalar l/s ===");
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "program", "split", "no-split", "benefit"
    );
    let mut tight = Config::c();
    tight.target = ipra_machine::Target::with_class_limits(4, 3);
    let mut tight_nosplit = tight.clone();
    tight_nosplit.opts.split_ranges = false;
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        let a = compile_and_run(&module, &tight).unwrap();
        let b = compile_and_run(&module, &tight_nosplit).unwrap();
        assert_eq!(a.output, b.output, "[{}]", w.name);
        println!(
            "{:<10} {:>12} {:>12} {:>8.1}%",
            w.name,
            a.scalar_mem(),
            b.scalar_mem(),
            (b.scalar_mem() as f64 - a.scalar_mem() as f64) / b.scalar_mem().max(1) as f64 * 100.0
        );
    }
    println!();
}

fn run(c: &mut Criterion) {
    print_ablation();
    let module =
        ipra_workloads::compile_workload(ipra_workloads::by_name("upas").unwrap()).unwrap();
    c.bench_function("ablation_compile_nosplit", |b| {
        b.iter(|| compile_only(&module, &custom("-split", |o| o.split_ranges = false)))
    });
}

criterion_group!(benches, run);
criterion_main!(benches);
