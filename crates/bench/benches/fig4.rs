//! Figure 4 reproduction: where should a register's save/restore live in
//! the call graph? Procedure p holds a value in a register across calls to
//! q and also calls r, which wants the same register. The save can sit
//! around p's call to r, or at r's entry/exit — and which is cheaper
//! depends on the relative call frequencies (paper §6). We sweep the
//! frequency ratio and show the inter-procedural allocator tracking the
//! winner, with the measured crossover.

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_driver::{compile_and_run, Config};
use ipra_machine::MemClass;

/// p calls q `nq` times and r `nr` times per invocation; r is register
/// hungry (it wants many registers, including ones p holds live).
fn module_for(nq: i64, nr: i64) -> ipra_ir::Module {
    let src = format!(
        r#"
        fn q(x: int) -> int {{ return x + 1; }}
        fn r(x: int) -> int {{
            var b0: int = x + 1;  var b1: int = x * 3;  var b2: int = x - 7;
            var b3: int = x * 5;  var b4: int = b0 + b1; var b5: int = b2 + b3;
            var b6: int = b4 * b5 % 1009; var b7: int = b0 + b5;
            var b8: int = b1 + b6; var b9: int = b7 + b8;
            var b10: int = b9 + b2; var b11: int = b10 * 3;
            var b12: int = b11 + b4; var b13: int = b12 - b6;
            var b14: int = b13 + b7; var b15: int = b14 * 7 % 2003;
            var b16: int = b15 + b8; var b17: int = b16 + b9;
            return b0 + b3 + b6 + b9 + b12 + b15 + b17;
        }}
        fn p(x: int) -> int {{
            var keep: int = x * 11 + 3;      // lives across every call below
            var acc: int = 0;
            var i: int = 0;
            while i < {nq} {{
                acc = acc + q(keep + i);
                i = i + 1;
            }}
            var j: int = 0;
            while j < {nr} {{
                acc = acc + r(keep + j);
                j = j + 1;
            }}
            return acc + keep;
        }}
        fn main() {{
            var t: int = 0;
            var k: int = 0;
            while k < 25 {{
                t = t + p(k);
                k = k + 1;
            }}
            print(t);
        }}
        "#
    );
    ipra_frontend::compile(&src).expect("figure module compiles")
}

fn measure(nq: i64, nr: i64, cfg: &Config) -> (u64, u64) {
    let module = module_for(nq, nr);
    let m = compile_and_run(&module, cfg).unwrap();
    (
        m.stats.cycles,
        m.stats.loads(MemClass::SaveRestore) + m.stats.stores(MemClass::SaveRestore),
    )
}

fn print_figure() {
    println!("\n=== Figure 4 reproduction: save placement vs call frequency ===");
    println!(
        "{:<14} {:>14} {:>14} {:>16}",
        "calls (q, r)", "-O2 saves", "-O3 saves", "-O3 cycle gain %"
    );
    for (nq, nr) in [(40, 1), (20, 5), (10, 10), (5, 20), (1, 40)] {
        let (c2, s2) = measure(nq, nr, &Config::o2_base());
        let (c3, s3) = measure(nq, nr, &Config::c());
        println!(
            "{:<14} {:>14} {:>14} {:>15.1}%",
            format!("({nq}, {nr})"),
            s2,
            s3,
            (c2 as f64 - c3 as f64) / c2 as f64 * 100.0
        );
    }
    // Shape assertion: IPRA must not lose on either frequency extreme.
    let (c2a, _) = measure(40, 1, &Config::o2_base());
    let (c3a, _) = measure(40, 1, &Config::c());
    let (c2b, _) = measure(1, 40, &Config::o2_base());
    let (c3b, _) = measure(1, 40, &Config::c());
    assert!(c3a <= c2a, "q-heavy: {c3a} vs {c2a}");
    assert!(c3b <= c2b, "r-heavy: {c3b} vs {c2b}");
    println!("  [figure 4: allocator adapts the save placement to the frequencies]\n");
}

fn run(c: &mut Criterion) {
    print_figure();
    let module = module_for(10, 10);
    c.bench_function("fig4_compile_c", |b| {
        b.iter(|| ipra_driver::compile_only(&module, &Config::c()))
    });
}

criterion_group!(benches, run);
criterion_main!(benches);
