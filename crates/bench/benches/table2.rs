//! Table 2 reproduction (paper §8): the register-class experiment.
//! D = inter-procedural allocation restricted to 7 caller-saved registers,
//! E = restricted to 7 callee-saved registers, both vs the full-set -O2
//! baseline. The paper's claim: caller-saved wins on the small programs
//! (nim, map, stanford, and the anomalous ccom), callee-saved on the large.

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_driver::{compile_only, table_row, Config};

fn print_table() {
    println!("\n=== Table 2 reproduction: % reduction vs -O2 full register set ===");
    println!(
        "{:<10} | {:>7} {:>7} | {:>7} {:>7} | winner",
        "program", "I.D", "I.E", "II.D", "II.E"
    );
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        let row = table_row(
            w.name,
            &module,
            &Config::o2_base(),
            &[Config::d(), Config::e()],
        );
        let (d_c, e_c) = (row.columns[0].1, row.columns[1].1);
        let winner = if (d_c - e_c).abs() < 0.05 {
            "tie"
        } else if d_c > e_c {
            "caller-saved (D)"
        } else {
            "callee-saved (E)"
        };
        println!(
            "{:<10} | {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}% | {winner}",
            row.workload, d_c, e_c, row.columns[0].2, row.columns[1].2
        );
    }
    println!(
        "(key: D = -O3+SW with 7 caller-saved regs, E = with 7 callee-saved; paper Table 2)\n"
    );
}

fn table_then_bench(c: &mut Criterion) {
    print_table();
    let w = ipra_workloads::by_name("map").unwrap();
    let module = ipra_workloads::compile_workload(w).unwrap();
    c.bench_function("compile_map_7caller", |b| {
        b.iter(|| compile_only(&module, &Config::d()))
    });
    c.bench_function("compile_map_7callee", |b| {
        b.iter(|| compile_only(&module, &Config::e()))
    });
}

criterion_group!(benches, table_then_bench);
criterion_main!(benches);
