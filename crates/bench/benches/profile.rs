//! Profile feedback (the paper's §8 future work, implemented): per-block
//! execution counts from a training run replace the static loop-depth
//! weights in the priority function. The demonstration case is the one the
//! paper describes for ccom: static weights favour loop-resident values,
//! but the loop is cold and the straight-line path is hot.

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_driver::{compile_and_run, profile_guided, Config};

/// A function with a cold loop whose variables look hot to static weights,
/// competing against genuinely hot straight-line values that span calls.
fn misleading_module() -> ipra_ir::Module {
    ipra_frontend::compile(
        r#"
        fn callee(x: int) -> int { return x + 1; }
        fn work(n: int) -> int {
            // Hot straight-line values live across calls.
            var h1: int = n * 3;
            var h2: int = n * 5;
            var h3: int = n * 7;
            var a: int = callee(h1);
            var b: int = callee(h2);
            var c: int = callee(h3);
            var hot: int = a + b + c + h1 + h2 + h3;
            // A loop that static weights consider 10x hotter, but that
            // almost never executes.
            var acc: int = 0;
            if n < 0 {
                var i: int = 0;
                while i < 100 {
                    var l1: int = i * 2;
                    var l2: int = i * 3;
                    var l3: int = callee(l1);
                    acc = acc + l2 + l3;
                    i = i + 1;
                }
            }
            return hot + acc;
        }
        fn main() {
            var t: int = 0;
            var k: int = 0;
            while k < 300 {
                t = t + work(k);
                k = k + 1;
            }
            print(t);
        }
        "#,
    )
    .expect("module compiles")
}

fn print_comparison() {
    println!("\n=== Profile feedback (paper §8 future work) ===");
    println!("  (register file restricted to 3 caller-saved + 2 callee-saved so the");
    println!("   allocator must choose; static loop weights favour the cold loop)");
    let module = misleading_module();
    let mut tight_intra = Config::o2_base();
    tight_intra.target = ipra_machine::Target::with_class_limits(3, 2);
    let mut tight_inter = Config::c();
    tight_inter.target = ipra_machine::Target::with_class_limits(3, 2);
    for config in [tight_intra, tight_inter] {
        let static_m = compile_and_run(&module, &config).unwrap();
        let pg = profile_guided(&module, &config).unwrap();
        assert_eq!(static_m.output, pg.output);
        println!(
            "  {:<6} static-weights: {:>8} cycles / {:>6} scalar l-s   profile: {:>8} cycles / {:>6} scalar l-s",
            config.name,
            static_m.cycles(),
            static_m.scalar_mem(),
            pg.cycles(),
            pg.scalar_mem()
        );
        assert!(
            pg.cycles() <= static_m.cycles(),
            "profile feedback must not lose on the training input: {} vs {}",
            pg.cycles(),
            static_m.cycles()
        );
    }

    println!("\n  workloads (cycles, -O3 static vs profile-guided):");
    for name in ["nim", "ccom", "dhrystone", "uopt"] {
        let module =
            ipra_workloads::compile_workload(ipra_workloads::by_name(name).unwrap()).unwrap();
        let s = compile_and_run(&module, &Config::c()).unwrap();
        let p = profile_guided(&module, &Config::c()).unwrap();
        assert_eq!(s.output, p.output, "[{name}]");
        println!(
            "  {:<10} {:>10} -> {:>10}  ({:+.2}%)",
            name,
            s.cycles(),
            p.cycles(),
            (s.cycles() as f64 - p.cycles() as f64) / s.cycles() as f64 * 100.0
        );
    }
    println!();
}

fn run(c: &mut Criterion) {
    print_comparison();
    let module = misleading_module();
    c.bench_function("profile_guided_pipeline", |b| {
        b.iter(|| profile_guided(&module, &Config::c()).unwrap())
    });
}

criterion_group!(benches, run);
criterion_main!(benches);
