//! Figure 3 reproduction: the effect of shrink-wrapping depends on the
//! execution path. A procedure has two consecutive diamonds; callee-saved
//! state is needed only in the first diamond's left arm. With saves at
//! entry/exit (no shrink-wrap) every path pays; with shrink-wrap only paths
//! through the left arm pay. Of the four equally likely paths the paper
//! notes one win, one loss (none here — our placement has no added
//! branches) and two neutral; we measure all four.

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_driver::{compile_and_run, Config};
use ipra_machine::MemClass;

/// The measured procedure: flag1 picks the arm with call-crossing values,
/// flag2 picks an irrelevant arm in the second diamond.
fn module_for(flag1: i64, flag2: i64) -> ipra_ir::Module {
    let src = format!(
        r#"
        fn helper(x: int) -> int {{ return x + 1; }}
        fn work(f1: int, f2: int) -> int {{
            var r: int = 0;
            if f1 == 1 {{
                var k1: int = 10;
                var k2: int = 20;
                var c1: int = helper(k1);
                var c2: int = helper(k2);
                r = c1 + c2 + k1 + k2;
            }} else {{
                r = 1;
            }}
            if f2 == 1 {{
                r = r * 2;
            }} else {{
                r = r + 5;
            }}
            return r;
        }}
        fn main() {{
            var i: int = 0;
            var acc: int = 0;
            while i < 50 {{
                acc = acc + work({flag1}, {flag2});
                i = i + 1;
            }}
            print(acc);
        }}
        "#
    );
    ipra_frontend::compile(&src).expect("figure module compiles")
}

fn saves(module: &ipra_ir::Module, cfg: &Config) -> u64 {
    let m = compile_and_run(module, cfg).unwrap();
    m.stats.loads(MemClass::SaveRestore) + m.stats.stores(MemClass::SaveRestore)
}

fn print_figure() {
    println!("\n=== Figure 3 reproduction: shrink-wrap effect per execution path ===");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "path(f1,f2)", "no-SW saves", "SW saves", "effect"
    );
    let mut helped = 0;
    let mut neutral = 0;
    for (f1, f2) in [(1, 1), (1, 0), (0, 1), (0, 0)] {
        let module = module_for(f1, f2);
        let no_sw = saves(&module, &Config::o2_base());
        let sw = saves(&module, &Config::a());
        let effect = if sw < no_sw {
            helped += 1;
            "win"
        } else if sw == no_sw {
            neutral += 1;
            "neutral"
        } else {
            "loss"
        };
        println!(
            "{:<12} {:>12} {:>12} {:>8}",
            format!("({f1},{f2})"),
            no_sw,
            sw,
            effect
        );
    }
    assert!(helped >= 1, "the cold-path runs must win");
    assert!(
        helped + neutral == 4,
        "no path may lose with block-entry insertion"
    );
    println!("  [figure 3: {helped} winning path(s), {neutral} neutral]\n");
}

fn run(c: &mut Criterion) {
    print_figure();
    let module = module_for(0, 0);
    c.bench_function("fig3_compile_a", |b| {
        b.iter(|| ipra_driver::compile_only(&module, &Config::a()))
    });
}

criterion_group!(benches, run);
criterion_main!(benches);
