//! Figure 1 reproduction: "Re-use of register in simultaneously active
//! procedures". Procedure p's variable `a` dies before p calls q; q's
//! variable `c` and p's later variable `b` never overlap `a`. Although p
//! and q are active at the same time, one register serves all three
//! variables with no save/restore, and the whole call tree's register
//! footprint stays minimal.

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_driver::{compile_and_run, compile_only, Config};
use ipra_machine::MemClass;

fn figure_module() -> ipra_ir::Module {
    ipra_frontend::compile(
        r#"
        fn q(x: int) -> int {
            var c: int = x * 2;
            return c + 1;
        }
        fn p(x: int) -> int {
            var a: int = x + 3;      // a dies at the call below
            var r: int = q(a);
            var b: int = r * 5;      // b is born after the call
            return b - 1;
        }
        fn main() {
            var i: int = 0;
            var acc: int = 0;
            while i < 100 {
                acc = acc + p(i);
                i = i + 1;
            }
            print(acc);
        }
        "#,
    )
    .expect("figure module compiles")
}

fn print_figure() {
    println!("\n=== Figure 1 reproduction: register re-use across active procedures ===");
    let module = figure_module();
    let cfg = Config::o3();
    let compiled = compile_only(&module, &cfg);
    for report in &compiled.reports {
        if report.name == "p" || report.name == "q" {
            println!(
                "  {}: registers used = {:?}, locally saved = {:?}",
                report.name, report.used, report.locally_saved
            );
        }
    }
    let p = compiled.reports.iter().find(|r| r.name == "p").unwrap();
    let q = compiled.reports.iter().find(|r| r.name == "q").unwrap();
    let shared = p.used.intersect(q.used);
    println!("  shared registers between p and q: {shared:?}");
    assert!(
        !shared.is_empty(),
        "p and q must share at least one register despite being simultaneously active"
    );
    assert!(p.locally_saved.is_empty() && q.locally_saved.is_empty());

    let m = compile_and_run(&module, &cfg).unwrap();
    let saves = m.stats.loads(MemClass::SaveRestore) + m.stats.stores(MemClass::SaveRestore);
    // The only save/restore traffic left is the link-register protocol of
    // the non-leaf procedures: main (1 activation) and p (100 activations),
    // two memory ops each. No *variable* register is ever saved.
    let ra_only = 2 * (1 + 100);
    println!(
        "  dynamic save/restore memory ops under -O3: {saves} (link register only: {ra_only})"
    );
    assert_eq!(saves, ra_only, "all save traffic must be the ra protocol");
    println!("  [figure 1 claim verified]\n");
}

fn run(c: &mut Criterion) {
    print_figure();
    let module = figure_module();
    c.bench_function("fig1_compile_o3", |b| {
        b.iter(|| compile_only(&module, &Config::o3()))
    });
}

criterion_group!(benches, run);
criterion_main!(benches);
