//! Allocator throughput: the paper claims the per-register priorities "do
//! not add noticeably to the running time of the coloring algorithm" (§2).
//! We time intra- vs inter-procedural compilation over growing synthetic
//! call trees and over the largest workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipra_driver::{compile_only, Config};
use ipra_workloads::synth::call_tree_program;

fn print_summary() {
    println!("\n=== Allocator throughput: intra vs inter (wall-clock via criterion) ===");
    println!("The paper's claim (§2): per-(variable,register) priorities add no");
    println!("noticeable cost — compare o2/o3 pairs below.\n");
}

fn run(c: &mut Criterion) {
    print_summary();
    let mut group = c.benchmark_group("call_tree");
    for depth in [4usize, 6, 8] {
        let module = call_tree_program(depth, 2, 6, 1);
        let insts = module.num_insts() as u64;
        group.throughput(Throughput::Elements(insts));
        group.bench_with_input(BenchmarkId::new("o2", depth), &module, |b, m| {
            b.iter(|| compile_only(m, &Config::o2_base()))
        });
        group.bench_with_input(BenchmarkId::new("o3", depth), &module, |b, m| {
            b.iter(|| compile_only(m, &Config::c()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("workload");
    for name in ["stanford", "uopt"] {
        let module =
            ipra_workloads::compile_workload(ipra_workloads::by_name(name).unwrap()).unwrap();
        group.bench_with_input(BenchmarkId::new("o2", name), &module, |b, m| {
            b.iter(|| compile_only(m, &Config::o2_base()))
        });
        group.bench_with_input(BenchmarkId::new("o3", name), &module, |b, m| {
            b.iter(|| compile_only(m, &Config::c()))
        });
    }
    group.finish();
}

criterion_group!(benches, run);
criterion_main!(benches);
