//! Table 1 reproduction (paper §8): percentage reduction in cycles and in
//! scalar loads/stores for configurations
//!   A = -O2 + shrink-wrap, B = -O3 without shrink-wrap, C = -O3 + SW,
//! relative to the -O2 baseline, over the 13 workload analogs — then a
//! criterion timing of the full compilation pipeline on one workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ipra_driver::{compile_only, table_row, Config};

fn print_table() {
    println!("\n=== Table 1 reproduction: % reduction vs -O2 (shrink-wrap off) ===");
    println!(
        "{:<10} {:>11} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "program", "cycles/call", "I.A", "I.B", "I.C", "II.A", "II.B", "II.C"
    );
    for w in ipra_workloads::all() {
        let module = ipra_workloads::compile_workload(w).expect("workload compiles");
        let row = table_row(
            w.name,
            &module,
            &Config::o2_base(),
            &[Config::a(), Config::b(), Config::c()],
        );
        println!(
            "{:<10} {:>11.0} | {:>6.1}% {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}% {:>6.1}%",
            row.workload,
            row.cycles_per_call,
            row.columns[0].1,
            row.columns[1].1,
            row.columns[2].1,
            row.columns[0].2,
            row.columns[1].2,
            row.columns[2].2
        );
    }
    println!("(key: A = -O2+SW, B = -O3 no SW, C = -O3+SW; paper Table 1)\n");
}

fn bench(c: &mut Criterion) {
    let w = ipra_workloads::by_name("dhrystone").unwrap();
    let module = ipra_workloads::compile_workload(w).unwrap();
    c.bench_function("compile_dhrystone_o2", |b| {
        b.iter(|| compile_only(&module, &Config::o2_base()))
    });
    c.bench_function("compile_dhrystone_o3", |b| {
        b.iter(|| compile_only(&module, &Config::c()))
    });
}

fn table_then_bench(c: &mut Criterion) {
    print_table();
    bench(c);
}

criterion_group!(benches, table_then_bench);
criterion_main!(benches);
