//! Natural-loop detection and nesting depth.
//!
//! Loops matter to the paper twice: block execution-frequency weights in the
//! priority function scale with loop depth, and shrink-wrap regions must not
//! penetrate loop boundaries (§5: "whenever a register is used inside a
//! loop, we propagate its APP attribute throughout the entire region of the
//! loop").

use ipra_ir::BlockId;

use crate::bitset::BitSet;
use crate::dominators::Dominators;
use crate::graph::Cfg;

/// One natural loop: all back edges sharing a header are merged.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header (dominates every block of the loop).
    pub header: BlockId,
    /// Blocks in the loop, including the header.
    pub blocks: BitSet,
}

/// All natural loops of a function plus per-block nesting depth.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// Detected loops (unordered).
    pub loops: Vec<NaturalLoop>,
    /// `depth[b]` = number of loops containing block `b` (0 outside loops).
    pub depth: Vec<u32>,
}

impl LoopInfo {
    /// Detects natural loops from back edges (`u -> h` where `h` dominates
    /// `u`). Irreducible cycles produce no loop entry, which is conservative
    /// for weights and for the shrink-wrap loop constraint.
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> Self {
        let n = cfg.num_blocks();
        let mut by_header: std::collections::HashMap<BlockId, BitSet> =
            std::collections::HashMap::new();

        for &u in &cfg.rpo {
            for &h in cfg.succs(u) {
                if dom.dominates(h, u) {
                    // Back edge u -> h: collect the natural loop.
                    let body = by_header.entry(h).or_insert_with(|| {
                        let mut s = BitSet::new(n);
                        s.insert(h.index());
                        s
                    });
                    let mut work = vec![u];
                    while let Some(b) = work.pop() {
                        if body.insert(b.index()) {
                            for &p in cfg.preds(b) {
                                work.push(p);
                            }
                        }
                    }
                }
            }
        }

        let loops: Vec<NaturalLoop> = by_header
            .into_iter()
            .map(|(header, blocks)| NaturalLoop { header, blocks })
            .collect();

        let mut depth = vec![0u32; n];
        for l in &loops {
            for b in l.blocks.iter() {
                depth[b] += 1;
            }
        }
        LoopInfo { loops, depth }
    }

    /// Loop nesting depth of `b`.
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Execution-frequency weight used by the priority function:
    /// `base^depth`, capped to avoid overflow. The paper's Uopt used static
    /// loop-based frequency estimates; we use the conventional base of 10.
    pub fn weight(&self, b: BlockId) -> f64 {
        const BASE: f64 = 10.0;
        BASE.powi(self.depth(b).min(8) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::Function;

    /// Nested loops:
    /// bb0 -> bb1(h1) -> bb2(h2) -> bb3 -> bb2 ; bb2 -> bb1 ; bb1 -> bb4 ret
    fn nested() -> Function {
        let mut b = FunctionBuilder::new("n");
        let h1 = b.new_block();
        let h2 = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(h1);
        let c1 = b.copy(1);
        b.cond_br(c1, h2, exit);
        b.switch_to(h2);
        let c2 = b.copy(1);
        b.cond_br(c2, body, h1);
        b.switch_to(body);
        b.br(h2);
        b.switch_to(exit);
        b.ret(None);
        b.build()
    }

    #[test]
    fn nested_loop_depths() {
        let f = nested();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &dom);
        assert_eq!(li.loops.len(), 2);
        assert_eq!(li.depth(BlockId(0)), 0);
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 2);
        assert_eq!(li.depth(BlockId(3)), 2);
        assert_eq!(li.depth(BlockId(4)), 0);
        assert!(li.weight(BlockId(2)) > li.weight(BlockId(1)));
        assert_eq!(li.weight(BlockId(4)), 1.0);
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = FunctionBuilder::new("s");
        b.ret(None);
        let f = b.build();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &dom);
        assert!(li.loops.is_empty());
        assert_eq!(li.depth(BlockId(0)), 0);
    }

    #[test]
    fn self_loop_detected() {
        let mut b = FunctionBuilder::new("sl");
        let l = b.new_block();
        let out = b.new_block();
        b.br(l);
        let c = b.copy(1);
        b.cond_br(c, l, out);
        b.switch_to(out);
        b.ret(None);
        let f = b.build();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &dom);
        assert_eq!(li.loops.len(), 1);
        assert_eq!(li.loops[0].header, BlockId(1));
        assert_eq!(li.loops[0].blocks.count(), 1);
        assert_eq!(li.depth(BlockId(1)), 1);
    }

    #[test]
    fn two_back_edges_same_header_merge() {
        // h has two latches.
        let mut b = FunctionBuilder::new("m");
        let h = b.new_block();
        let l1 = b.new_block();
        let l2 = b.new_block();
        let out = b.new_block();
        b.br(h);
        let c = b.copy(1);
        b.cond_br(c, l1, l2);
        b.switch_to(l1);
        let c1 = b.copy(1);
        b.cond_br(c1, h, out);
        b.switch_to(l2);
        b.br(h);
        b.switch_to(out);
        b.ret(None);
        let f = b.build();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &dom);
        assert_eq!(
            li.loops.len(),
            1,
            "back edges with one header form one loop"
        );
        assert_eq!(li.loops[0].blocks.count(), 3);
    }
}
