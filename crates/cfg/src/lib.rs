//! # ipra-cfg — control-flow analyses
//!
//! Control-flow graph extraction, dominators, natural loops, a generic
//! iterative bit-vector data-flow solver and liveness — the analysis
//! substrate required by priority-based coloring and by the shrink-wrap
//! placement optimization of Chow's PLDI 1988 paper.
//!
//! ```
//! use ipra_ir::builder::FunctionBuilder;
//! use ipra_cfg::{Cfg, Dominators, LoopInfo, Liveness};
//!
//! let mut b = FunctionBuilder::new("f");
//! let x = b.param("x");
//! b.ret(Some(x.into()));
//! let f = b.build();
//!
//! let cfg = Cfg::new(&f);
//! let dom = Dominators::compute(&cfg);
//! let loops = LoopInfo::compute(&cfg, &dom);
//! let live = Liveness::compute(&f, &cfg);
//! assert!(loops.loops.is_empty());
//! assert!(live.is_live_in(f.entry, x));
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod dataflow;
pub mod dominators;
pub mod graph;
pub mod liveness;
pub mod loops;

pub use bitset::BitSet;
pub use dataflow::{solve, DataflowResult, Direction, GenKill, Meet};
pub use dominators::Dominators;
pub use graph::Cfg;
pub use liveness::Liveness;
pub use loops::{LoopInfo, NaturalLoop};
