//! A dense fixed-capacity bit set.

/// A bit set over indices `0..capacity`.
///
/// Used for block sets, liveness sets and interference rows. All binary
/// operations require both operands to have the same capacity.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a full set over `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        s.insert_all();
        s
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics when `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old & (1 << b) != 0
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Makes `self` an exact copy of `other`, reusing the existing word
    /// buffer. Unlike `*self = other.clone()`, a set recycled across many
    /// `copy_from` calls only allocates when it grows past its largest
    /// capacity so far.
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.resize(other.words.len(), 0);
        self.words.copy_from_slice(&other.words);
        self.capacity = other.capacity;
    }

    /// Inserts every index in `0..capacity`.
    pub fn insert_all(&mut self) {
        if self.capacity == 0 {
            return;
        }
        self.words.iter_mut().for_each(|w| *w = u64::MAX);
        let last_bits = self.capacity % 64;
        if last_bits != 0 {
            let n = self.words.len();
            self.words[n - 1] = (1u64 << last_bits) - 1;
        }
    }

    /// `self |= other`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self -= other` (set difference).
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self` and `other` share any element.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the elements of a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports no change");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        assert!(s.contains(66));
        assert!(!s.contains(67));
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(3);
        let mut b = BitSet::new(10);
        b.insert(3);
        b.insert(5);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 5]);
        assert!(a.intersects(&b));
        assert!(a.is_subset_of(&b));
    }

    #[test]
    fn subtract_removes_members() {
        let mut a = BitSet::full(8);
        let mut b = BitSet::new(8);
        b.insert(2);
        b.insert(7);
        a.subtract(&b);
        assert_eq!(a.count(), 6);
        assert!(!a.contains(2) && !a.contains(7));
    }

    #[test]
    fn iterator_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for i in [0, 63, 64, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [5usize, 1, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn copy_from_matches_clone_across_capacities() {
        let mut scratch = BitSet::new(0);
        for cap in [3usize, 130, 64, 0, 65] {
            let mut src = BitSet::new(cap);
            for i in (0..cap).step_by(3) {
                src.insert(i);
            }
            scratch.copy_from(&src);
            assert_eq!(scratch, src, "cap {cap}");
            assert_eq!(scratch.capacity(), cap);
        }
        // The recycled set is fully functional after shrinking.
        let mut small = BitSet::new(2);
        small.insert(1);
        scratch.copy_from(&small);
        assert!(scratch.insert(0));
        assert_eq!(scratch.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let mut f = BitSet::new(0);
        f.insert_all();
        assert!(f.is_empty());
    }
}
