//! Control-flow graph extraction and block orderings.

use ipra_ir::{BlockId, Function};

/// Predecessor/successor structure of a function, plus reachability and
/// depth-first orderings.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Entry block.
    pub entry: BlockId,
    /// Successors of each block (indexed by block).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block (indexed by block), restricted to
    /// reachable predecessors.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks terminated by `ret`, in block order (reachable only).
    pub exits: Vec<BlockId>,
    /// Reverse postorder over reachable blocks (entry first).
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` when unreachable).
    pub rpo_pos: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut rets = Vec::new();
        for (id, b) in func.blocks.iter() {
            b.term.for_each_succ(|s| succs[id.index()].push(s));
            if b.term.is_ret() {
                rets.push(id);
            }
        }
        Self::from_succs(func.entry, succs, &rets)
    }

    /// Builds a CFG from explicit edges: per-block successor lists plus the
    /// `ret`-terminated blocks (in block order). This is how machine-level
    /// consumers (the static verifier) analyze an `MFunction`, whose block
    /// structure lives in `MTerminator`s rather than in an IR `Function`.
    /// Unreachable `rets` entries are dropped from `exits`, mirroring
    /// [`Cfg::new`].
    pub fn from_succs(entry: BlockId, succs: Vec<Vec<BlockId>>, rets: &[BlockId]) -> Self {
        let n = succs.len();
        // Iterative DFS computing postorder over reachable blocks.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack holds (block, next successor index to visit).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let mut rpo = post;
        rpo.reverse();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }

        let mut preds = vec![Vec::new(); n];
        for &b in &rpo {
            for &s in &succs[b.index()] {
                preds[s.index()].push(b);
            }
        }

        let exits = rets
            .iter()
            .copied()
            .filter(|b| visited[b.index()])
            .collect();

        Cfg {
            entry,
            succs,
            preds,
            exits,
            rpo,
            rpo_pos,
        }
    }

    /// Number of blocks in the underlying function (reachable or not).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Reachable predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::instr::BinOp;

    /// entry -> (then | else) -> join -> ret, plus an unreachable block.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d");
        let x = b.param("x");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let dead = b.new_block();
        let c = b.bin(BinOp::Lt, x, 0);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        b.build()
    }

    #[test]
    fn diamond_structure() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.num_blocks(), 5);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)).len(), 2);
        assert_eq!(cfg.exits, vec![BlockId(3)]);
        assert!(cfg.is_reachable(BlockId(3)));
        assert!(!cfg.is_reachable(BlockId(4)), "dead block is unreachable");
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(cfg.rpo[0], BlockId(0), "rpo starts at entry");
    }

    #[test]
    fn rpo_respects_edges_in_acyclic_graph() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        for &b in &cfg.rpo {
            for &s in cfg.succs(b) {
                assert!(
                    cfg.rpo_pos[b.index()] < cfg.rpo_pos[s.index()],
                    "acyclic edge {b}->{s} must go forward in rpo"
                );
            }
        }
    }

    #[test]
    fn self_loop_function() {
        let mut b = FunctionBuilder::new("lp");
        let l = b.new_block();
        b.br(l);
        // l: loop back to itself conditionally, else return.
        let out = b.new_block();
        let c = b.copy(0);
        b.cond_br(c, l, out);
        b.switch_to(out);
        b.ret(None);
        let f = b.build();
        let cfg = Cfg::new(&f);
        assert!(
            cfg.preds(BlockId(1)).contains(&BlockId(1)),
            "self edge recorded"
        );
        assert_eq!(cfg.exits, vec![BlockId(2)]);
    }
}
