//! Dominator tree computation (Cooper–Harvey–Kennedy).

use ipra_ir::BlockId;

use crate::graph::Cfg;

/// Immediate-dominator table for the reachable part of a CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the entry block is its
    /// own idom; unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators with the Cooper–Harvey–Kennedy iterative
    /// algorithm over the reverse postorder.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry.index()] = Some(cfg.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while cfg.rpo_pos[a.index()] > cfg.rpo_pos[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while cfg.rpo_pos[b.index()] > cfg.rpo_pos[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators {
            idom,
            entry: cfg.entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the entry and for unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::Function;

    /// bb0 -> bb1 -> bb2 -> bb1 (loop); bb1 -> bb3 (exit)
    fn looped() -> Function {
        let mut b = FunctionBuilder::new("l");
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(h);
        let c = b.copy(1);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        b.build()
    }

    #[test]
    fn idoms_of_loop() {
        let f = looped();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(1)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn diamond_join_dominated_by_entry_only() {
        let mut b = FunctionBuilder::new("d");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.copy(1);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.ret(None);
        let f = b.build();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(
            dom.idom(BlockId(3)),
            Some(BlockId(0)),
            "join's idom skips both arms"
        );
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }
}
