//! Per-block liveness of virtual registers.

use ipra_ir::{BlockId, Function, Vreg};

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKill, Meet};
use crate::graph::Cfg;

/// Live-in/live-out sets over virtual registers for every block.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live at block entry.
    pub live_in: Vec<BitSet>,
    /// Registers live at block exit.
    pub live_out: Vec<BitSet>,
    /// Upward-exposed uses per block (used before any redefinition).
    pub uevar: Vec<BitSet>,
    /// Registers defined in each block.
    pub defs: Vec<BitSet>,
}

impl Liveness {
    /// Computes liveness for `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let nb = func.num_blocks();
        let nv = func.num_vregs();
        let mut uevar: Vec<BitSet> = (0..nb).map(|_| BitSet::new(nv)).collect();
        let mut defs: Vec<BitSet> = (0..nb).map(|_| BitSet::new(nv)).collect();

        for (id, b) in func.blocks.iter() {
            let bi = id.index();
            for inst in &b.insts {
                inst.for_each_use(|v| {
                    if !defs[bi].contains(v.index()) {
                        uevar[bi].insert(v.index());
                    }
                });
                if let Some(d) = inst.def() {
                    defs[bi].insert(d.index());
                }
            }
            b.term.for_each_use(|v| {
                if !defs[bi].contains(v.index()) {
                    uevar[bi].insert(v.index());
                }
            });
        }

        let transfer: Vec<GenKill> = (0..nb)
            .map(|i| GenKill {
                gen: uevar[i].clone(),
                kill: defs[i].clone(),
            })
            .collect();
        let r = solve(
            cfg,
            Direction::Backward,
            Meet::Union,
            &BitSet::new(nv),
            &transfer,
        );
        ipra_obs::counter("dataflow.liveness.iterations", r.iterations as u64);

        Liveness {
            live_in: r.entry,
            live_out: r.exit,
            uevar,
            defs,
        }
    }

    /// Whether `v` is live at the entry of `b`.
    pub fn is_live_in(&self, b: BlockId, v: Vreg) -> bool {
        self.live_in[b.index()].contains(v.index())
    }

    /// Whether `v` is live at the exit of `b`.
    pub fn is_live_out(&self, b: BlockId, v: Vreg) -> bool {
        self.live_out[b.index()].contains(v.index())
    }

    /// Whether `v` is referenced or live anywhere in `b` — i.e. whether `b`
    /// belongs to `v`'s live range at block granularity (the allocation unit
    /// of priority-based coloring).
    pub fn in_live_range(&self, b: BlockId, v: Vreg) -> bool {
        let bi = b.index();
        let vi = v.index();
        self.live_in[bi].contains(vi)
            || self.live_out[bi].contains(vi)
            || self.uevar[bi].contains(vi)
            || self.defs[bi].contains(vi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::instr::BinOp;

    #[test]
    fn param_live_through_loop() {
        // x is used inside the loop body, so it is live around the loop.
        let mut b = FunctionBuilder::new("f");
        let x = b.param("x");
        let h = b.new_block();
        let body = b.new_block();
        let out = b.new_block();
        let i = b.var("i");
        b.copy_to(i, 0);
        b.br(h);
        let c = b.bin(BinOp::Lt, i, 10);
        b.cond_br(c, body, out);
        b.switch_to(body);
        let ni = b.bin(BinOp::Add, i, x);
        b.copy_to(i, ni);
        b.br(h);
        b.switch_to(out);
        b.ret(Some(i.into()));
        let f = b.build();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.is_live_in(BlockId(0), x));
        assert!(lv.is_live_out(BlockId(1), x) || lv.is_live_in(BlockId(2), x));
        assert!(lv.is_live_in(BlockId(1), i), "i live around loop header");
        assert!(!lv.is_live_out(BlockId(3), i), "nothing live after return");
        assert!(lv.in_live_range(BlockId(2), x));
    }

    #[test]
    fn dead_def_not_live() {
        let mut b = FunctionBuilder::new("f");
        let d = b.copy(5);
        let u = b.copy(7);
        b.print(u);
        b.ret(None);
        let f = b.build();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.is_live_in(BlockId(0), d), "dead def is not live-in");
        assert!(!lv.is_live_out(BlockId(0), d));
        assert!(lv.defs[0].contains(d.index()));
        assert!(lv.defs[0].contains(u.index()));
    }

    #[test]
    fn use_before_def_in_same_block_is_upward_exposed() {
        let mut b = FunctionBuilder::new("f");
        let v = b.var("v");
        let h = b.new_block();
        b.copy_to(v, 1);
        b.br(h);
        // h: u = v + 1; v = u; loop or exit
        let out = b.new_block();
        let u = b.bin(BinOp::Add, v, 1);
        b.copy_to(v, u);
        let c = b.bin(BinOp::Lt, u, 10);
        b.cond_br(c, h, out);
        b.switch_to(out);
        b.ret(Some(v.into()));
        let f = b.build();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(
            lv.uevar[1].contains(v.index()),
            "v read before its redefinition"
        );
        assert!(lv.is_live_in(BlockId(1), v));
        assert!(
            lv.is_live_out(BlockId(1), v),
            "loop keeps v live at exit of h"
        );
    }
}
