//! Property-based tests of the analysis substrate: bitset algebra,
//! dominator laws, loop facts and data-flow fixpoint properties on random
//! graphs.
//! Gated behind the non-default `proptest` feature: the external
//! `proptest` crate is not vendored, so offline builds compile this
//! file to nothing. Enable with `--features proptest` after adding
//! the dev-dependency back (requires network access).
#![cfg(feature = "proptest")]

use ipra_cfg::{solve, BitSet, Cfg, Direction, Dominators, GenKill, Liveness, LoopInfo, Meet};
use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{BinOp, Function};
use proptest::prelude::*;

/// Random function shape: n blocks, edge list terminating each block.
fn build_function(n: usize, edges: &[(usize, Option<usize>)]) -> Function {
    let mut b = FunctionBuilder::new("f");
    let rest: Vec<_> = (0..n - 1).map(|_| b.new_block()).collect();
    let all: Vec<_> = std::iter::once(b.current_block()).chain(rest).collect();
    for i in 0..n {
        b.switch_to(all[i]);
        // A use and a def so liveness has something to chew on.
        let v = b.bin(BinOp::Add, 1, 2);
        b.print(v);
        match edges.get(i) {
            Some(&(t1, Some(t2))) if t1 % n != t2 % n => {
                let c = b.copy(1);
                b.cond_br(c, all[t1 % n], all[t2 % n]);
            }
            Some(&(t1, _)) => {
                b.br(all[t1 % n]);
            }
            None => b.ret(None),
        }
        if i + 1 < n && b.current_block() != all[i + 1] {
            // cursor may have auto-moved after br; switch handles it next
            // iteration.
        }
    }
    b.build()
}

fn arb_function() -> impl Strategy<Value = Function> {
    (2usize..9).prop_flat_map(|n| {
        let edge = (0usize..n, proptest::option::of(0usize..n));
        proptest::collection::vec(edge, 0..n).prop_map(move |edges| build_function(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Bitset union/intersection/difference behave like sets.
    #[test]
    fn bitset_algebra(xs in proptest::collection::vec(0usize..200, 0..40),
                      ys in proptest::collection::vec(0usize..200, 0..40)) {
        use std::collections::BTreeSet;
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        let sa: BTreeSet<_> = xs.iter().copied().collect();
        let sb: BTreeSet<_> = ys.iter().copied().collect();
        for &x in &sa { a.insert(x); }
        for &y in &sb { b.insert(y); }

        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u.iter().collect::<BTreeSet<_>>(),
                        sa.union(&sb).copied().collect::<BTreeSet<_>>());

        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(i.iter().collect::<BTreeSet<_>>(),
                        sa.intersection(&sb).copied().collect::<BTreeSet<_>>());

        let mut d = a.clone();
        d.subtract(&b);
        prop_assert_eq!(d.iter().collect::<BTreeSet<_>>(),
                        sa.difference(&sb).copied().collect::<BTreeSet<_>>());

        prop_assert_eq!(a.intersects(&b), !sa.is_disjoint(&sb));
        prop_assert_eq!(a.count(), sa.len());
    }

    /// The entry dominates every reachable block; idom is a strict
    /// dominator; domination is transitive along the idom chain.
    #[test]
    fn dominator_laws(f in arb_function()) {
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        for &b in &cfg.rpo {
            prop_assert!(dom.dominates(cfg.entry, b), "entry dominates {b}");
            if let Some(d) = dom.idom(b) {
                prop_assert!(dom.dominates(d, b));
                prop_assert!(d != b);
            } else {
                prop_assert_eq!(b, cfg.entry);
            }
        }
    }

    /// Every natural loop's header dominates all loop blocks, and depth is
    /// consistent with membership counts.
    #[test]
    fn loop_facts(f in arb_function()) {
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &dom);
        for l in &li.loops {
            for b in l.blocks.iter() {
                prop_assert!(dom.dominates(l.header, ipra_ir::BlockId(b as u32)));
            }
            prop_assert!(l.blocks.contains(l.header.index()));
        }
        for b in 0..cfg.num_blocks() {
            let member_of = li.loops.iter().filter(|l| l.blocks.contains(b)).count();
            prop_assert_eq!(li.depth[b] as usize, member_of);
        }
    }

    /// Liveness is a fixpoint: live_out = ∪ succ live_in, and
    /// live_in = uevar ∪ (live_out − defs), for every reachable block.
    #[test]
    fn liveness_is_a_fixpoint(f in arb_function()) {
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        for &b in &cfg.rpo {
            let bi = b.index();
            let mut out = BitSet::new(f.num_vregs());
            for s in cfg.succs(b) {
                out.union_with(&lv.live_in[s.index()]);
            }
            prop_assert_eq!(&out, &lv.live_out[bi], "live_out fixpoint at {}", b);
            let mut inn = lv.live_out[bi].clone();
            inn.subtract(&lv.defs[bi]);
            inn.union_with(&lv.uevar[bi]);
            prop_assert_eq!(&inn, &lv.live_in[bi], "live_in fixpoint at {}", b);
        }
    }

    /// The generic solver agrees with a naive chaotic iteration on random
    /// gen/kill problems, in all four direction/meet combinations.
    #[test]
    fn dataflow_solver_matches_chaotic_iteration(
        f in arb_function(),
        gens in proptest::collection::vec(0u32..256, 1..12),
        kills in proptest::collection::vec(0u32..256, 1..12),
        forward in any::<bool>(),
        union in any::<bool>(),
    ) {
        let cfg = Cfg::new(&f);
        let nb = cfg.num_blocks();
        let bits = 8;
        let transfer: Vec<GenKill> = (0..nb)
            .map(|i| {
                let mut g = BitSet::new(bits);
                let mut k = BitSet::new(bits);
                let gb = gens[i % gens.len()];
                let kb = kills[i % kills.len()];
                for t in 0..bits {
                    if gb & (1 << t) != 0 { g.insert(t); }
                    if kb & (1 << t) != 0 { k.insert(t); }
                }
                GenKill { gen: g, kill: k }
            })
            .collect();
        let dir = if forward { Direction::Forward } else { Direction::Backward };
        let meet = if union { Meet::Union } else { Meet::Intersect };
        let boundary = BitSet::new(bits);
        let r = solve(&cfg, dir, meet, &boundary, &transfer);

        // Chaotic iteration from the same initial values.
        let bottom = || if union { BitSet::new(bits) } else { BitSet::full(bits) };
        let mut inp: Vec<BitSet> = (0..nb).map(|_| bottom()).collect();
        let mut out: Vec<BitSet> = (0..nb).map(|_| bottom()).collect();
        for _ in 0..(nb * 10 + 10) {
            for &b in &cfg.rpo {
                let bi = b.index();
                let neigh: Vec<usize> = match dir {
                    Direction::Forward => cfg.preds(b).iter().map(|p| p.index()).collect(),
                    Direction::Backward => cfg.succs(b).iter().map(|s| s.index()).collect(),
                };
                let is_boundary = match dir {
                    Direction::Forward => b == cfg.entry,
                    Direction::Backward => neigh.is_empty(),
                };
                let met = if is_boundary {
                    boundary.clone()
                } else if neigh.is_empty() {
                    bottom()
                } else {
                    let side: &Vec<BitSet> =
                        if forward { &out } else { &inp };
                    let mut acc = side[neigh[0]].clone();
                    for &x in &neigh[1..] {
                        if union { acc.union_with(&side[x]); } else { acc.intersect_with(&side[x]); }
                    }
                    acc
                };
                let mut xfer = met.clone();
                xfer.subtract(&transfer[bi].kill);
                xfer.union_with(&transfer[bi].gen);
                match dir {
                    Direction::Forward => { inp[bi] = met; out[bi] = xfer; }
                    Direction::Backward => { out[bi] = met; inp[bi] = xfer; }
                }
            }
        }
        for &b in &cfg.rpo {
            let bi = b.index();
            prop_assert_eq!(&r.entry[bi], &inp[bi], "entry value at {}", b);
            prop_assert_eq!(&r.exit[bi], &out[bi], "exit value at {}", b);
        }
    }
}
