//! Instructions, operands, addresses and terminators.
//!
//! The IR is a conventional non-SSA register-transfer three-address code over
//! 64-bit integer cells, modelled on the shape of Ucode at the point where
//! Uopt's register allocator runs: unlimited virtual registers, explicit
//! memory for globals and local arrays, and direct or indirect calls.

use crate::ids::{BlockId, FuncId, GlobalId, SlotId, Vreg};

/// A right-hand-side operand: a virtual register or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(Vreg),
    /// A 64-bit constant.
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn as_reg(self) -> Option<Vreg> {
        match self {
            Operand::Reg(v) => Some(v),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Vreg> for Operand {
    fn from(v: Vreg) -> Self {
        Operand::Reg(v)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(v) => write!(f, "{v}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Binary operators. Comparisons yield `0` or `1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division; traps on division by zero or overflow.
    Div,
    /// Remainder; traps on division by zero or overflow.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl BinOp {
    /// Mnemonic used by the printers.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
        }
    }

    /// All operators, for random program generation and exhaustive tests.
    pub const ALL: [BinOp; 16] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];

    /// Evaluates the operator on concrete values.
    ///
    /// Returns `None` for division or remainder by zero (and for the
    /// `i64::MIN / -1` overflow case), which the interpreters report as a
    /// trap.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b)?,
            BinOp::Rem => a.checked_rem(b)?,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
        })
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Wrapping negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// Mnemonic used by the printers.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        }
    }

    /// Evaluates the operator.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
        }
    }
}

/// A memory address: element-indexed into a global or a local stack slot.
///
/// All memory is an array of 64-bit cells; `index` selects the element and is
/// bounds-checked by the interpreter and simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Address {
    /// `global[index]`. A scalar global is a size-1 array indexed with `0`.
    Global {
        /// Target object.
        global: GlobalId,
        /// Element index.
        index: Operand,
    },
    /// `slot[index]` in the current frame.
    Stack {
        /// Target slot.
        slot: SlotId,
        /// Element index.
        index: Operand,
    },
}

impl Address {
    /// Scalar-global shorthand: `global[0]`.
    pub fn global_scalar(global: GlobalId) -> Self {
        Address::Global {
            global,
            index: Operand::Imm(0),
        }
    }

    /// The register read to compute the index, if any.
    pub fn index_reg(self) -> Option<Vreg> {
        match self {
            Address::Global { index, .. } | Address::Stack { index, .. } => index.as_reg(),
        }
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Address::Global { global, index } => write!(f, "{global}[{index}]"),
            Address::Stack { slot, index } => write!(f, "{slot}[{index}]"),
        }
    }
}

/// Callee of a [`Inst::Call`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    /// Statically known target.
    Direct(FuncId),
    /// Target is a function address computed at run time
    /// (see [`Inst::FuncAddr`]).
    Indirect(Operand),
}

/// A non-terminator instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: Vreg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Vreg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op src`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Vreg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = mem[addr]`.
    Load {
        /// Destination register.
        dst: Vreg,
        /// Address to read.
        addr: Address,
    },
    /// `mem[addr] = src`.
    Store {
        /// Value to write.
        src: Operand,
        /// Address to write.
        addr: Address,
    },
    /// `dst = call callee(args...)` (or a call without a result).
    Call {
        /// Call target.
        callee: Callee,
        /// Argument operands, in order.
        args: Vec<Operand>,
        /// Register receiving the return value, if the caller uses it.
        dst: Option<Vreg>,
    },
    /// `dst = &func` — takes the "address" of a function for later indirect
    /// calls. Marks `func` address-taken (and therefore *open*, paper §3).
    FuncAddr {
        /// Destination register.
        dst: Vreg,
        /// Function whose address is taken.
        func: FuncId,
    },
    /// Appends the operand's value to the program's output stream.
    Print {
        /// Value to emit.
        arg: Operand,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Vreg> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::FuncAddr { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::Print { .. } => None,
        }
    }

    /// Invokes `f` on every register read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(Vreg)) {
        let mut op = |o: Operand| {
            if let Operand::Reg(v) = o {
                f(v)
            }
        };
        match self {
            Inst::Copy { src, .. } | Inst::Un { src, .. } => op(*src),
            Inst::Bin { lhs, rhs, .. } => {
                op(*lhs);
                op(*rhs);
            }
            Inst::Load { addr, .. } => {
                if let Some(v) = addr.index_reg() {
                    f(v)
                }
            }
            Inst::Store { src, addr } => {
                op(*src);
                if let Some(v) = addr.index_reg() {
                    f(v)
                }
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(t) = callee {
                    op(*t);
                }
                for a in args {
                    op(*a);
                }
            }
            Inst::FuncAddr { .. } => {}
            Inst::Print { arg } => op(*arg),
        }
    }

    /// Whether this is a call instruction.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Return, optionally with a value.
    Ret(Option<Operand>),
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way branch: to `then_to` when `cond != 0`, else to `else_to`.
    CondBr {
        /// Branch condition.
        cond: Operand,
        /// Taken when the condition is non-zero.
        then_to: BlockId,
        /// Taken when the condition is zero.
        else_to: BlockId,
    },
}

impl Terminator {
    /// Invokes `f` on every register read by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(Vreg)) {
        match self {
            Terminator::Ret(Some(Operand::Reg(v))) => f(*v),
            Terminator::CondBr {
                cond: Operand::Reg(v),
                ..
            } => f(*v),
            _ => {}
        }
    }

    /// Invokes `f` on every successor block.
    pub fn for_each_succ(&self, mut f: impl FnMut(BlockId)) {
        match self {
            Terminator::Ret(_) => {}
            Terminator::Br(b) => f(*b),
            Terminator::CondBr {
                then_to, else_to, ..
            } => {
                f(*then_to);
                f(*else_to);
            }
        }
    }

    /// Successor blocks as a small vector.
    pub fn succs(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(2);
        self.for_each_succ(|b| out.push(b));
        out
    }

    /// Whether this terminator exits the function.
    pub fn is_ret(&self) -> bool {
        matches!(self, Terminator::Ret(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basic() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(BinOp::Mul.eval(4, -3), Some(-12));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Rem.eval(7, 2), Some(1));
        assert_eq!(BinOp::Lt.eval(1, 2), Some(1));
        assert_eq!(BinOp::Ge.eval(1, 2), Some(0));
    }

    #[test]
    fn binop_eval_traps() {
        assert_eq!(BinOp::Div.eval(1, 0), None);
        assert_eq!(BinOp::Rem.eval(1, 0), None);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), None);
    }

    #[test]
    fn binop_eval_wraps() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Shl.eval(1, 64), Some(1), "shift amount is masked");
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), -1);
        assert_eq!(UnOp::Neg.eval(i64::MIN), i64::MIN);
    }

    #[test]
    fn inst_def_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Vreg(0),
            lhs: Operand::Reg(Vreg(1)),
            rhs: Operand::Imm(3),
        };
        assert_eq!(i.def(), Some(Vreg(0)));
        let mut uses = Vec::new();
        i.for_each_use(|v| uses.push(v));
        assert_eq!(uses, vec![Vreg(1)]);
    }

    #[test]
    fn call_uses_include_indirect_target() {
        let i = Inst::Call {
            callee: Callee::Indirect(Operand::Reg(Vreg(9))),
            args: vec![Operand::Reg(Vreg(1)), Operand::Imm(2)],
            dst: Some(Vreg(0)),
        };
        let mut uses = Vec::new();
        i.for_each_use(|v| uses.push(v));
        assert_eq!(uses, vec![Vreg(9), Vreg(1)]);
        assert_eq!(i.def(), Some(Vreg(0)));
        assert!(i.is_call());
    }

    #[test]
    fn store_has_no_def() {
        let i = Inst::Store {
            src: Operand::Reg(Vreg(2)),
            addr: Address::Global {
                global: GlobalId(0),
                index: Operand::Reg(Vreg(3)),
            },
        };
        assert_eq!(i.def(), None);
        let mut uses = Vec::new();
        i.for_each_use(|v| uses.push(v));
        assert_eq!(uses, vec![Vreg(2), Vreg(3)]);
    }

    #[test]
    fn terminator_succs() {
        let t = Terminator::CondBr {
            cond: Operand::Reg(Vreg(0)),
            then_to: BlockId(1),
            else_to: BlockId(2),
        };
        assert_eq!(t.succs(), vec![BlockId(1), BlockId(2)]);
        assert!(!t.is_ret());
        assert!(Terminator::Ret(None).is_ret());
        assert!(Terminator::Ret(None).succs().is_empty());
    }
}
