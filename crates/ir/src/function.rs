//! Functions and basic blocks.

use crate::entity::EntityVec;
use crate::ids::{BlockId, InstLoc, SlotId, Vreg};
use crate::instr::{Inst, Terminator};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given terminator and no instructions.
    pub fn new(term: Terminator) -> Self {
        Block {
            insts: Vec::new(),
            term,
        }
    }
}

/// A local stack slot (used for local arrays).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SlotData {
    /// Number of 64-bit cells.
    pub size: u32,
    /// Debug name.
    pub name: String,
}

/// Linkage/visibility attributes that decide whether a procedure is *open*
/// (paper §3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FuncAttrs {
    /// The function is visible outside the current compilation unit, i.e. it
    /// may have callers the compiler never sees (separate compilation).
    pub external_visible: bool,
}

/// A function: parameters, virtual registers, blocks, slots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Parameter registers, in order. They are defined at function entry.
    pub params: Vec<Vreg>,
    /// Entry block.
    pub entry: BlockId,
    /// Basic blocks.
    pub blocks: EntityVec<BlockId, Block>,
    /// Local stack slots.
    pub slots: EntityVec<SlotId, SlotData>,
    /// Attributes affecting open/closed classification.
    pub attrs: FuncAttrs,
    /// Debug names for virtual registers (`None` for compiler temporaries).
    vreg_names: Vec<Option<String>>,
}

impl Function {
    /// Creates an empty function shell named `name`. Use
    /// [`FunctionBuilder`](crate::builder::FunctionBuilder) for convenient
    /// construction.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            entry: BlockId(0),
            blocks: EntityVec::new(),
            slots: EntityVec::new(),
            attrs: FuncAttrs::default(),
            vreg_names: Vec::new(),
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> Vreg {
        let v = Vreg(self.vreg_names.len() as u32);
        self.vreg_names.push(None);
        v
    }

    /// Allocates a fresh named virtual register.
    pub fn new_named_vreg(&mut self, name: impl Into<String>) -> Vreg {
        let v = Vreg(self.vreg_names.len() as u32);
        self.vreg_names.push(Some(name.into()));
        v
    }

    /// Number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.vreg_names.len()
    }

    /// Debug name of a register, if it has one.
    pub fn vreg_name(&self, v: Vreg) -> Option<&str> {
        self.vreg_names.get(v.0 as usize).and_then(|n| n.as_deref())
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the function contains no call instruction (a call-graph leaf).
    pub fn is_leaf(&self) -> bool {
        self.blocks
            .values()
            .all(|b| b.insts.iter().all(|i| !i.is_call()))
    }

    /// Iterates over all instruction locations together with the
    /// instructions, in block order.
    pub fn inst_locs(&self) -> impl Iterator<Item = (InstLoc, &Inst)> {
        self.blocks.iter().flat_map(|(block, b)| {
            b.insts
                .iter()
                .enumerate()
                .map(move |(inst, i)| (InstLoc { block, inst }, i))
        })
    }

    /// The instruction at `loc`.
    ///
    /// # Panics
    ///
    /// Panics when `loc` is out of range.
    pub fn inst(&self, loc: InstLoc) -> &Inst {
        &self.blocks[loc.block].insts[loc.inst]
    }

    /// Total number of instructions (excluding terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.values().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Operand, Terminator};

    #[test]
    fn vreg_allocation_and_names() {
        let mut f = Function::new("f");
        let a = f.new_named_vreg("a");
        let t = f.new_vreg();
        assert_eq!(a, Vreg(0));
        assert_eq!(t, Vreg(1));
        assert_eq!(f.vreg_name(a), Some("a"));
        assert_eq!(f.vreg_name(t), None);
        assert_eq!(f.num_vregs(), 2);
    }

    #[test]
    fn leaf_detection() {
        let mut f = Function::new("leaf");
        f.blocks.push(Block::new(Terminator::Ret(None)));
        assert!(f.is_leaf());
        let mut g = Function::new("caller");
        let mut b = Block::new(Terminator::Ret(None));
        b.insts.push(Inst::Call {
            callee: crate::instr::Callee::Direct(crate::ids::FuncId(0)),
            args: vec![Operand::Imm(1)],
            dst: None,
        });
        g.blocks.push(b);
        assert!(!g.is_leaf());
    }

    #[test]
    fn inst_locs_enumerates_in_order() {
        let mut f = Function::new("f");
        let v = f.new_vreg();
        let mut b0 = Block::new(Terminator::Br(BlockId(1)));
        b0.insts.push(Inst::Copy {
            dst: v,
            src: Operand::Imm(1),
        });
        b0.insts.push(Inst::Print {
            arg: Operand::Reg(v),
        });
        f.blocks.push(b0);
        f.blocks.push(Block::new(Terminator::Ret(None)));
        let locs: Vec<_> = f.inst_locs().map(|(l, _)| (l.block.0, l.inst)).collect();
        assert_eq!(locs, vec![(0, 0), (0, 1)]);
        assert_eq!(f.num_insts(), 2);
    }
}
