//! Deterministic structural hashing of IR functions.
//!
//! The incremental-compilation cache keys allocation results by the
//! *content* of a function, so the hash must be stable across processes
//! (std's `DefaultHasher` is randomly keyed and useless here) and
//! independent of entity-id churn: adding or removing an unrelated
//! function shifts every `FuncId`/`GlobalId` in the module, but must not
//! change the hash of untouched functions. Cross-function references
//! (direct callees, function addresses, globals) are therefore hashed by
//! *name*; blocks and virtual registers are positional within the
//! function and hashed by index.

use crate::function::Function;
use crate::ids::FuncId;
use crate::instr::{Address, Callee, Inst, Operand, Terminator};
use crate::module::Module;

/// Incremental FNV-1a 64-bit hasher. Chosen for being trivially
/// deterministic and dependency-free; collision resistance is adequate
/// because a key mismatch only costs a cache miss, never wrong output
/// (a colliding *hit* is guarded by the cached entry's function names).
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorbs a `usize` (widened to 64 bits for portability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a length-prefixed string (prefix avoids concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

fn hash_operand(h: &mut Fnv64, op: Operand) {
    match op {
        Operand::Reg(v) => {
            h.write_u8(0);
            h.write_u32(v.0);
        }
        Operand::Imm(i) => {
            h.write_u8(1);
            h.write_i64(i);
        }
    }
}

fn hash_address(h: &mut Fnv64, module: &Module, addr: Address) {
    match addr {
        Address::Global { global, index } => {
            h.write_u8(0);
            h.write_str(&module.globals[global].name);
            hash_operand(h, index);
        }
        Address::Stack { slot, index } => {
            h.write_u8(1);
            h.write_u32(slot.0);
            hash_operand(h, index);
        }
    }
}

fn hash_inst(h: &mut Fnv64, module: &Module, inst: &Inst) {
    match inst {
        Inst::Copy { dst, src } => {
            h.write_u8(0);
            h.write_u32(dst.0);
            hash_operand(h, *src);
        }
        Inst::Bin { op, dst, lhs, rhs } => {
            h.write_u8(1);
            h.write_u8(*op as u8);
            h.write_u32(dst.0);
            hash_operand(h, *lhs);
            hash_operand(h, *rhs);
        }
        Inst::Un { op, dst, src } => {
            h.write_u8(2);
            h.write_u8(*op as u8);
            h.write_u32(dst.0);
            hash_operand(h, *src);
        }
        Inst::Load { dst, addr } => {
            h.write_u8(3);
            h.write_u32(dst.0);
            hash_address(h, module, *addr);
        }
        Inst::Store { src, addr } => {
            h.write_u8(4);
            hash_operand(h, *src);
            hash_address(h, module, *addr);
        }
        Inst::Call { callee, args, dst } => {
            h.write_u8(5);
            match callee {
                Callee::Direct(f) => {
                    h.write_u8(0);
                    h.write_str(&module.funcs[*f].name);
                }
                Callee::Indirect(t) => {
                    h.write_u8(1);
                    hash_operand(h, *t);
                }
            }
            h.write_usize(args.len());
            for a in args {
                hash_operand(h, *a);
            }
            match dst {
                Some(d) => {
                    h.write_u8(1);
                    h.write_u32(d.0);
                }
                None => h.write_u8(0),
            }
        }
        Inst::FuncAddr { dst, func } => {
            h.write_u8(6);
            h.write_u32(dst.0);
            h.write_str(&module.funcs[*func].name);
        }
        Inst::Print { arg } => {
            h.write_u8(7);
            hash_operand(h, *arg);
        }
    }
}

fn hash_terminator(h: &mut Fnv64, term: &Terminator) {
    match term {
        Terminator::Ret(op) => {
            h.write_u8(0);
            match op {
                Some(o) => {
                    h.write_u8(1);
                    hash_operand(h, *o);
                }
                None => h.write_u8(0),
            }
        }
        Terminator::Br(b) => {
            h.write_u8(1);
            h.write_u32(b.0);
        }
        Terminator::CondBr {
            cond,
            then_to,
            else_to,
        } => {
            h.write_u8(2);
            hash_operand(h, *cond);
            h.write_u32(then_to.0);
            h.write_u32(else_to.0);
        }
    }
}

/// Structural hash of one function within its module.
///
/// Covers everything downstream passes read: name, attributes, parameter
/// list, virtual-register debug names (they become frame-slot labels in
/// lowered code), stack slots, and every block's instructions and
/// terminator. Callees and globals are hashed by name — see the module
/// docs for why.
pub fn hash_function(module: &Module, fid: FuncId) -> u64 {
    let func = &module.funcs[fid];
    let mut h = Fnv64::new();
    hash_function_into(&mut h, module, func);
    h.finish()
}

/// Structural hashes of every function in the module, indexed by
/// `FuncId`. One pass here replaces the per-consumer re-hashing the
/// incremental cache and the analysis memo would otherwise each do.
pub fn hash_all_functions(module: &Module) -> Vec<u64> {
    module
        .funcs
        .iter()
        .map(|(fid, _)| hash_function(module, fid))
        .collect()
}

/// Structural hash of a whole module: every function in id order, every
/// global (name, size, initializer) and the entry point. Keys whole-module
/// memos such as the pipeline's prepared-module cache; unlike
/// [`hash_function`] it is id-order sensitive by design — the memoized
/// artifacts embed entity ids.
pub fn hash_module(module: &Module) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(module.funcs.len());
    for (_, f) in module.funcs.iter() {
        hash_function_into(&mut h, module, f);
    }
    h.write_usize(module.globals.len());
    for (_, g) in module.globals.iter() {
        h.write_str(&g.name);
        h.write_u32(g.size);
        h.write_usize(g.init.len());
        for v in &g.init {
            h.write_i64(*v);
        }
    }
    match module.main {
        Some(f) => {
            h.write_u8(1);
            h.write_u32(f.0);
        }
        None => h.write_u8(0),
    }
    h.finish()
}

/// Absorbs the structural content of `func` into an existing hasher.
pub fn hash_function_into(h: &mut Fnv64, module: &Module, func: &Function) {
    h.write_str(&func.name);
    h.write_u8(func.attrs.external_visible as u8);
    h.write_usize(func.params.len());
    for p in &func.params {
        h.write_u32(p.0);
    }
    h.write_u32(func.entry.0);
    h.write_usize(func.num_vregs());
    for i in 0..func.num_vregs() {
        match func.vreg_name(crate::ids::Vreg(i as u32)) {
            Some(n) => h.write_str(n),
            None => h.write_u8(0),
        }
    }
    h.write_usize(func.slots.len());
    for (_, s) in func.slots.iter() {
        h.write_u32(s.size);
        h.write_str(&s.name);
    }
    h.write_usize(func.blocks.len());
    for (_, b) in func.blocks.iter() {
        h.write_usize(b.insts.len());
        for inst in &b.insts {
            hash_inst(h, module, inst);
        }
        hash_terminator(h, &b.term);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::BinOp;

    fn demo_module() -> (Module, FuncId, FuncId) {
        let mut m = Module::new();
        let leaf = m.declare_func("leaf");
        let top = m.declare_func("top");
        {
            let mut b = FunctionBuilder::new("leaf");
            let p = b.param("p");
            let r = b.bin(BinOp::Add, p, 1);
            b.ret(Some(r.into()));
            m.define_func(leaf, b.build());
        }
        {
            let mut b = FunctionBuilder::new("top");
            let r = b.call(leaf, vec![Operand::Imm(7)]);
            b.print(r);
            b.ret(None);
            m.define_func(top, b.build());
        }
        m.main = Some(top);
        (m, leaf, top)
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let (m, leaf, _) = demo_module();
        let h1 = hash_function(&m, leaf);
        let h2 = hash_function(&m, leaf);
        assert_eq!(h1, h2, "same input, same hash");

        // A one-constant edit changes the hash.
        let (mut m2, leaf2, _) = demo_module();
        let f = &mut m2.funcs[leaf2];
        for b in f.blocks.values_mut() {
            for i in &mut b.insts {
                if let Inst::Bin { rhs, .. } = i {
                    *rhs = Operand::Imm(2);
                }
            }
        }
        assert_ne!(h1, hash_function(&m2, leaf2));
    }

    #[test]
    fn hash_survives_entity_id_churn() {
        // The same `top` body must hash identically whether or not an
        // unrelated function was declared before it (which shifts every
        // FuncId in the module).
        let (m, _, top) = demo_module();
        let baseline = hash_function(&m, top);

        let mut m2 = Module::new();
        let extra = m2.declare_func("unrelated");
        let leaf = m2.declare_func("leaf");
        let top2 = m2.declare_func("top");
        {
            let mut b = FunctionBuilder::new("unrelated");
            b.ret(None);
            m2.define_func(extra, b.build());
        }
        {
            let mut b = FunctionBuilder::new("leaf");
            let p = b.param("p");
            let r = b.bin(BinOp::Add, p, 1);
            b.ret(Some(r.into()));
            m2.define_func(leaf, b.build());
        }
        {
            let mut b = FunctionBuilder::new("top");
            let r = b.call(leaf, vec![Operand::Imm(7)]);
            b.print(r);
            b.ret(None);
            m2.define_func(top2, b.build());
        }
        assert_eq!(
            baseline,
            hash_function(&m2, top2),
            "callee referenced by name, not by shifted id"
        );
    }

    #[test]
    fn fnv_primitives_disambiguate_field_boundaries() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefixes separate fields");
    }
}
