//! Modules: the unit of (whole-program or separate) compilation.

use crate::entity::EntityVec;
use crate::function::Function;
use crate::ids::{FuncId, GlobalId};
use crate::instr::{Callee, Inst};

/// A global memory object: `size` 64-bit cells, optionally initialized.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalData {
    /// Name (unique within a module).
    pub name: String,
    /// Number of cells; `1` for a scalar.
    pub size: u32,
    /// Initial values; missing tail cells are zero.
    pub init: Vec<i64>,
}

impl GlobalData {
    /// A zero-initialized scalar global.
    pub fn scalar(name: impl Into<String>) -> Self {
        GlobalData {
            name: name.into(),
            size: 1,
            init: Vec::new(),
        }
    }

    /// A zero-initialized array global.
    pub fn array(name: impl Into<String>, size: u32) -> Self {
        GlobalData {
            name: name.into(),
            size,
            init: Vec::new(),
        }
    }

    /// Whether this global is a scalar cell (register-promotable).
    pub fn is_scalar(&self) -> bool {
        self.size == 1
    }
}

/// A compilation unit: functions plus globals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Module {
    /// Functions.
    pub funcs: EntityVec<FuncId, Function>,
    /// Global memory objects.
    pub globals: EntityVec<GlobalId, GlobalData>,
    /// Program entry point, when this module is a whole program.
    pub main: Option<FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function and returns its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f)
    }

    /// Adds a global and returns its id.
    pub fn add_global(&mut self, g: GlobalData) -> GlobalId {
        self.globals.push(g)
    }

    /// Declares a function shell so its id can be referenced before its body
    /// is built; fill it in later with [`Module::define_func`].
    pub fn declare_func(&mut self, name: impl Into<String>) -> FuncId {
        self.funcs.push(Function::new(name))
    }

    /// Replaces the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared.
    pub fn define_func(&mut self, id: FuncId, f: Function) {
        self.funcs[id] = f;
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .find(|(_, f)| f.name == name)
            .map(|(id, _)| id)
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .find(|(_, g)| g.name == name)
            .map(|(id, _)| id)
    }

    /// The set of functions whose address is taken anywhere in the module
    /// (possible indirect-call targets, therefore *open*, paper §3).
    pub fn address_taken(&self) -> Vec<bool> {
        let mut taken = vec![false; self.funcs.len()];
        for (_, f) in self.funcs.iter() {
            for (_, inst) in f.inst_locs() {
                if let Inst::FuncAddr { func, .. } = inst {
                    taken[func.index()] = true;
                }
            }
        }
        taken
    }

    /// Whether any instruction in the module performs an indirect call.
    pub fn has_indirect_calls(&self) -> bool {
        self.funcs.values().any(|f| {
            f.inst_locs().any(|(_, i)| {
                matches!(
                    i,
                    Inst::Call {
                        callee: Callee::Indirect(_),
                        ..
                    }
                )
            })
        })
    }

    /// Total instruction count over all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.values().map(|f| f.num_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::ids::BlockId;
    use crate::instr::{Operand, Terminator};

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new();
        let f = m.add_func(Function::new("alpha"));
        let g = m.add_global(GlobalData::scalar("x"));
        assert_eq!(m.func_by_name("alpha"), Some(f));
        assert_eq!(m.func_by_name("beta"), None);
        assert_eq!(m.global_by_name("x"), Some(g));
        assert!(m.globals[g].is_scalar());
    }

    #[test]
    fn address_taken_detection() {
        let mut m = Module::new();
        let callee = m.add_func(Function::new("callee"));
        let mut caller = Function::new("caller");
        let v = caller.new_vreg();
        let mut b = Block::new(Terminator::Ret(None));
        b.insts.push(Inst::FuncAddr {
            dst: v,
            func: callee,
        });
        b.insts.push(Inst::Call {
            callee: Callee::Indirect(Operand::Reg(v)),
            args: vec![],
            dst: None,
        });
        caller.entry = BlockId(0);
        caller.blocks.push(b);
        m.add_func(caller);
        let taken = m.address_taken();
        assert!(taken[callee.index()]);
        assert_eq!(taken.iter().filter(|&&t| t).count(), 1);
        assert!(m.has_indirect_calls());
    }
}
