//! # ipra-ir — register-transfer IR
//!
//! The intermediate representation used by the reproduction of Fred Chow's
//! *"Minimizing Register Usage Penalty at Procedure Calls"* (PLDI 1988).
//!
//! The IR mirrors the shape of Ucode at the point where Uopt's register
//! allocator runs: non-SSA three-address code over an unlimited supply of
//! virtual registers, explicit memory for globals and local arrays, direct
//! and indirect calls, and one terminator per basic block.
//!
//! ## Quick example
//!
//! ```
//! use ipra_ir::builder::FunctionBuilder;
//! use ipra_ir::instr::BinOp;
//! use ipra_ir::{interp, Module};
//!
//! let mut module = Module::new();
//! let mut b = FunctionBuilder::new("main");
//! let x = b.bin(BinOp::Add, 40, 2);
//! b.print(x);
//! b.ret(None);
//! let main = module.add_func(b.build());
//! module.main = Some(main);
//!
//! let result = interp::run_module(&module)?;
//! assert_eq!(result.output, vec![42]);
//! # Ok::<(), ipra_ir::interp::Trap>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod display;
pub mod entity;
pub mod function;
pub mod hash;
pub mod ids;
pub mod instr;
pub mod interp;
pub mod module;
pub mod verify;

pub use entity::{EntityId, EntityMap, EntityVec};
pub use function::{Block, FuncAttrs, Function, SlotData};
pub use hash::{hash_all_functions, hash_function, hash_module, Fnv64};
pub use ids::{BlockId, FuncId, GlobalId, InstLoc, SlotId, Vreg};
pub use instr::{Address, BinOp, Callee, Inst, Operand, Terminator, UnOp};
pub use module::{GlobalData, Module};
