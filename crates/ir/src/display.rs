//! Human-readable textual form of functions and modules.

use std::fmt;

use crate::function::Function;
use crate::ids::FuncId;
use crate::instr::{Callee, Inst, Terminator};
use crate::module::Module;

/// Wraps a function (plus its module, for callee names) for display.
pub struct FunctionDisplay<'a> {
    module: Option<&'a Module>,
    func: &'a Function,
}

impl Function {
    /// Displays the function without module context (callees print as ids).
    pub fn display(&self) -> FunctionDisplay<'_> {
        FunctionDisplay {
            module: None,
            func: self,
        }
    }

    /// Displays the function with callee names resolved through `module`.
    pub fn display_in<'a>(&'a self, module: &'a Module) -> FunctionDisplay<'a> {
        FunctionDisplay {
            module: Some(module),
            func: self,
        }
    }
}

impl FunctionDisplay<'_> {
    fn func_name(&self, f: FuncId) -> String {
        match self.module {
            Some(m) if m.funcs.contains(f) => format!("@{}", m.funcs[f].name),
            _ => format!("@{f}"),
        }
    }

    fn fmt_inst(&self, f: &mut fmt::Formatter<'_>, inst: &Inst) -> fmt::Result {
        let vn = |v: crate::ids::Vreg| match self.func.vreg_name(v) {
            Some(n) => format!("{v}({n})"),
            None => format!("{v}"),
        };
        match inst {
            Inst::Copy { dst, src } => write!(f, "{} = {}", vn(*dst), src),
            Inst::Bin { op, dst, lhs, rhs } => {
                write!(f, "{} = {} {}, {}", vn(*dst), op.mnemonic(), lhs, rhs)
            }
            Inst::Un { op, dst, src } => write!(f, "{} = {} {}", vn(*dst), op.mnemonic(), src),
            Inst::Load { dst, addr } => write!(f, "{} = load {}", vn(*dst), addr),
            Inst::Store { src, addr } => write!(f, "store {}, {}", src, addr),
            Inst::Call { callee, args, dst } => {
                if let Some(d) = dst {
                    write!(f, "{} = ", vn(*d))?;
                }
                match callee {
                    Callee::Direct(id) => write!(f, "call {}", self.func_name(*id))?,
                    Callee::Indirect(t) => write!(f, "call_indirect {t}")?,
                }
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::FuncAddr { dst, func } => {
                write!(f, "{} = addr {}", vn(*dst), self.func_name(*func))
            }
            Inst::Print { arg } => write!(f, "print {arg}"),
        }
    }
}

impl fmt::Display for FunctionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let func = self.func;
        write!(f, "func @{}(", func.name)?;
        for (i, p) in func.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match func.vreg_name(*p) {
                Some(n) => write!(f, "{p}({n})")?,
                None => write!(f, "{p}")?,
            }
        }
        write!(f, ")")?;
        if func.attrs.external_visible {
            write!(f, " external")?;
        }
        writeln!(f, " {{")?;
        for (id, slot) in func.slots.iter() {
            writeln!(f, "  slot {id} {} [{}]", slot.name, slot.size)?;
        }
        for (id, block) in func.blocks.iter() {
            let marker = if id == func.entry { " ; entry" } else { "" };
            writeln!(f, "{id}:{marker}")?;
            for inst in &block.insts {
                write!(f, "  ")?;
                self.fmt_inst(f, inst)?;
                writeln!(f)?;
            }
            match &block.term {
                Terminator::Ret(None) => writeln!(f, "  ret")?,
                Terminator::Ret(Some(v)) => writeln!(f, "  ret {v}")?,
                Terminator::Br(b) => writeln!(f, "  br {b}")?,
                Terminator::CondBr {
                    cond,
                    then_to,
                    else_to,
                } => writeln!(f, "  if {cond} then {then_to} else {else_to}")?,
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, g) in self.globals.iter() {
            write!(f, "global {id} {} [{}]", g.name, g.size)?;
            if !g.init.is_empty() {
                write!(f, " = {:?}", g.init)?;
            }
            writeln!(f)?;
        }
        for (id, func) in self.funcs.iter() {
            if self.main == Some(id) {
                writeln!(f, "; main")?;
            }
            writeln!(f, "{}", func.display_in(self))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::BinOp;
    use crate::module::GlobalData;

    #[test]
    fn function_display_contains_blocks_and_insts() {
        let mut b = FunctionBuilder::new("twice");
        let x = b.param("x");
        let r = b.bin(BinOp::Add, x, x);
        b.ret(Some(r.into()));
        let f = b.build();
        let s = f.display().to_string();
        assert!(s.contains("func @twice(v0(x))"), "got: {s}");
        assert!(s.contains("v1 = add v0, v0"), "got: {s}");
        assert!(s.contains("ret v1"), "got: {s}");
    }

    #[test]
    fn module_display_resolves_callee_names() {
        let mut m = Module::new();
        let callee = m.declare_func("target");
        let mut b = FunctionBuilder::new("src");
        b.call_void(callee, vec![]);
        b.ret(None);
        m.add_func(b.build());
        m.add_global(GlobalData::array("buf", 8));
        let s = m.to_string();
        assert!(s.contains("call @target()"), "got: {s}");
        assert!(s.contains("global g0 buf [8]"), "got: {s}");
    }
}
