//! Id newtypes for all IR entities.

use crate::entity_id;

entity_id!(
    /// A function in a [`Module`](crate::Module).
    pub struct FuncId, "fn"
);

entity_id!(
    /// A basic block inside a [`Function`](crate::Function).
    pub struct BlockId, "bb"
);

entity_id!(
    /// A virtual register (pseudo register / program variable / temporary).
    ///
    /// Virtual registers are unlimited; the register allocator maps them to
    /// physical registers or to stack homes.
    pub struct Vreg, "v"
);

entity_id!(
    /// A global (module-level) memory object: a scalar cell or an array of
    /// 64-bit cells.
    pub struct GlobalId, "g"
);

entity_id!(
    /// A stack slot local to one function (used for local arrays).
    pub struct SlotId, "s"
);

/// Identifies an instruction position inside a function: block plus index in
/// the block's instruction list.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstLoc {
    /// Containing block.
    pub block: BlockId,
    /// Index into [`Block::insts`](crate::Block::insts).
    pub inst: usize,
}

impl std::fmt::Display for InstLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.block, self.inst)
    }
}
