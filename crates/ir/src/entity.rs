//! Typed entity indices and dense index-keyed vectors.
//!
//! Every IR object (function, block, virtual register, …) is referred to by a
//! small copyable index newtype. [`EntityVec`] is a `Vec` keyed by such an
//! index, which keeps cross-references between IR tables cheap and
//! type-checked.

use std::fmt;
use std::marker::PhantomData;

/// A typed dense index.
///
/// Implemented by the id newtypes generated with [`entity_id!`].
pub trait EntityId: Copy + Eq + std::hash::Hash {
    /// Builds an id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not fit in the id's representation.
    fn from_index(idx: usize) -> Self;
    /// Returns the raw index.
    fn index(self) -> usize;
}

/// Declares a `u32`-backed entity id newtype.
///
/// ```
/// ipra_ir::entity_id!(
///     /// Example id.
///     pub struct DemoId, "demo"
/// );
/// # use ipra_ir::entity::EntityId;
/// let d = DemoId::from_index(3);
/// assert_eq!(d.index(), 3);
/// assert_eq!(d.to_string(), "demo3");
/// ```
#[macro_export]
macro_rules! entity_id {
    ($(#[$attr:meta])* pub struct $name:ident, $prefix:expr) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index (inherent mirror of [`$crate::entity::EntityId::index`]).
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $crate::entity::EntityId for $name {
            #[inline]
            fn from_index(idx: usize) -> Self {
                assert!(idx <= u32::MAX as usize, "entity index overflow");
                $name(idx as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                ::std::fmt::Display::fmt(self, f)
            }
        }
    };
}

/// A dense vector keyed by an [`EntityId`].
#[derive(Clone, PartialEq, Eq)]
pub struct EntityVec<K: EntityId, V> {
    items: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V> EntityVec<K, V> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        EntityVec {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty vector with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EntityVec {
            items: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends a value, returning its id.
    pub fn push(&mut self, value: V) -> K {
        let k = K::from_index(self.items.len());
        self.items.push(value);
        k
    }

    /// The id the next `push` will return.
    pub fn next_id(&self) -> K {
        K::from_index(self.items.len())
    }

    /// Returns `Some(&value)` when `k` is in range.
    pub fn get(&self, k: K) -> Option<&V> {
        self.items.get(k.index())
    }

    /// Returns `Some(&mut value)` when `k` is in range.
    pub fn get_mut(&mut self, k: K) -> Option<&mut V> {
        self.items.get_mut(k.index())
    }

    /// Whether `k` indexes an existing entity.
    pub fn contains(&self, k: K) -> bool {
        k.index() < self.items.len()
    }

    /// Iterates over `(id, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over `(id, &mut value)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over all ids.
    pub fn ids(&self) -> impl Iterator<Item = K> {
        (0..self.items.len()).map(K::from_index)
    }

    /// Iterates over values only.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.items.iter()
    }

    /// Iterates over values mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.items.iter_mut()
    }
}

impl<K: EntityId, V> Default for EntityVec<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for EntityVec<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, k: K) -> &V {
        &self.items[k.index()]
    }
}

impl<K: EntityId, V> std::ops::IndexMut<K> for EntityVec<K, V> {
    #[inline]
    fn index_mut(&mut self, k: K) -> &mut V {
        &mut self.items[k.index()]
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for EntityVec<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<K: EntityId, V> FromIterator<V> for EntityVec<K, V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        EntityVec {
            items: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

impl<K: EntityId, V> Extend<V> for EntityVec<K, V> {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

/// A dense map from an [`EntityId`] to `V`, pre-sized with a default value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntityMap<K: EntityId, V> {
    items: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V: Clone> EntityMap<K, V> {
    /// Creates a map with `n` entries, each set to `init`.
    pub fn with_default(n: usize, init: V) -> Self {
        EntityMap {
            items: vec![init; n],
            _marker: PhantomData,
        }
    }
}

impl<K: EntityId, V> EntityMap<K, V> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(id, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }
}

impl<K: EntityId, V> std::ops::Index<K> for EntityMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, k: K) -> &V {
        &self.items[k.index()]
    }
}

impl<K: EntityId, V> std::ops::IndexMut<K> for EntityMap<K, V> {
    #[inline]
    fn index_mut(&mut self, k: K) -> &mut V {
        &mut self.items[k.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    entity_id!(
        /// Test id.
        pub struct TestId, "t"
    );

    #[test]
    fn push_and_index() {
        let mut v: EntityVec<TestId, &str> = EntityVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TestId(7).to_string(), "t7");
        assert_eq!(format!("{:?}", TestId(7)), "t7");
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let v: EntityVec<TestId, i32> = [10, 20, 30].into_iter().collect();
        let pairs: Vec<_> = v.iter().map(|(k, &x)| (k.index(), x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn next_id_matches_push() {
        let mut v: EntityVec<TestId, ()> = EntityVec::new();
        let predicted = v.next_id();
        let actual = v.push(());
        assert_eq!(predicted, actual);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let v: EntityVec<TestId, i32> = EntityVec::new();
        assert!(v.get(TestId(0)).is_none());
        assert!(!v.contains(TestId(0)));
    }

    #[test]
    fn entity_map_default_fill() {
        let mut m: EntityMap<TestId, u8> = EntityMap::with_default(3, 9);
        assert_eq!(m[TestId(2)], 9);
        m[TestId(1)] = 4;
        assert_eq!(m[TestId(1)], 4);
        assert_eq!(m.len(), 3);
    }
}
