//! Ergonomic construction of functions.

use crate::function::{Block, Function, SlotData};
use crate::ids::{BlockId, FuncId, SlotId, Vreg};
use crate::instr::{Address, BinOp, Callee, Inst, Operand, Terminator, UnOp};

/// Incrementally builds a [`Function`].
///
/// Blocks are created with [`FunctionBuilder::new_block`] and filled through
/// a *current block* cursor. Every block must be closed with exactly one of
/// [`ret`](Self::ret), [`br`](Self::br) or [`cond_br`](Self::cond_br) before
/// [`build`](Self::build).
///
/// ```
/// use ipra_ir::builder::FunctionBuilder;
/// use ipra_ir::instr::BinOp;
///
/// let mut b = FunctionBuilder::new("add1");
/// let x = b.param("x");
/// let r = b.bin(BinOp::Add, x, 1);
/// b.ret(Some(r.into()));
/// let f = b.build();
/// assert_eq!(f.name, "add1");
/// assert_eq!(f.params.len(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
    terminated: Vec<bool>,
}

impl FunctionBuilder {
    /// Starts a function; the entry block is created and selected.
    pub fn new(name: impl Into<String>) -> Self {
        let mut func = Function::new(name);
        let entry = func.blocks.push(Block::new(Terminator::Ret(None)));
        func.entry = entry;
        FunctionBuilder {
            func,
            cur: entry,
            terminated: vec![false],
        }
    }

    /// Adds a named parameter, returning its register.
    ///
    /// # Panics
    ///
    /// Panics if any instruction has already been emitted, since parameters
    /// must be defined at entry.
    pub fn param(&mut self, name: impl Into<String>) -> Vreg {
        assert!(
            self.func.num_insts() == 0,
            "parameters must be declared before emitting instructions"
        );
        let v = self.func.new_named_vreg(name);
        self.func.params.push(v);
        v
    }

    /// Marks the function as externally visible (separately compiled).
    pub fn set_external_visible(&mut self) {
        self.func.attrs.external_visible = true;
    }

    /// Allocates a local stack slot of `size` cells.
    pub fn slot(&mut self, name: impl Into<String>, size: u32) -> SlotId {
        self.func.slots.push(SlotData {
            size,
            name: name.into(),
        })
    }

    /// Allocates a fresh unnamed register.
    pub fn vreg(&mut self) -> Vreg {
        self.func.new_vreg()
    }

    /// Allocates a fresh named register (a "program variable").
    pub fn var(&mut self, name: impl Into<String>) -> Vreg {
        self.func.new_named_vreg(name)
    }

    /// Creates a new (unselected) block.
    pub fn new_block(&mut self) -> BlockId {
        self.terminated.push(false);
        self.func.blocks.push(Block::new(Terminator::Ret(None)))
    }

    /// Moves the cursor to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            !self.terminated[block.0 as usize],
            "cannot append to a terminated block {block}"
        );
        self.cur = block;
    }

    /// The block the cursor points at.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Appends a raw instruction to the current block.
    pub fn emit(&mut self, inst: Inst) {
        assert!(
            !self.terminated[self.cur.0 as usize],
            "block {} already terminated",
            self.cur
        );
        self.func.blocks[self.cur].insts.push(inst);
    }

    /// `dst = src`, into a fresh register.
    pub fn copy(&mut self, src: impl Into<Operand>) -> Vreg {
        let dst = self.vreg();
        self.copy_to(dst, src);
        dst
    }

    /// `dst = src`, into an existing register.
    pub fn copy_to(&mut self, dst: Vreg, src: impl Into<Operand>) {
        self.emit(Inst::Copy {
            dst,
            src: src.into(),
        });
    }

    /// `fresh = lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Vreg {
        let dst = self.vreg();
        self.bin_to(dst, op, lhs, rhs);
        dst
    }

    /// `dst = lhs op rhs`.
    pub fn bin_to(
        &mut self,
        dst: Vreg,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) {
        self.emit(Inst::Bin {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// `fresh = op src`.
    pub fn un(&mut self, op: UnOp, src: impl Into<Operand>) -> Vreg {
        let dst = self.vreg();
        self.emit(Inst::Un {
            op,
            dst,
            src: src.into(),
        });
        dst
    }

    /// `fresh = mem[addr]`.
    pub fn load(&mut self, addr: Address) -> Vreg {
        let dst = self.vreg();
        self.load_to(dst, addr);
        dst
    }

    /// `dst = mem[addr]`.
    pub fn load_to(&mut self, dst: Vreg, addr: Address) {
        self.emit(Inst::Load { dst, addr });
    }

    /// `mem[addr] = src`.
    pub fn store(&mut self, src: impl Into<Operand>, addr: Address) {
        self.emit(Inst::Store {
            src: src.into(),
            addr,
        });
    }

    /// Direct call whose result is used: `fresh = call f(args)`.
    pub fn call(&mut self, f: FuncId, args: Vec<Operand>) -> Vreg {
        let dst = self.vreg();
        self.emit(Inst::Call {
            callee: Callee::Direct(f),
            args,
            dst: Some(dst),
        });
        dst
    }

    /// Direct call whose result is ignored.
    pub fn call_void(&mut self, f: FuncId, args: Vec<Operand>) {
        self.emit(Inst::Call {
            callee: Callee::Direct(f),
            args,
            dst: None,
        });
    }

    /// Indirect call through a computed function address.
    pub fn call_indirect(&mut self, target: impl Into<Operand>, args: Vec<Operand>) -> Vreg {
        let dst = self.vreg();
        self.emit(Inst::Call {
            callee: Callee::Indirect(target.into()),
            args,
            dst: Some(dst),
        });
        dst
    }

    /// `fresh = &f`.
    pub fn func_addr(&mut self, f: FuncId) -> Vreg {
        let dst = self.vreg();
        self.emit(Inst::FuncAddr { dst, func: f });
        dst
    }

    /// Emits a value to the program output stream.
    pub fn print(&mut self, arg: impl Into<Operand>) {
        self.emit(Inst::Print { arg: arg.into() });
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(
            !self.terminated[self.cur.0 as usize],
            "block {} already terminated",
            self.cur
        );
        self.func.blocks[self.cur].term = term;
        self.terminated[self.cur.0 as usize] = true;
    }

    /// Closes the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Closes the current block with an unconditional branch and moves the
    /// cursor to `to` if it is still open.
    pub fn br(&mut self, to: BlockId) {
        self.terminate(Terminator::Br(to));
        if !self.terminated[to.0 as usize] {
            self.cur = to;
        }
    }

    /// Closes the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_to: BlockId, else_to: BlockId) {
        self.terminate(Terminator::CondBr {
            cond: cond.into(),
            then_to,
            else_to,
        });
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if any block was never terminated.
    pub fn build(self) -> Function {
        for (i, t) in self.terminated.iter().enumerate() {
            assert!(
                *t,
                "block bb{i} in function `{}` was never terminated",
                self.func.name
            );
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_function() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param("x");
        let y = b.bin(BinOp::Mul, x, 3);
        b.print(y);
        b.ret(Some(y.into()));
        let f = b.build();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_insts(), 2);
        assert_eq!(f.params, vec![x]);
    }

    #[test]
    fn builds_diamond() {
        let mut b = FunctionBuilder::new("abs");
        let x = b.param("x");
        let neg = b.new_block();
        let join = b.new_block();
        let r = b.var("r");
        let c = b.bin(BinOp::Lt, x, 0);
        b.copy_to(r, x);
        b.cond_br(c, neg, join);
        b.switch_to(neg);
        let n = b.un(UnOp::Neg, x);
        b.copy_to(r, n);
        b.br(join);
        b.ret(Some(r.into()));
        let f = b.build();
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn unterminated_block_panics() {
        let mut b = FunctionBuilder::new("f");
        let _dangling = b.new_block();
        b.ret(None);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "before emitting")]
    fn late_param_panics() {
        let mut b = FunctionBuilder::new("f");
        let _ = b.copy(1);
        let _ = b.param("x");
    }
}
