//! Reference interpreter over virtual registers.
//!
//! This interpreter executes IR directly with unlimited registers and is the
//! *semantic oracle* for the whole pipeline: every optimization
//! configuration must produce machine code whose simulated output equals the
//! output computed here.

use std::fmt;

use crate::ids::{FuncId, Vreg};
use crate::instr::{Address, Callee, Inst, Operand, Terminator};
use crate::module::Module;

/// Why execution stopped abnormally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Trap {
    /// Integer division or remainder by zero (or `i64::MIN / -1`).
    DivideByZero,
    /// Memory access outside a global or slot.
    OutOfBounds {
        /// Description of the object.
        what: String,
        /// Offending index.
        index: i64,
        /// Object size.
        size: u32,
    },
    /// Indirect call through a value that is not a function address.
    BadIndirectTarget(i64),
    /// Call stack exceeded the configured limit.
    StackOverflow,
    /// Instruction budget exhausted.
    OutOfFuel,
    /// A call expected a return value but the callee returned none.
    MissingReturnValue(String),
    /// Module has no `main`.
    NoMain,
    /// Wrong number of arguments to the entry function.
    BadArity {
        /// Function called.
        func: String,
        /// Arguments provided.
        got: usize,
        /// Parameters expected.
        want: usize,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivideByZero => write!(f, "division by zero"),
            Trap::OutOfBounds { what, index, size } => {
                write!(f, "index {index} out of bounds for {what} of size {size}")
            }
            Trap::BadIndirectTarget(v) => write!(f, "indirect call through non-function value {v}"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::OutOfFuel => write!(f, "instruction budget exhausted"),
            Trap::MissingReturnValue(name) => {
                write!(
                    f,
                    "function `{name}` returned no value to a caller expecting one"
                )
            }
            Trap::NoMain => write!(f, "module has no main function"),
            Trap::BadArity { func, got, want } => {
                write!(f, "function `{func}` called with {got} args, wants {want}")
            }
        }
    }
}

impl Trap {
    /// True for traps that mean "execution exceeded a configured resource
    /// budget" ([`Trap::OutOfFuel`], [`Trap::StackOverflow`]) rather than a
    /// semantic error in the program. Differential harnesses skip seeds
    /// whose oracle run hits a resource limit instead of reporting them as
    /// miscompiles.
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, Trap::OutOfFuel | Trap::StackOverflow)
    }
}

impl std::error::Error for Trap {}

/// Result of a successful execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecResult {
    /// Values emitted by `print`, in order.
    pub output: Vec<i64>,
    /// Return value of the entry function (0 when it returned none).
    pub return_value: i64,
    /// Number of IR instructions executed (terminators included).
    pub insts_executed: u64,
    /// Number of call instructions executed.
    pub calls_executed: u64,
}

/// Interpreter configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InterpOptions {
    /// Maximum number of executed instructions before [`Trap::OutOfFuel`].
    pub fuel: u64,
    /// Maximum call depth before [`Trap::StackOverflow`].
    pub max_depth: usize,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            fuel: 500_000_000,
            max_depth: 10_000,
        }
    }
}

impl InterpOptions {
    /// Returns options with the instruction budget replaced.
    pub fn with_fuel(self, fuel: u64) -> Self {
        InterpOptions { fuel, ..self }
    }

    /// Returns options with the call-depth limit replaced.
    pub fn with_max_depth(self, max_depth: usize) -> Self {
        InterpOptions { max_depth, ..self }
    }
}

struct Interp<'a> {
    module: &'a Module,
    globals: Vec<Vec<i64>>,
    output: Vec<i64>,
    fuel: u64,
    max_depth: usize,
    insts: u64,
    calls: u64,
}

impl Interp<'_> {
    fn charge(&mut self) -> Result<(), Trap> {
        if self.insts >= self.fuel {
            return Err(Trap::OutOfFuel);
        }
        self.insts += 1;
        Ok(())
    }

    fn global_cell(&mut self, g: crate::ids::GlobalId, index: i64) -> Result<&mut i64, Trap> {
        let data = &self.module.globals[g];
        if index < 0 || index >= data.size as i64 {
            return Err(Trap::OutOfBounds {
                what: format!("global `{}`", data.name),
                index,
                size: data.size,
            });
        }
        Ok(&mut self.globals[g.index()][index as usize])
    }

    fn call(&mut self, func: FuncId, args: &[i64], depth: usize) -> Result<Option<i64>, Trap> {
        if depth >= self.max_depth {
            return Err(Trap::StackOverflow);
        }
        let f = &self.module.funcs[func];
        if f.params.len() != args.len() {
            return Err(Trap::BadArity {
                func: f.name.clone(),
                got: args.len(),
                want: f.params.len(),
            });
        }
        let mut regs = vec![0i64; f.num_vregs()];
        for (p, a) in f.params.iter().zip(args) {
            regs[p.index()] = *a;
        }
        let mut slots: Vec<Vec<i64>> = f
            .slots
            .values()
            .map(|s| vec![0i64; s.size as usize])
            .collect();

        let read = |regs: &[i64], o: Operand| -> i64 {
            match o {
                Operand::Reg(v) => regs[v.index()],
                Operand::Imm(i) => i,
            }
        };

        let mut block = f.entry;
        loop {
            let b = &f.blocks[block];
            for inst in &b.insts {
                self.charge()?;
                match inst {
                    Inst::Copy { dst, src } => regs[dst.index()] = read(&regs, *src),
                    Inst::Bin { op, dst, lhs, rhs } => {
                        let a = read(&regs, *lhs);
                        let c = read(&regs, *rhs);
                        regs[dst.index()] = op.eval(a, c).ok_or(Trap::DivideByZero)?;
                    }
                    Inst::Un { op, dst, src } => {
                        regs[dst.index()] = op.eval(read(&regs, *src));
                    }
                    Inst::Load { dst, addr } => {
                        let val = match addr {
                            Address::Global { global, index } => {
                                let i = read(&regs, *index);
                                *self.global_cell(*global, i)?
                            }
                            Address::Stack { slot, index } => {
                                let i = read(&regs, *index);
                                let s = &slots[slot.index()];
                                if i < 0 || i as usize >= s.len() {
                                    return Err(Trap::OutOfBounds {
                                        what: format!("slot `{}`", f.slots[*slot].name),
                                        index: i,
                                        size: s.len() as u32,
                                    });
                                }
                                s[i as usize]
                            }
                        };
                        regs[dst.index()] = val;
                    }
                    Inst::Store { src, addr } => {
                        let val = read(&regs, *src);
                        match addr {
                            Address::Global { global, index } => {
                                let i = read(&regs, *index);
                                *self.global_cell(*global, i)? = val;
                            }
                            Address::Stack { slot, index } => {
                                let i = read(&regs, *index);
                                let s = &mut slots[slot.index()];
                                if i < 0 || i as usize >= s.len() {
                                    return Err(Trap::OutOfBounds {
                                        what: format!("slot `{}`", f.slots[*slot].name),
                                        index: i,
                                        size: s.len() as u32,
                                    });
                                }
                                s[i as usize] = val;
                            }
                        }
                    }
                    Inst::Call {
                        callee,
                        args: call_args,
                        dst,
                    } => {
                        self.calls += 1;
                        let vals: Vec<i64> = call_args.iter().map(|a| read(&regs, *a)).collect();
                        let target = match callee {
                            Callee::Direct(id) => *id,
                            Callee::Indirect(t) => {
                                let raw = read(&regs, *t);
                                if raw < 0 || raw as usize >= self.module.funcs.len() {
                                    return Err(Trap::BadIndirectTarget(raw));
                                }
                                FuncId(raw as u32)
                            }
                        };
                        let ret = self.call(target, &vals, depth + 1)?;
                        if let Some(d) = dst {
                            let name = self.module.funcs[target].name.clone();
                            regs[d.index()] = ret.ok_or(Trap::MissingReturnValue(name))?;
                        }
                    }
                    Inst::FuncAddr { dst, func } => {
                        regs[dst.index()] = func.index() as i64;
                    }
                    Inst::Print { arg } => {
                        let v = read(&regs, *arg);
                        self.output.push(v);
                    }
                }
            }
            self.charge()?;
            match &b.term {
                Terminator::Ret(None) => return Ok(None),
                Terminator::Ret(Some(v)) => return Ok(Some(read(&regs, *v))),
                Terminator::Br(t) => block = *t,
                Terminator::CondBr {
                    cond,
                    then_to,
                    else_to,
                } => {
                    block = if read(&regs, *cond) != 0 {
                        *then_to
                    } else {
                        *else_to
                    };
                }
            }
        }
    }
}

/// Runs `main` of `module` with default options.
///
/// # Errors
///
/// Returns the [`Trap`] that stopped execution.
pub fn run_module(module: &Module) -> Result<ExecResult, Trap> {
    run_module_with(module, InterpOptions::default())
}

/// Runs `main` of `module` with explicit options.
///
/// # Errors
///
/// Returns the [`Trap`] that stopped execution.
pub fn run_module_with(module: &Module, opts: InterpOptions) -> Result<ExecResult, Trap> {
    let main = module.main.ok_or(Trap::NoMain)?;
    run_function(module, main, &[], opts)
}

/// Calls an arbitrary function with arguments; used by unit tests.
///
/// # Errors
///
/// Returns the [`Trap`] that stopped execution.
pub fn run_function(
    module: &Module,
    func: FuncId,
    args: &[i64],
    opts: InterpOptions,
) -> Result<ExecResult, Trap> {
    let mut interp = Interp {
        module,
        globals: module
            .globals
            .values()
            .map(|g| {
                let mut v = vec![0i64; g.size as usize];
                for (i, init) in g.init.iter().enumerate().take(g.size as usize) {
                    v[i] = *init;
                }
                v
            })
            .collect(),
        output: Vec::new(),
        fuel: opts.fuel,
        max_depth: opts.max_depth,
        insts: 0,
        calls: 0,
    };
    let ret = interp.call(func, args, 0)?;
    Ok(ExecResult {
        output: interp.output,
        return_value: ret.unwrap_or(0),
        insts_executed: interp.insts,
        calls_executed: interp.calls,
    })
}

/// Unused marker to keep `Vreg` imported for doc links.
#[doc(hidden)]
pub fn _vreg_doc_anchor(_: Vreg) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::BinOp;
    use crate::module::GlobalData;

    fn fib_module() -> Module {
        let mut m = Module::new();
        let fib = m.declare_func("fib");
        {
            let mut b = FunctionBuilder::new("fib");
            let n = b.param("n");
            let rec = b.new_block();
            let c = b.bin(BinOp::Lt, n, 2);
            let base = b.current_block();
            let _ = base;
            let done = b.new_block();
            b.cond_br(c, done, rec);
            b.switch_to(rec);
            let n1 = b.bin(BinOp::Sub, n, 1);
            let f1 = b.call(fib, vec![n1.into()]);
            let n2 = b.bin(BinOp::Sub, n, 2);
            let f2 = b.call(fib, vec![n2.into()]);
            let s = b.bin(BinOp::Add, f1, f2);
            b.ret(Some(s.into()));
            b.switch_to(done);
            b.ret(Some(n.into()));
            m.define_func(fib, b.build());
        }
        let mut mb = FunctionBuilder::new("main");
        let r = mb.call(fib, vec![Operand::Imm(10)]);
        mb.print(r);
        mb.ret(None);
        let main = m.add_func(mb.build());
        m.main = Some(main);
        m
    }

    #[test]
    fn fib_10_is_55() {
        let m = fib_module();
        crate::verify::verify_module(&m).unwrap();
        let r = run_module(&m).unwrap();
        assert_eq!(r.output, vec![55]);
        assert!(
            r.calls_executed > 100,
            "recursive calls counted: {}",
            r.calls_executed
        );
    }

    #[test]
    fn globals_are_initialized_and_writable() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData {
            name: "a".into(),
            size: 3,
            init: vec![7, 8],
        });
        let mut b = FunctionBuilder::new("main");
        let v = b.load(Address::Global {
            global: g,
            index: Operand::Imm(1),
        });
        b.print(v);
        b.store(
            v,
            Address::Global {
                global: g,
                index: Operand::Imm(2),
            },
        );
        let w = b.load(Address::Global {
            global: g,
            index: Operand::Imm(2),
        });
        b.print(w);
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        let r = run_module(&m).unwrap();
        assert_eq!(r.output, vec![8, 8]);
    }

    #[test]
    fn indirect_call_through_func_addr() {
        let mut m = Module::new();
        let sq = m.declare_func("sq");
        {
            let mut b = FunctionBuilder::new("sq");
            let x = b.param("x");
            let r = b.bin(BinOp::Mul, x, x);
            b.ret(Some(r.into()));
            m.define_func(sq, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        let fp = b.func_addr(sq);
        let r = b.call_indirect(fp, vec![Operand::Imm(9)]);
        b.print(r);
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        let r = run_module(&m).unwrap();
        assert_eq!(r.output, vec![81]);
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main");
        let r = b.bin(BinOp::Div, 1, 0);
        b.print(r);
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        assert_eq!(run_module(&m).unwrap_err(), Trap::DivideByZero);
    }

    #[test]
    fn oob_store_traps() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::array("a", 2));
        let mut b = FunctionBuilder::new("main");
        let i = b.copy(5);
        b.store(
            1,
            Address::Global {
                global: g,
                index: i.into(),
            },
        );
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        match run_module(&m).unwrap_err() {
            Trap::OutOfBounds {
                index: 5, size: 2, ..
            } => {}
            t => panic!("unexpected trap {t}"),
        }
    }

    #[test]
    fn fuel_limits_infinite_loop() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main");
        let l = b.new_block();
        b.br(l);
        b.br(l);
        let id = m.add_func(b.build());
        m.main = Some(id);
        let err = run_module_with(
            &m,
            InterpOptions {
                fuel: 1000,
                max_depth: 10,
            },
        )
        .unwrap_err();
        assert_eq!(err, Trap::OutOfFuel);
    }

    #[test]
    fn stack_overflow_traps() {
        let mut m = Module::new();
        let f = m.declare_func("f");
        {
            let mut b = FunctionBuilder::new("f");
            b.call_void(f, vec![]);
            b.ret(None);
            m.define_func(f, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        b.call_void(f, vec![]);
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        let err = run_module_with(
            &m,
            InterpOptions {
                fuel: u64::MAX,
                max_depth: 64,
            },
        )
        .unwrap_err();
        assert_eq!(err, Trap::StackOverflow);
    }

    #[test]
    fn missing_return_value_traps() {
        let mut m = Module::new();
        let f = m.declare_func("noret");
        {
            let mut b = FunctionBuilder::new("noret");
            b.ret(None);
            m.define_func(f, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        let r = b.call(f, vec![]);
        b.print(r);
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        assert!(matches!(
            run_module(&m).unwrap_err(),
            Trap::MissingReturnValue(_)
        ));
    }

    #[test]
    fn resource_limit_traps_are_distinguished() {
        assert!(Trap::OutOfFuel.is_resource_limit());
        assert!(Trap::StackOverflow.is_resource_limit());
        assert!(!Trap::DivideByZero.is_resource_limit());
        assert!(!Trap::NoMain.is_resource_limit());

        let opts = InterpOptions::default().with_fuel(3).with_max_depth(7);
        assert_eq!(opts.fuel, 3);
        assert_eq!(opts.max_depth, 7);
    }
}
