//! IR well-formedness verification.

use std::fmt;

use crate::function::Function;
use crate::ids::{BlockId, FuncId, InstLoc, Vreg};
use crate::instr::{Address, Callee, Inst, Operand, Terminator};
use crate::module::Module;

/// A structural defect found by the verifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function where the defect lies, when applicable.
    pub func: Option<FuncId>,
    /// Description of the defect.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(id) => write!(f, "verify error in {id}: {}", self.message),
            None => write!(f, "verify error: {}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

struct Checker<'a> {
    module: &'a Module,
    func_id: FuncId,
    func: &'a Function,
    errors: Vec<VerifyError>,
}

impl Checker<'_> {
    fn err(&mut self, message: String) {
        self.errors.push(VerifyError {
            func: Some(self.func_id),
            message,
        });
    }

    fn check_vreg(&mut self, v: Vreg, what: &str, loc: Option<InstLoc>) {
        if v.index() >= self.func.num_vregs() {
            let at = loc.map(|l| format!(" at {l}")).unwrap_or_default();
            self.err(format!(
                "{what} {v}{at} out of range (function has {} vregs)",
                self.func.num_vregs()
            ));
        }
    }

    fn check_operand(&mut self, o: Operand, loc: InstLoc) {
        if let Operand::Reg(v) = o {
            self.check_vreg(v, "operand", Some(loc));
        }
    }

    fn check_block(&mut self, b: BlockId, what: &str) {
        if !self.func.blocks.contains(b) {
            self.err(format!("{what} references missing block {b}"));
        }
    }

    fn check_address(&mut self, a: Address, loc: InstLoc) {
        match a {
            Address::Global { global, index } => {
                if !self.module.globals.contains(global) {
                    self.err(format!("missing global {global} at {loc}"));
                } else if let Operand::Imm(i) = index {
                    let size = self.module.globals[global].size as i64;
                    if i < 0 || i >= size {
                        self.err(format!(
                            "constant index {i} out of bounds for {global} (size {size}) at {loc}"
                        ));
                    }
                }
                self.check_operand(index, loc);
            }
            Address::Stack { slot, index } => {
                if !self.func.slots.contains(slot) {
                    self.err(format!("missing stack slot {slot} at {loc}"));
                } else if let Operand::Imm(i) = index {
                    let size = self.func.slots[slot].size as i64;
                    if i < 0 || i >= size {
                        self.err(format!(
                            "constant index {i} out of bounds for {slot} (size {size}) at {loc}"
                        ));
                    }
                }
                self.check_operand(index, loc);
            }
        }
    }

    fn check_call(&mut self, callee: &Callee, args: &[Operand], loc: InstLoc) {
        match callee {
            Callee::Direct(f) => {
                if !self.module.funcs.contains(*f) {
                    self.err(format!("call to missing function {f} at {loc}"));
                } else {
                    let want = self.module.funcs[*f].params.len();
                    if want != args.len() {
                        self.err(format!(
                            "call to @{} at {loc} passes {} args, function takes {}",
                            self.module.funcs[*f].name,
                            args.len(),
                            want
                        ));
                    }
                }
            }
            Callee::Indirect(t) => self.check_operand(*t, loc),
        }
        for a in args {
            self.check_operand(*a, loc);
        }
    }

    fn run(&mut self) {
        let f = self.func;
        if !f.blocks.contains(f.entry) {
            self.err(format!("entry block {} does not exist", f.entry));
        }
        let mut seen_params = std::collections::HashSet::new();
        for &p in &f.params {
            self.check_vreg(p, "parameter", None);
            if !seen_params.insert(p) {
                self.err(format!("parameter {p} declared twice"));
            }
        }
        for (block, b) in f.blocks.iter() {
            for (idx, inst) in b.insts.iter().enumerate() {
                let loc = InstLoc { block, inst: idx };
                if let Some(d) = inst.def() {
                    self.check_vreg(d, "definition", Some(loc));
                }
                let mut used = Vec::new();
                inst.for_each_use(|v| used.push(v));
                for v in used {
                    self.check_vreg(v, "use", Some(loc));
                }
                match inst {
                    Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                        self.check_address(*addr, loc)
                    }
                    Inst::Call { callee, args, .. } => self.check_call(callee, args, loc),
                    Inst::FuncAddr { func, .. } if !self.module.funcs.contains(*func) => {
                        self.err(format!("addr of missing function {func} at {loc}"));
                    }
                    _ => {}
                }
            }
            match &b.term {
                Terminator::Ret(_) => {}
                Terminator::Br(t) => self.check_block(*t, "br"),
                Terminator::CondBr {
                    then_to, else_to, ..
                } => {
                    self.check_block(*then_to, "cond_br");
                    self.check_block(*else_to, "cond_br");
                }
            }
        }
    }
}

/// Verifies one function in the context of its module.
///
/// # Errors
///
/// Returns every structural defect found (dangling ids, arity mismatches,
/// out-of-bounds constant indices).
pub fn verify_function(module: &Module, func_id: FuncId) -> Result<(), Vec<VerifyError>> {
    let mut c = Checker {
        module,
        func_id,
        func: &module.funcs[func_id],
        errors: Vec::new(),
    };
    c.run();
    if c.errors.is_empty() {
        Ok(())
    } else {
        Err(c.errors)
    }
}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the concatenated defects of all functions, plus module-level
/// problems (missing `main`, duplicate names).
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    if let Some(m) = module.main {
        if !module.funcs.contains(m) {
            errors.push(VerifyError {
                func: None,
                message: format!("main {m} does not exist"),
            });
        } else if !module.funcs[m].params.is_empty() {
            errors.push(VerifyError {
                func: None,
                message: "main must take no parameters".into(),
            });
        }
    }
    let mut names = std::collections::HashMap::new();
    for (id, f) in module.funcs.iter() {
        if let Some(prev) = names.insert(f.name.clone(), id) {
            errors.push(VerifyError {
                func: Some(id),
                message: format!("duplicate function name `{}` (also {prev})", f.name),
            });
        }
    }
    for id in module.funcs.ids() {
        if let Err(mut e) = verify_function(module, id) {
            errors.append(&mut e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Block;
    use crate::module::GlobalData;

    fn ok_module() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main");
        b.print(7);
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        m
    }

    #[test]
    fn accepts_well_formed_module() {
        assert!(verify_module(&ok_module()).is_ok());
    }

    #[test]
    fn rejects_dangling_branch() {
        let mut m = ok_module();
        let f = m.main.unwrap();
        m.funcs[f].blocks[BlockId(0)].term = Terminator::Br(BlockId(42));
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("missing block")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_bad_arity_call() {
        let mut m = Module::new();
        let mut cal = FunctionBuilder::new("callee");
        let _p = cal.param("p");
        cal.ret(None);
        let callee = m.add_func(cal.build());
        let mut b = FunctionBuilder::new("main");
        b.call_void(callee, vec![]);
        b.ret(None);
        let id = m.add_func(b.build());
        m.main = Some(id);
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("passes 0 args")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_out_of_range_vreg() {
        let mut m = ok_module();
        let f = m.main.unwrap();
        m.funcs[f].blocks[BlockId(0)].insts.push(Inst::Copy {
            dst: Vreg(99),
            src: Operand::Imm(0),
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("out of range")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_constant_oob_global_index() {
        let mut m = ok_module();
        let g = m.add_global(GlobalData::array("a", 4));
        let f = m.main.unwrap();
        m.funcs[f].blocks[BlockId(0)].insts.push(Inst::Store {
            src: Operand::Imm(1),
            addr: Address::Global {
                global: g,
                index: Operand::Imm(4),
            },
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("out of bounds")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_duplicate_names_and_main_with_params() {
        let mut m = Module::new();
        let mut a = FunctionBuilder::new("f");
        let _x = a.param("x");
        a.ret(None);
        let fid = m.add_func(a.build());
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        m.add_func(b.build());
        m.main = Some(fid);
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("duplicate function name")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.message.contains("no parameters")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_unterminated_entry_reference() {
        // A function whose entry id is out of range.
        let mut m = Module::new();
        let mut f = Function::new("weird");
        f.entry = BlockId(3);
        f.blocks.push(Block::new(Terminator::Ret(None)));
        m.add_func(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("entry block")),
            "{errs:?}"
        );
    }
}
