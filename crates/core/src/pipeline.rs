//! A reusable compilation pipeline.
//!
//! [`crate::compile_module`] builds all of its working state from scratch
//! and drops it on return — fine for one-shot batch compiles, wasteful
//! for the recompile loops the incremental cache exists for (daemons,
//! convention sweeps, watch modes). [`Pipeline`] is the long-lived
//! counterpart: it owns the memoized per-function analyses
//! ([`AnalysisCache`]), the per-worker scratch buffers ([`ScratchPool`]),
//! and an in-memory image of decoded incremental-cache entries, all of
//! which survive from one [`Pipeline::compile`] call to the next.
//!
//! On a warm recompile a cache hit is then answered from the in-memory
//! entry (no file read, no JSON parse, no machine-code re-decode), an
//! unchanged function's analyses come back as a shared `Arc`, and the
//! allocator phases run inside recycled scratch — which is what drives
//! the `recompile_allocs` bench's heap-allocation reduction.
//!
//! Output is bit-identical to the one-shot entry points for every
//! jobs/cache/scratch combination; the differential oracle compiles the
//! same seed through a reused pipeline and a fresh one and compares the
//! rendered machine code byte for byte.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use ipra_callgraph::{CallGraph, Openness, SccInfo};
use ipra_ir::{hash_module, Fnv64, Module};
use ipra_machine::Target;

use crate::analysis::{AnalysisCache, AnalysisStats};
use crate::cache::CachedFunc;
use crate::config::AllocOptions;
use crate::inline::InlineStats;
use crate::ipra::{compile_module_impl, prepare_module, CompiledModule};
use crate::promote::PromotionStats;
use crate::scratch::ScratchPool;

/// The module-level front half of a compile, memoized whole: the cloned
/// and transformed (entry-normalized, global-promoted) module together
/// with everything derived from it that every compile of the same input
/// recomputes verbatim — per-function body hashes, the call graph, its
/// SCC condensation and the openness classification.
#[derive(Debug)]
pub(crate) struct PreparedModule {
    /// The untransformed input, kept to guard the memo against hash
    /// collisions with an exact equality check.
    pub(crate) input: Module,
    /// Whether global promotion ran (it changes the transformed body).
    pub(crate) promote: bool,
    /// Whether the inliner ran (it changes the transformed body too).
    pub(crate) inline_on: bool,
    /// The inliner's budget at preparation time.
    pub(crate) inline_budget: u32,
    /// The profile the inliner ranked sites with (`None` when inlining
    /// was off or no profile was supplied) — part of the memo's exact
    /// equality guard, because a different profile can pick different
    /// sites for the same input module.
    pub(crate) inline_profile: Option<Vec<Vec<u64>>>,
    /// The transformed module all downstream passes read.
    pub(crate) module: Module,
    /// What global promotion did (zeros when the pass is off).
    pub(crate) promotion: PromotionStats,
    /// What the inliner did (default when the pass is off).
    pub(crate) inline: InlineStats,
    /// Structural hash of each transformed function body, by `FuncId`.
    pub(crate) body_hashes: Vec<u64>,
    /// Call graph of the transformed module.
    pub(crate) cg: CallGraph,
    /// SCC condensation of the call graph.
    pub(crate) scc: SccInfo,
    /// Open/closed classification (paper §3).
    pub(crate) openness: Openness,
}

/// A FIFO-bounded memo: a map plus an insertion-order queue, evicting the
/// oldest entries once `cap` is exceeded. One-shot compiles use an
/// unbounded memo (their pipeline dies with the compile); a long-lived
/// daemon caps both memos so serving an unbounded stream of distinct
/// modules cannot grow memory without bound.
#[derive(Debug)]
pub(crate) struct BoundedMemo<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V> BoundedMemo<K, V> {
    fn new(cap: usize) -> Self {
        BoundedMemo {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
        }
        while self.map.len() > self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Long-lived compilation state: analysis memo, scratch pool, and the
/// in-memory incremental-cache image. Create one per daemon/JIT/bench
/// process and push every compile through it.
///
/// A `Pipeline` is `Send + Sync`: wave workers already share it within a
/// compile, and a compile daemon shares one across concurrent client
/// sessions — every memo sits behind its own lock, and compiles are
/// bit-identical no matter how the memos interleave.
#[derive(Debug)]
pub struct Pipeline {
    /// Per-function analyses memoized across compiles by body hash.
    pub(crate) analyses: AnalysisCache,
    /// Recycled per-worker scratch buffers.
    pub(crate) scratch: ScratchPool,
    /// Decoded incremental-cache entries by component key, so a warm
    /// recompile never touches the cache directory again.
    pub(crate) entries: Mutex<BoundedMemo<u64, Arc<Vec<CachedFunc>>>>,
    /// Prepared (transformed + module-level-analyzed) modules by
    /// whole-module hash plus inline configuration, so a warm recompile
    /// of an unchanged module skips the clone, the normalization /
    /// promotion / inlining passes and the call-graph work entirely —
    /// while an inline-config or profile change can never replay a stale
    /// transform.
    pub(crate) prepared: Mutex<BoundedMemo<(u64, bool, u64), Arc<PreparedModule>>>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

// Compile-time proof that a Pipeline may be shared across daemon session
// threads (the field types make this true; this pins it against drift).
const _: fn() = || {
    fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Pipeline>();
};

impl Pipeline {
    /// An unbounded pipeline (one-shot compiles, tests, benches).
    pub fn new() -> Pipeline {
        Pipeline::with_memo_caps(usize::MAX, usize::MAX)
    }

    /// A pipeline whose prepared-module and decoded-entry memos are
    /// FIFO-bounded to `prepared_cap` / `entries_cap` entries — the
    /// daemon configuration. The analysis memo needs no cap of its own:
    /// its entries are only reachable through prepared modules, so
    /// bounding those bounds its useful size, and stale analyses are
    /// never looked up again.
    pub fn with_memo_caps(prepared_cap: usize, entries_cap: usize) -> Pipeline {
        Pipeline {
            analyses: AnalysisCache::default(),
            scratch: ScratchPool::default(),
            entries: Mutex::new(BoundedMemo::new(entries_cap.max(1))),
            prepared: Mutex::new(BoundedMemo::new(prepared_cap.max(1))),
        }
    }

    /// Current sizes of the (prepared-module, decoded-entry) memos, for
    /// daemon metrics gauges.
    pub fn memo_sizes(&self) -> (usize, usize) {
        (
            self.prepared.lock().unwrap().len(),
            self.entries.lock().unwrap().len(),
        )
    }

    /// Compiles a module, reusing any state earlier compiles left behind.
    pub fn compile(&self, module: &Module, target: &Target, opts: &AllocOptions) -> CompiledModule {
        self.compile_with_profile(module, target, opts, None)
    }

    /// The inline-configuration component of the prepared-module memo
    /// key: `0` when inlining is off (so profiles keep sharing one
    /// prepared module, as before), otherwise a hash of the budget and
    /// the full profile the inliner would consume.
    fn inline_key(opts: &AllocOptions, profile: Option<&[Vec<u64>]>) -> u64 {
        if !opts.effective_inline() {
            return 0;
        }
        let mut h = Fnv64::new();
        h.write_u8(1);
        h.write_u32(opts.inline_budget);
        match profile {
            Some(p) => {
                h.write_u8(1);
                h.write_usize(p.len());
                for counts in p {
                    h.write_usize(counts.len());
                    for &c in counts {
                        h.write_u64(c);
                    }
                }
            }
            None => h.write_u8(0),
        }
        h.finish()
    }

    /// [`Pipeline::compile`] with profile feedback (see
    /// [`crate::compile_module_with_profile`]).
    pub fn compile_with_profile(
        &self,
        module: &Module,
        target: &Target,
        opts: &AllocOptions,
        profile: Option<&[Vec<u64>]>,
    ) -> CompiledModule {
        compile_module_impl(module, target, opts, profile, self)
    }

    /// Lifetime hit/miss totals of the analysis memo (each
    /// [`CompiledModule::analysis`] carries the per-compile window).
    pub fn analysis_stats(&self) -> AnalysisStats {
        self.analyses.stats()
    }

    /// The prepared form of `module` under `opts` (and, when inlining is
    /// on, `profile`), from the memo when the exact same input was
    /// prepared before. A colliding hash is caught by the stored input's
    /// equality check — covering the inline configuration and the exact
    /// profile — and recomputed (last write wins).
    pub(crate) fn prepared(
        &self,
        module: &Module,
        opts: &AllocOptions,
        profile: Option<&[Vec<u64>]>,
    ) -> Arc<PreparedModule> {
        let inline_on = opts.effective_inline();
        let key = (
            hash_module(module),
            opts.promote_globals,
            Self::inline_key(opts, profile),
        );
        if let Some(p) = self.prepared.lock().unwrap().get(&key) {
            let inline_matches = p.inline_on == inline_on
                && (!inline_on
                    || (p.inline_budget == opts.inline_budget
                        && p.inline_profile.as_deref() == profile));
            if p.promote == opts.promote_globals && inline_matches && p.input == *module {
                return Arc::clone(p);
            }
        }
        let p = Arc::new(prepare_module(module, opts, profile));
        self.prepared.lock().unwrap().insert(key, Arc::clone(&p));
        p
    }
}
