//! A reusable compilation pipeline.
//!
//! [`crate::compile_module`] builds all of its working state from scratch
//! and drops it on return — fine for one-shot batch compiles, wasteful
//! for the recompile loops the incremental cache exists for (daemons,
//! convention sweeps, watch modes). [`Pipeline`] is the long-lived
//! counterpart: it owns the memoized per-function analyses
//! ([`AnalysisCache`]), the per-worker scratch buffers ([`ScratchPool`]),
//! and an in-memory image of decoded incremental-cache entries, all of
//! which survive from one [`Pipeline::compile`] call to the next.
//!
//! On a warm recompile a cache hit is then answered from the in-memory
//! entry (no file read, no JSON parse, no machine-code re-decode), an
//! unchanged function's analyses come back as a shared `Arc`, and the
//! allocator phases run inside recycled scratch — which is what drives
//! the `recompile_allocs` bench's heap-allocation reduction.
//!
//! Output is bit-identical to the one-shot entry points for every
//! jobs/cache/scratch combination; the differential oracle compiles the
//! same seed through a reused pipeline and a fresh one and compares the
//! rendered machine code byte for byte.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ipra_callgraph::{CallGraph, Openness, SccInfo};
use ipra_ir::{hash_module, Module};
use ipra_machine::Target;

use crate::analysis::{AnalysisCache, AnalysisStats};
use crate::cache::CachedFunc;
use crate::config::AllocOptions;
use crate::ipra::{compile_module_impl, prepare_module, CompiledModule};
use crate::promote::PromotionStats;
use crate::scratch::ScratchPool;

/// The module-level front half of a compile, memoized whole: the cloned
/// and transformed (entry-normalized, global-promoted) module together
/// with everything derived from it that every compile of the same input
/// recomputes verbatim — per-function body hashes, the call graph, its
/// SCC condensation and the openness classification.
#[derive(Debug)]
pub(crate) struct PreparedModule {
    /// The untransformed input, kept to guard the memo against hash
    /// collisions with an exact equality check.
    pub(crate) input: Module,
    /// Whether global promotion ran (it changes the transformed body).
    pub(crate) promote: bool,
    /// The transformed module all downstream passes read.
    pub(crate) module: Module,
    /// What global promotion did (zeros when the pass is off).
    pub(crate) promotion: PromotionStats,
    /// Structural hash of each transformed function body, by `FuncId`.
    pub(crate) body_hashes: Vec<u64>,
    /// Call graph of the transformed module.
    pub(crate) cg: CallGraph,
    /// SCC condensation of the call graph.
    pub(crate) scc: SccInfo,
    /// Open/closed classification (paper §3).
    pub(crate) openness: Openness,
}

/// Long-lived compilation state: analysis memo, scratch pool, and the
/// in-memory incremental-cache image. Create one per daemon/JIT/bench
/// process and push every compile through it.
#[derive(Debug, Default)]
pub struct Pipeline {
    /// Per-function analyses memoized across compiles by body hash.
    pub(crate) analyses: AnalysisCache,
    /// Recycled per-worker scratch buffers.
    pub(crate) scratch: ScratchPool,
    /// Decoded incremental-cache entries by component key, so a warm
    /// recompile never touches the cache directory again.
    pub(crate) entries: Mutex<HashMap<u64, Arc<Vec<CachedFunc>>>>,
    /// Prepared (transformed + module-level-analyzed) modules by
    /// whole-module hash, so a warm recompile of an unchanged module
    /// skips the clone, the normalization/promotion passes and the
    /// call-graph work entirely.
    pub(crate) prepared: Mutex<HashMap<(u64, bool), Arc<PreparedModule>>>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Compiles a module, reusing any state earlier compiles left behind.
    pub fn compile(&self, module: &Module, target: &Target, opts: &AllocOptions) -> CompiledModule {
        self.compile_with_profile(module, target, opts, None)
    }

    /// [`Pipeline::compile`] with profile feedback (see
    /// [`crate::compile_module_with_profile`]).
    pub fn compile_with_profile(
        &self,
        module: &Module,
        target: &Target,
        opts: &AllocOptions,
        profile: Option<&[Vec<u64>]>,
    ) -> CompiledModule {
        compile_module_impl(module, target, opts, profile, self)
    }

    /// Lifetime hit/miss totals of the analysis memo (each
    /// [`CompiledModule::analysis`] carries the per-compile window).
    pub fn analysis_stats(&self) -> AnalysisStats {
        self.analyses.stats()
    }

    /// The prepared form of `module` under `opts`, from the memo when the
    /// exact same input was prepared before. A colliding hash is caught by
    /// the stored input's equality check and recomputed (last write wins).
    pub(crate) fn prepared(&self, module: &Module, opts: &AllocOptions) -> Arc<PreparedModule> {
        let key = (hash_module(module), opts.promote_globals);
        if let Some(p) = self.prepared.lock().unwrap().get(&key) {
            if p.promote == opts.promote_globals && p.input == *module {
                return Arc::clone(p);
            }
        }
        let p = Arc::new(prepare_module(module, opts));
        self.prepared.lock().unwrap().insert(key, Arc::clone(&p));
        p
    }
}
