//! Global-scalar register promotion.
//!
//! The paper does not allocate globals to the same register across the
//! whole program (that would defeat the one-pass scheme), but it *does*
//! "allocate them to registers within procedures in which they appear"
//! (§1). This pass rewrites, per procedure, accesses to a global scalar
//! into accesses to a fresh virtual register — loaded once at entry and
//! stored back at the exits — whenever no call in the procedure can touch
//! that global (per the transitive mod/ref summaries). The virtual register
//! then participates in ordinary priority-based coloring.

use ipra_callgraph::{CallGraph, ModRef, SccInfo};
use ipra_ir::{Address, GlobalId, Inst, Module, Operand, Terminator};

/// Statistics of one promotion run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PromotionStats {
    /// Number of (function, global) pairs promoted.
    pub promoted: usize,
    /// Accesses rewritten into register operations.
    pub accesses_rewritten: usize,
}

/// Promotes global scalars to virtual registers within safe procedures.
/// Returns statistics.
pub fn promote_globals(module: &mut Module) -> PromotionStats {
    let cg = CallGraph::build(module);
    let scc = SccInfo::compute(&cg);
    let mr = ModRef::compute(module, &cg, &scc);

    let mut stats = PromotionStats::default();
    let fids: Vec<_> = module.funcs.ids().collect();
    for fid in fids {
        let func = &module.funcs[fid];
        if cg.has_indirect_site[fid.index()] {
            continue; // an indirect call may touch any global
        }

        // Gather scalar globals accessed with constant index 0 only, and
        // count their accesses. A global accessed through a dynamic index
        // anywhere in this function is skipped.
        let mut counts: std::collections::HashMap<GlobalId, (usize, bool)> =
            std::collections::HashMap::new();
        let mut rejected: std::collections::HashSet<GlobalId> = std::collections::HashSet::new();
        for (_, inst) in func.inst_locs() {
            let (addr, is_store) = match inst {
                Inst::Load { addr, .. } => (addr, false),
                Inst::Store { addr, .. } => (addr, true),
                _ => continue,
            };
            if let Address::Global { global, index } = addr {
                if !module.globals[*global].is_scalar() {
                    continue;
                }
                if *index != Operand::Imm(0) {
                    rejected.insert(*global);
                    continue;
                }
                let e = counts.entry(*global).or_insert((0, false));
                e.0 += 1;
                e.1 |= is_store;
            }
        }

        let mut safe: Vec<(GlobalId, bool, String)> = counts
            .iter()
            .filter(|&(g, &(n, _))| {
                !rejected.contains(g)
                    && n >= 2
                    && cg.call_sites[fid.index()]
                        .iter()
                        .all(|site| match site.target {
                            Some(c) => !mr.touches(c, g.index()),
                            None => false,
                        })
            })
            .map(|(g, &(_, stored))| (*g, stored, format!("g_{}", module.globals[*g].name)))
            .collect();
        // HashMap iteration order varies between map instances; the order
        // here fixes the promoted vregs' numbering (and so the emitted
        // load/store order), which must be identical across compiles.
        safe.sort_by_key(|(g, _, _)| g.index());
        if safe.is_empty() {
            continue;
        }

        let func = &mut module.funcs[fid];
        for (g, stored, name) in safe {
            let vg = func.new_named_vreg(name);
            stats.promoted += 1;

            // Rewrite accesses.
            for block in func.blocks.values_mut() {
                for inst in &mut block.insts {
                    match inst {
                        Inst::Load {
                            dst,
                            addr: Address::Global { global, index },
                        } if *global == g && *index == Operand::Imm(0) => {
                            stats.accesses_rewritten += 1;
                            *inst = Inst::Copy {
                                dst: *dst,
                                src: Operand::Reg(vg),
                            };
                        }
                        Inst::Store {
                            src,
                            addr: Address::Global { global, index },
                        } if *global == g && *index == Operand::Imm(0) => {
                            stats.accesses_rewritten += 1;
                            *inst = Inst::Copy { dst: vg, src: *src };
                        }
                        _ => {}
                    }
                }
            }

            // Load at entry...
            let entry = func.entry;
            func.blocks[entry].insts.insert(
                0,
                Inst::Load {
                    dst: vg,
                    addr: Address::global_scalar(g),
                },
            );
            // ...store back at every exit when modified.
            if stored {
                for block in func.blocks.values_mut() {
                    if matches!(block.term, Terminator::Ret(_)) {
                        block.insts.push(Inst::Store {
                            src: Operand::Reg(vg),
                            addr: Address::global_scalar(g),
                        });
                    }
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::{interp, BinOp, GlobalData};

    /// main: counter loop over a global scalar; helper untouched.
    fn counting_module() -> Module {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::scalar("count"));
        let noop = m.declare_func("noop");
        {
            let mut b = FunctionBuilder::new("noop");
            b.ret(None);
            m.define_func(noop, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        let h = b.new_block();
        let body = b.new_block();
        let out = b.new_block();
        b.br(h);
        let c = b.load(Address::global_scalar(g));
        let t = b.bin(BinOp::Lt, c, 5);
        b.cond_br(t, body, out);
        b.switch_to(body);
        let c2 = b.load(Address::global_scalar(g));
        let n = b.bin(BinOp::Add, c2, 1);
        b.store(n, Address::global_scalar(g));
        b.call_void(noop, vec![]);
        b.br(h);
        b.switch_to(out);
        let fin = b.load(Address::global_scalar(g));
        b.print(fin);
        b.ret(None);
        let main = m.add_func(b.build());
        m.main = Some(main);
        m
    }

    #[test]
    fn promotes_and_preserves_semantics() {
        let mut m = counting_module();
        let before = interp::run_module(&m).unwrap();
        let stats = promote_globals(&mut m);
        ipra_ir::verify::verify_module(&m).unwrap();
        let after = interp::run_module(&m).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(after.output, vec![5]);
        assert!(stats.promoted >= 1, "count is promotable in main");
        assert!(stats.accesses_rewritten >= 4);
    }

    #[test]
    fn skips_globals_touched_by_callees() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::scalar("shared"));
        let bump = m.declare_func("bump");
        {
            let mut b = FunctionBuilder::new("bump");
            let v = b.load(Address::global_scalar(g));
            let n = b.bin(BinOp::Add, v, 1);
            b.store(n, Address::global_scalar(g));
            b.ret(None);
            m.define_func(bump, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        let v1 = b.load(Address::global_scalar(g));
        b.call_void(bump, vec![]);
        let v2 = b.load(Address::global_scalar(g));
        b.print(v1);
        b.print(v2);
        b.ret(None);
        let main = m.add_func(b.build());
        m.main = Some(main);

        let before = interp::run_module(&m).unwrap();
        promote_globals(&mut m);
        let after = interp::run_module(&m).unwrap();
        assert_eq!(
            before.output, after.output,
            "main must re-read after the call"
        );
        assert_eq!(after.output, vec![0, 1]);
        // bump itself has no calls, so bump may promote `shared` locally.
        let bump_f = &m.funcs[bump];
        assert!(
            bump_f
                .inst_locs()
                .any(|(_, i)| matches!(i, Inst::Load { .. })),
            "bump keeps an entry load of the global"
        );
    }

    #[test]
    fn skips_dynamic_index_scalars() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::scalar("s"));
        let mut b = FunctionBuilder::new("main");
        let i = b.copy(0);
        let v = b.load(Address::Global {
            global: g,
            index: i.into(),
        });
        let w = b.load(Address::global_scalar(g));
        let sum = b.bin(BinOp::Add, v, w);
        b.print(sum);
        b.ret(None);
        let main = m.add_func(b.build());
        m.main = Some(main);
        let stats = promote_globals(&mut m);
        assert_eq!(stats.promoted, 0, "dynamic index rejects promotion");
    }

    #[test]
    fn indirect_call_blocks_promotion() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::scalar("s"));
        let f = m.declare_func("f");
        {
            let mut b = FunctionBuilder::new("f");
            b.ret(None);
            m.define_func(f, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        let v = b.load(Address::global_scalar(g));
        let p = b.func_addr(f);
        let _ = b.call_indirect(p, vec![]);
        let w = b.load(Address::global_scalar(g));
        let sum = b.bin(BinOp::Add, v, w);
        b.print(sum);
        b.ret(None);
        let main = m.add_func(b.build());
        m.main = Some(main);
        let stats = promote_globals(&mut m);
        assert_eq!(stats.promoted, 0);
    }
}
