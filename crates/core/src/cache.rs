//! Incremental allocation cache with summary-keyed early cutoff.
//!
//! Chow's one-pass scheme (paper §2–§4, §6) makes a caller's allocation
//! depend on a callee only through the callee's exported register-usage
//! summary and whole-tree usage mask. The cache exploits exactly that: the
//! key of a component covers the structural hash of its member bodies, the
//! target/options fingerprint, and the *bytes* of every external callee
//! summary it consumes — not the callee's own body hash. A callee body
//! edit that leaves its summary and tree-usage mask unchanged therefore
//! produces the *same* key in every caller, and invalidation stops there
//! (early cutoff) without any explicit propagation machinery.
//!
//! The unit of caching is the SCC component, matching the unit of work of
//! the wave scheduler: members of a mutual-recursion component see each
//! other during allocation, so they hit or miss together.
//!
//! Persistence is *sharded*: one JSON document per component entry
//! (`<key>.ce.json` under the cache directory), written through the
//! in-tree `ipra-obs` JSON layer. Sharding keeps concurrent compiles
//! sharing one cache directory from serializing on a single file — each
//! process writes only the entries it computed, through its own temp file
//! and an atomic rename, so the worst concurrent case is two processes
//! racing to publish the *same* (byte-identical, key-addressed) entry.
//! Loading is lazy and tolerant: entries are read on first lookup, and an
//! unreadable, unparsable, or version-mismatched file behaves like an
//! absent entry; a stale entry that names functions or globals absent
//! from the current module decodes to a miss. Saving never fails a
//! compile.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ipra_ir::{BinOp, BlockId, Callee, EntityVec, Fnv64, FuncId, Inst, Module, UnOp};
use ipra_machine::{
    FrameSlot, MAddress, MBlock, MCallee, MFunction, MInst, MOperand, MTerminator, MemClass, PReg,
    RegMask, SlotPurpose, Target,
};
use ipra_obs::json::{self, Json};

use crate::alloc::SummaryEnv;
use crate::config::{AllocMode, AllocOptions};
use crate::summary::{FuncSummary, ParamLoc};

/// Bumped whenever the key derivation, the entry encoding, or the on-disk
/// layout changes; files written by another version load as empty.
/// Version 3 moved from one `ipra-cache.json` document to one
/// `<key>.ce.json` file per component entry. Version 4 folded the
/// inline configuration into the config fingerprint.
pub const CACHE_FORMAT_VERSION: i64 = 4;

/// Outcome counters of one compile with the cache enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whether a cache directory was configured for this compile.
    pub enabled: bool,
    /// Functions replayed from the cache.
    pub hits: u64,
    /// Functions allocated and lowered from scratch.
    pub misses: u64,
    /// Hits with at least one recompiled direct callee — callers where
    /// invalidation stopped because the callee's summary bytes were
    /// unchanged (the early-cutoff events).
    pub cutoffs: u64,
    /// Names of the functions that were recompiled, in `FuncId` order.
    pub recompiled: Vec<String>,
}

/// Everything a cache hit replays for one function: the lowered machine
/// code, the interface published to callers, and the per-function report
/// statistics that would otherwise come out of the allocation artifacts.
#[derive(Clone, Debug)]
pub struct CachedFunc {
    /// Function name (guards against key collisions and stale entries).
    pub name: String,
    /// The lowered machine code.
    pub code: MFunction,
    /// The summary published to callers.
    pub summary: FuncSummary,
    /// Whole-call-tree register usage (the Fig. 1 tie-break input).
    pub tree_used: RegMask,
    /// Whether the function was treated as open.
    pub is_open: bool,
    /// Registers the assignment uses.
    pub used: RegMask,
    /// Callee-saved registers saved locally.
    pub locally_saved: RegMask,
    /// Shrink-wrap range-extension iterations.
    pub shrink_iterations: u32,
    /// Report statistic: vregs left fully in memory.
    pub memory_vregs: usize,
    /// Report statistic: vregs split between registers and memory.
    pub split_vregs: usize,
    /// Report statistic: total referenced vregs.
    pub candidate_vregs: usize,
}

/// Fingerprint of everything outside the IR that allocation output depends
/// on: the register file, the cost model, and every [`AllocOptions`] field
/// except `jobs` and `cache_dir` (which never change the produced code).
pub fn config_fingerprint(target: &Target, opts: &AllocOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_i64(CACHE_FORMAT_VERSION);
    // The whole register-file layout — names, classes, allocatable order,
    // argument registers, reserved positions — via the target-level
    // fingerprint, so any convention partition or arg-count change
    // separates cache keys (and layout-identical named targets share
    // them). The derived masks are folded in as a redundant guard.
    let regs = &target.regs;
    h.write_u64(regs.fingerprint());
    h.write_u32(regs.default_clobbers().0);
    h.write_u32(regs.callee_saved_mask().0);

    let c = &target.cost;
    for v in [
        c.alu, c.mul, c.div, c.load, c.store, c.branch, c.call, c.ret, c.print,
    ] {
        h.write_u64(v);
    }

    h.write_u8(match opts.mode {
        AllocMode::NoAlloc => 0,
        AllocMode::Intra => 1,
        AllocMode::Inter => 2,
    });
    h.write_u8(opts.shrink_wrap as u8);
    h.write_u8(opts.custom_param_regs as u8);
    h.write_u8(opts.promote_globals as u8);
    h.write_u8(opts.split_ranges as u8);
    let mut forced: Vec<&String> = opts.forced_open.iter().collect();
    forced.sort();
    h.write_usize(forced.len());
    for f in forced {
        h.write_str(f);
    }
    // The *effective* inline setting (matching what `prepare_module`
    // consults), so an `IPRA_INLINE` flip separates keys exactly like a
    // flag flip. The budget only separates keys while inlining is on.
    if opts.effective_inline() {
        h.write_u8(1);
        h.write_u32(opts.inline_budget);
    } else {
        h.write_u8(0);
    }
    h.finish()
}

/// The cache key of one SCC component against the current environment.
///
/// Covers, per member in component order: the structural body hash, the
/// open/closed decision, the profile weights (when feeding back a
/// profile), and — for every call site in body order — the *external
/// inputs* the allocator reads for that site: nothing for an
/// intra-component callee beyond its position, and the summary bytes plus
/// tree-usage mask for a callee below this component. Because summaries
/// are compared by value, a recompiled callee with unchanged summary
/// yields an unchanged key here: the early cutoff.
#[allow(clippy::too_many_arguments)]
pub fn component_key(
    module: &Module,
    body_hashes: &[u64],
    comp: &[FuncId],
    is_open: impl Fn(FuncId) -> bool,
    fingerprint: u64,
    inter: bool,
    env: &SummaryEnv,
    profile: Option<&[Vec<u64>]>,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(fingerprint);
    h.write_usize(comp.len());
    for &fid in comp {
        let func = &module.funcs[fid];
        h.write_u64(body_hashes[fid.index()]);
        h.write_u8(is_open(fid) as u8);
        match profile.map(|p| &p[fid.index()]) {
            Some(counts) => {
                h.write_u8(1);
                h.write_usize(counts.len());
                for &c in counts.iter() {
                    h.write_u64(c);
                }
            }
            None => h.write_u8(0),
        }
        for (_, b) in func.blocks.iter() {
            for inst in &b.insts {
                let Inst::Call { callee, .. } = inst else {
                    continue;
                };
                match callee {
                    Callee::Indirect(_) => h.write_u8(0),
                    Callee::Direct(c) => {
                        if let Some(pos) = comp.iter().position(|m| m == c) {
                            h.write_u8(1);
                            h.write_usize(pos);
                        } else {
                            h.write_u8(2);
                            hash_callee_inputs(&mut h, inter, env, *c);
                        }
                    }
                }
            }
        }
    }
    h.finish()
}

/// Absorbs what the allocator reads about one external callee: its summary
/// bytes (consulted only under inter-procedural allocation) and its
/// whole-tree usage mask (consulted always).
fn hash_callee_inputs(h: &mut Fnv64, inter: bool, env: &SummaryEnv, callee: FuncId) {
    if inter {
        match env.summaries.get(&callee) {
            Some(s) => {
                h.write_u8(1);
                h.write_u32(s.clobbers.0);
                h.write_usize(s.param_locs.len());
                for l in &s.param_locs {
                    match l {
                        ParamLoc::Reg(r) => {
                            h.write_u8(0);
                            h.write_u8(r.0);
                        }
                        ParamLoc::Stack(i) => {
                            h.write_u8(1);
                            h.write_u32(*i);
                        }
                        ParamLoc::Ignored => h.write_u8(2),
                    }
                }
                h.write_u8(s.is_default as u8);
            }
            None => h.write_u8(0),
        }
    } else {
        h.write_u8(2);
    }
    match env.tree_used.get(&callee) {
        Some(m) => {
            h.write_u8(1);
            h.write_u32(m.0);
        }
        None => h.write_u8(0),
    }
}

/// The on-disk allocation cache: `key → [cached function, ...]` with one
/// entry per SCC component, persisted as one `<key:016x>.ce.json` file
/// per entry under the cache directory.
#[derive(Debug)]
pub struct AllocCache {
    dir: PathBuf,
    /// Entries inserted by this compile, pending [`AllocCache::save`].
    /// Lookups consult these first, then the per-entry files.
    dirty: BTreeMap<u64, Json>,
}

/// File name of the shard holding `key`.
fn shard_name(key: u64) -> String {
    format!("{key:016x}.ce.json")
}

impl AllocCache {
    /// Opens the cache at `dir`. No I/O happens here: entries are read
    /// lazily on [`AllocCache::lookup`], so opening a huge shared cache
    /// costs nothing and concurrent processes never contend on open.
    pub fn load(dir: &Path) -> AllocCache {
        AllocCache {
            dir: dir.to_path_buf(),
            dirty: BTreeMap::new(),
        }
    }

    /// Number of cached components on disk or pending save.
    pub fn len(&self) -> usize {
        let mut keys: std::collections::BTreeSet<u64> = self.dirty.keys().copied().collect();
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for entry in rd.flatten() {
                if let Some(key) = entry
                    .file_name()
                    .to_str()
                    .and_then(|n| n.strip_suffix(".ce.json"))
                    .and_then(|k| u64::from_str_radix(k, 16).ok())
                {
                    keys.insert(key);
                }
            }
        }
        keys.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the entry under `key` against the current module. Returns
    /// `None` — a plain miss — when the key is absent, its file is
    /// unreadable, unparsable or version-skewed, or the entry is stale
    /// (names a function or global the module no longer has).
    pub fn lookup(&self, key: u64, module: &Module) -> Option<Vec<CachedFunc>> {
        let from_disk;
        let arr = match self.dirty.get(&key) {
            Some(v) => v.as_arr()?,
            None => {
                let text = std::fs::read_to_string(self.dir.join(shard_name(key))).ok()?;
                let doc = json::parse(&text).ok()?;
                if doc.get("version").and_then(Json::as_i64) != Some(CACHE_FORMAT_VERSION) {
                    return None;
                }
                from_disk = doc;
                from_disk.get("funcs")?.as_arr()?
            }
        };
        let mut out = Vec::with_capacity(arr.len());
        for v in arr {
            out.push(dec_cached(v, module)?);
        }
        Some(out)
    }

    /// Stores one component's results under `key` (pending save).
    pub fn insert(&mut self, key: u64, funcs: &[CachedFunc], module: &Module) {
        self.dirty.insert(
            key,
            Json::Arr(funcs.iter().map(|c| enc_cached(c, module)).collect()),
        );
    }

    /// Writes every pending entry to its own shard file. Best-effort: the
    /// directory is created if missing, each shard goes through a
    /// process- *and thread-unique* temp file + atomic rename, and I/O
    /// errors are swallowed (a failed save costs a future miss, never a
    /// failed compile).
    ///
    /// Uniqueness matters twice over: the pid component keeps concurrent
    /// *processes* sharing a cache directory apart, and the global
    /// sequence number keeps concurrent *threads of one process* (a
    /// compile daemon's in-flight requests publishing the same key) from
    /// reusing one temp path — with a pid-only name, one thread could
    /// rename a temp file another thread was still writing, publishing a
    /// torn entry.
    pub fn save(&self) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        if self.dirty.is_empty() {
            return;
        }
        let _ = std::fs::create_dir_all(&self.dir);
        for (key, funcs) in &self.dirty {
            let doc = Json::obj(vec![
                ("version", Json::Int(CACHE_FORMAT_VERSION)),
                ("funcs", funcs.clone()),
            ]);
            let tmp = self.dir.join(format!(
                "{key:016x}.{}.{}.tmp",
                std::process::id(),
                SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            if std::fs::write(&tmp, doc.render()).is_ok()
                && std::fs::rename(&tmp, self.dir.join(shard_name(*key))).is_err()
            {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry encoding: one compact whitespace-separated token string per cached
// function, stored as a single JSON string.
//
// The first version encoded machine code as nested JSON arrays; parsing
// those dominated the warm path (hundreds of thousands of small `Json`
// nodes), making a warm compile as slow as a cold one. A blob is one node:
// the JSON parser memcpys it, and the token scanner below decodes it with
// no intermediate allocation.
//
// Cross-function references (direct callees, function addresses, globals)
// are stored by *name* and remapped to the current module's ids on decode,
// for the same reason the structural hash uses names: entity ids shift when
// unrelated functions are added or removed. Names are percent-encoded so a
// token never contains whitespace (or JSON-escaped characters), and carry a
// `~` sentinel so the empty string stays a valid token.

struct Enc {
    buf: String,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            buf: String::with_capacity(256),
        }
    }

    fn raw(&mut self, t: &str) {
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
        self.buf.push_str(t);
    }

    fn num(&mut self, v: impl std::fmt::Display) {
        use std::fmt::Write;
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
        let _ = write!(self.buf, "{v}");
    }

    /// `<prefix><number>` as one token (operands, compact markers).
    fn pnum(&mut self, prefix: char, v: impl std::fmt::Display) {
        use std::fmt::Write;
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
        self.buf.push(prefix);
        let _ = write!(self.buf, "{v}");
    }

    fn bit(&mut self, b: bool) {
        self.raw(if b { "1" } else { "0" });
    }

    fn name(&mut self, s: &str) {
        use std::fmt::Write;
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
        self.buf.push('~');
        for b in s.bytes() {
            match b {
                b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'.' | b'$' | b'@' | b'-' => {
                    self.buf.push(b as char)
                }
                _ => {
                    let _ = write!(self.buf, "%{b:02x}");
                }
            }
        }
    }

    fn operand(&mut self, op: MOperand) {
        match op {
            MOperand::Reg(r) => self.pnum('r', r.0),
            MOperand::Imm(i) => self.pnum('i', i),
        }
    }

    fn address(&mut self, addr: MAddress, module: &Module) {
        match addr {
            MAddress::Global { global, index } => {
                self.raw("g");
                self.name(&module.globals[global].name);
                self.operand(index);
            }
            MAddress::Frame { slot, index } => {
                self.pnum('f', slot.index());
                self.operand(index);
            }
            MAddress::Incoming(i) => self.pnum('n', i),
            MAddress::Outgoing(i) => self.pnum('o', i),
        }
    }
}

/// Token reader over one blob. Every accessor returns `None` on malformed
/// input, which surfaces as a cache miss.
struct Dec<'a> {
    it: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Dec<'a> {
    fn new(blob: &'a str) -> Dec<'a> {
        Dec {
            it: blob.split_ascii_whitespace(),
        }
    }

    fn tok(&mut self) -> Option<&'a str> {
        self.it.next()
    }

    fn u32(&mut self) -> Option<u32> {
        self.tok()?.parse().ok()
    }

    fn usize(&mut self) -> Option<usize> {
        self.tok()?.parse().ok()
    }

    fn preg(&mut self) -> Option<PReg> {
        Some(PReg(self.tok()?.parse().ok()?))
    }

    fn mask(&mut self) -> Option<RegMask> {
        Some(RegMask(self.u32()?))
    }

    fn bit(&mut self) -> Option<bool> {
        match self.tok()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }

    fn name(&mut self) -> Option<String> {
        unesc_name(self.tok()?)
    }

    fn operand_tok(t: &str) -> Option<MOperand> {
        match t.as_bytes().first()? {
            b'r' => Some(MOperand::Reg(PReg(t[1..].parse().ok()?))),
            b'i' => Some(MOperand::Imm(t[1..].parse().ok()?)),
            _ => None,
        }
    }

    fn operand(&mut self) -> Option<MOperand> {
        Self::operand_tok(self.tok()?)
    }

    fn address(&mut self, module: &Module) -> Option<MAddress> {
        let t = self.tok()?;
        match t.as_bytes().first()? {
            b'g' if t == "g" => Some(MAddress::Global {
                global: module.global_by_name(&self.name()?)?,
                index: self.operand()?,
            }),
            b'f' => Some(MAddress::Frame {
                slot: ipra_machine::FrameSlotId(t[1..].parse().ok()?),
                index: self.operand()?,
            }),
            b'n' => Some(MAddress::Incoming(t[1..].parse().ok()?)),
            b'o' => Some(MAddress::Outgoing(t[1..].parse().ok()?)),
            _ => None,
        }
    }
}

fn unesc_name(t: &str) -> Option<String> {
    let t = t.strip_prefix('~')?;
    let mut out = String::with_capacity(t.len());
    let b = t.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'%' {
            let hex = t.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()? as char);
            i += 3;
        } else {
            out.push(b[i] as char);
            i += 1;
        }
    }
    Some(out)
}

fn enc_inst(e: &mut Enc, inst: &MInst, module: &Module) {
    match inst {
        MInst::Copy { dst, src } => {
            e.raw("c");
            e.num(dst.0);
            e.operand(*src);
        }
        MInst::Bin { op, dst, lhs, rhs } => {
            e.raw(op.mnemonic());
            e.num(dst.0);
            e.operand(*lhs);
            e.operand(*rhs);
        }
        MInst::Un { op, dst, src } => {
            e.raw(op.mnemonic());
            e.num(dst.0);
            e.operand(*src);
        }
        MInst::Load { dst, addr, class } => {
            e.raw("l");
            e.num(dst.0);
            e.address(*addr, module);
            e.raw(enc_class(*class));
        }
        MInst::Store { src, addr, class } => {
            e.raw("s");
            e.operand(*src);
            e.address(*addr, module);
            e.raw(enc_class(*class));
        }
        MInst::Call {
            callee,
            num_stack_args,
        } => match callee {
            MCallee::Direct(f) => {
                e.raw("k");
                e.name(&module.funcs[*f].name);
                e.num(*num_stack_args);
            }
            MCallee::Indirect(op) => {
                e.raw("ki");
                e.operand(*op);
                e.num(*num_stack_args);
            }
        },
        MInst::FuncAddr { dst, func } => {
            e.raw("fa");
            e.num(dst.0);
            e.name(&module.funcs[*func].name);
        }
        MInst::Print { arg } => {
            e.raw("p");
            e.operand(*arg);
        }
    }
}

fn dec_inst(d: &mut Dec, module: &Module) -> Option<MInst> {
    match d.tok()? {
        "c" => Some(MInst::Copy {
            dst: d.preg()?,
            src: d.operand()?,
        }),
        "l" => Some(MInst::Load {
            dst: d.preg()?,
            addr: d.address(module)?,
            class: dec_class(d.tok()?)?,
        }),
        "s" => Some(MInst::Store {
            src: d.operand()?,
            addr: d.address(module)?,
            class: dec_class(d.tok()?)?,
        }),
        "k" => Some(MInst::Call {
            callee: MCallee::Direct(module.func_by_name(&d.name()?)?),
            num_stack_args: d.u32()?,
        }),
        "ki" => Some(MInst::Call {
            callee: MCallee::Indirect(d.operand()?),
            num_stack_args: d.u32()?,
        }),
        "fa" => Some(MInst::FuncAddr {
            dst: d.preg()?,
            func: module.func_by_name(&d.name()?)?,
        }),
        "p" => Some(MInst::Print { arg: d.operand()? }),
        "neg" => Some(MInst::Un {
            op: UnOp::Neg,
            dst: d.preg()?,
            src: d.operand()?,
        }),
        "not" => Some(MInst::Un {
            op: UnOp::Not,
            dst: d.preg()?,
            src: d.operand()?,
        }),
        m => Some(MInst::Bin {
            op: BinOp::ALL.iter().copied().find(|o| o.mnemonic() == m)?,
            dst: d.preg()?,
            lhs: d.operand()?,
            rhs: d.operand()?,
        }),
    }
}

fn enc_term(e: &mut Enc, t: &MTerminator) {
    match t {
        MTerminator::Ret => e.raw("t"),
        MTerminator::Br(b) => e.pnum('j', b.index()),
        MTerminator::CondBr {
            cond,
            then_to,
            else_to,
        } => {
            e.raw("z");
            e.operand(*cond);
            e.num(then_to.index());
            e.num(else_to.index());
        }
    }
}

fn dec_term(d: &mut Dec) -> Option<MTerminator> {
    let t = d.tok()?;
    match t.as_bytes().first()? {
        b't' if t == "t" => Some(MTerminator::Ret),
        b'j' => Some(MTerminator::Br(BlockId(t[1..].parse().ok()?))),
        b'z' if t == "z" => Some(MTerminator::CondBr {
            cond: d.operand()?,
            then_to: BlockId(d.u32()?),
            else_to: BlockId(d.u32()?),
        }),
        _ => None,
    }
}

fn enc_class(c: MemClass) -> &'static str {
    match c {
        MemClass::Data => "d",
        MemClass::ScalarHome => "h",
        MemClass::Spill => "x",
        MemClass::SaveRestore => "v",
    }
}

fn dec_class(t: &str) -> Option<MemClass> {
    match t {
        "d" => Some(MemClass::Data),
        "h" => Some(MemClass::ScalarHome),
        "x" => Some(MemClass::Spill),
        "v" => Some(MemClass::SaveRestore),
        _ => None,
    }
}

fn enc_purpose(p: SlotPurpose) -> &'static str {
    match p {
        SlotPurpose::Home => "h",
        SlotPurpose::Array => "a",
        SlotPurpose::Save => "s",
        SlotPurpose::Outgoing => "o",
    }
}

fn dec_purpose(t: &str) -> Option<SlotPurpose> {
    match t {
        "h" => Some(SlotPurpose::Home),
        "a" => Some(SlotPurpose::Array),
        "s" => Some(SlotPurpose::Save),
        "o" => Some(SlotPurpose::Outgoing),
        _ => None,
    }
}

fn enc_mfunction(e: &mut Enc, f: &MFunction, module: &Module) {
    e.name(&f.name);
    e.num(f.entry.index());
    e.num(f.num_params);
    e.num(f.max_outgoing);
    e.bit(f.is_leaf);
    e.num(f.frame.len());
    for slot in f.frame.values() {
        e.num(slot.size);
        e.raw(enc_purpose(slot.purpose));
        e.name(&slot.label);
    }
    e.num(f.blocks.len());
    for b in f.blocks.values() {
        e.num(b.insts.len());
        for i in &b.insts {
            enc_inst(e, i, module);
        }
        enc_term(e, &b.term);
    }
}

fn dec_mfunction(d: &mut Dec, module: &Module) -> Option<MFunction> {
    let name = d.name()?;
    let entry = BlockId(d.u32()?);
    let num_params = d.usize()?;
    let max_outgoing = d.u32()?;
    let is_leaf = d.bit()?;
    let mut frame = EntityVec::new();
    for _ in 0..d.usize()? {
        frame.push(FrameSlot {
            size: d.u32()?,
            purpose: dec_purpose(d.tok()?)?,
            label: d.name()?,
        });
    }
    let mut blocks = EntityVec::new();
    for _ in 0..d.usize()? {
        let n = d.usize()?;
        let mut insts = Vec::with_capacity(n);
        for _ in 0..n {
            insts.push(dec_inst(d, module)?);
        }
        blocks.push(MBlock {
            insts,
            term: dec_term(d)?,
        });
    }
    Some(MFunction {
        name,
        entry,
        blocks,
        frame,
        num_params,
        max_outgoing,
        is_leaf,
    })
}

fn enc_cached(c: &CachedFunc, module: &Module) -> Json {
    let mut e = Enc::new();
    e.name(&c.name);
    e.num(c.summary.clobbers.0);
    e.num(c.summary.param_locs.len());
    for l in &c.summary.param_locs {
        match l {
            ParamLoc::Reg(r) => e.pnum('r', r.0),
            ParamLoc::Stack(i) => e.pnum('s', *i),
            ParamLoc::Ignored => e.raw("x"),
        }
    }
    e.bit(c.summary.is_default);
    e.num(c.tree_used.0);
    e.bit(c.is_open);
    e.num(c.used.0);
    e.num(c.locally_saved.0);
    e.num(c.shrink_iterations);
    e.num(c.memory_vregs);
    e.num(c.split_vregs);
    e.num(c.candidate_vregs);
    enc_mfunction(&mut e, &c.code, module);
    Json::Str(e.buf)
}

fn dec_cached(v: &Json, module: &Module) -> Option<CachedFunc> {
    let mut d = Dec::new(v.as_str()?);
    let name = d.name()?;
    let clobbers = d.mask()?;
    let mut param_locs = Vec::new();
    for _ in 0..d.usize()? {
        let t = d.tok()?;
        param_locs.push(match t.as_bytes().first()? {
            b'r' => ParamLoc::Reg(PReg(t[1..].parse().ok()?)),
            b's' => ParamLoc::Stack(t[1..].parse().ok()?),
            b'x' if t == "x" => ParamLoc::Ignored,
            _ => return None,
        });
    }
    let summary = FuncSummary {
        clobbers,
        param_locs,
        is_default: d.bit()?,
    };
    Some(CachedFunc {
        name,
        summary,
        tree_used: d.mask()?,
        is_open: d.bit()?,
        used: d.mask()?,
        locally_saved: d.mask()?,
        shrink_iterations: d.u32()?,
        memory_vregs: d.usize()?,
        split_vregs: d.usize()?,
        candidate_vregs: d.usize()?,
        code: dec_mfunction(&mut d, module)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::Operand;

    fn test_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ipra-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn demo_module() -> Module {
        let mut m = Module::new();
        let leaf = m.declare_func("leaf");
        let top = m.declare_func("top");
        m.add_global(ipra_ir::GlobalData {
            name: "g".into(),
            size: 2,
            init: Vec::new(),
        });
        {
            let mut b = FunctionBuilder::new("leaf");
            let p = b.param("p");
            let r = b.bin(BinOp::Add, p, 1);
            b.ret(Some(r.into()));
            m.define_func(leaf, b.build());
        }
        {
            let mut b = FunctionBuilder::new("top");
            let r = b.call(leaf, vec![Operand::Imm(7)]);
            b.print(r);
            b.ret(None);
            m.define_func(top, b.build());
        }
        m.main = Some(top);
        m
    }

    fn compiled_cached_funcs(module: &Module) -> Vec<CachedFunc> {
        let target = Target::mips_like();
        let opts = AllocOptions::o3();
        let compiled = crate::ipra::compile_module(module, &target, &opts);
        module
            .funcs
            .iter()
            .map(|(fid, f)| CachedFunc {
                name: f.name.clone(),
                code: compiled.mmodule.funcs[fid].clone(),
                summary: compiled.summaries[fid.index()].clone(),
                tree_used: compiled.reports[fid.index()].used,
                is_open: compiled.summaries[fid.index()].is_default,
                used: compiled.reports[fid.index()].used,
                locally_saved: compiled.reports[fid.index()].locally_saved,
                shrink_iterations: compiled.reports[fid.index()].shrink_iterations,
                memory_vregs: compiled.reports[fid.index()].memory_vregs,
                split_vregs: compiled.reports[fid.index()].split_vregs,
                candidate_vregs: compiled.reports[fid.index()].candidate_vregs,
            })
            .collect()
    }

    #[test]
    fn round_trips_real_machine_code_through_disk() {
        let module = demo_module();
        let funcs = compiled_cached_funcs(&module);
        let dir = test_dir("roundtrip");

        let mut cache = AllocCache::load(&dir);
        assert!(cache.is_empty());
        cache.insert(42, &funcs, &module);
        cache.save();

        let cache2 = AllocCache::load(&dir);
        assert_eq!(cache2.len(), 1);
        let back = cache2.lookup(42, &module).expect("entry decodes");
        assert_eq!(back.len(), funcs.len());
        for (orig, dec) in funcs.iter().zip(&back) {
            assert_eq!(orig.name, dec.name);
            assert_eq!(orig.summary, dec.summary);
            assert_eq!(orig.tree_used, dec.tree_used);
            // MFunction has no PartialEq; compare the blocks (which do)
            // and the frame labels.
            assert_eq!(orig.code.blocks.len(), dec.code.blocks.len());
            for (a, b) in orig.code.blocks.values().zip(dec.code.blocks.values()) {
                assert_eq!(a, b);
            }
            assert_eq!(orig.code.frame.len(), dec.code.frame.len());
            for (a, b) in orig.code.frame.values().zip(dec.code.frame.values()) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.size, b.size);
                assert_eq!(a.purpose, b.purpose);
            }
            assert_eq!(orig.code.is_leaf, dec.code.is_leaf);
            assert_eq!(orig.code.num_params, dec.code.num_params);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_shards_decode_to_misses() {
        let dir = test_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let module = demo_module();

        // Garbage, version skew, and a malformed blob: each shard decodes
        // to a miss, never a panic.
        std::fs::write(dir.join(shard_name(0x01)), "{ not json !!").unwrap();
        std::fs::write(
            dir.join(shard_name(0x02)),
            r#"{"version":999,"funcs":["~f 0"]}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join(shard_name(0x03)),
            r#"{"version":3,"funcs":["! bogus"]}"#,
        )
        .unwrap();
        // Files that are not shards at all (the pre-v3 monolithic layout,
        // a stray temp file, a bad hex name) are ignored by the scan.
        std::fs::write(dir.join("ipra-cache.json"), "{}").unwrap();
        std::fs::write(dir.join("zz.ce.json"), "{}").unwrap();

        let c = AllocCache::load(&dir);
        for key in [0x01, 0x02, 0x03, 0x04] {
            assert!(c.lookup(key, &module).is_none(), "key {key:#x} must miss");
        }
        assert_eq!(c.len(), 3, "only well-named shards are counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two caches sharing one directory: each saves only what it
    /// computed, and both entries are visible afterwards — the concurrent
    /// fuzz-process layout.
    #[test]
    fn independent_saves_into_one_directory_do_not_clobber() {
        let module = demo_module();
        let funcs = compiled_cached_funcs(&module);
        let dir = test_dir("shared");

        let mut a = AllocCache::load(&dir);
        a.insert(1, &funcs, &module);
        let mut b = AllocCache::load(&dir);
        b.insert(2, &funcs, &module);
        a.save();
        b.save();

        let c = AllocCache::load(&dir);
        assert_eq!(c.len(), 2);
        assert!(c.lookup(1, &module).is_some());
        assert!(c.lookup(2, &module).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_entry_naming_missing_function_is_a_miss() {
        let module = demo_module();
        let funcs = compiled_cached_funcs(&module);
        let dir = test_dir("stale");
        let mut cache = AllocCache::load(&dir);
        cache.insert(7, &funcs, &module);

        // A module without `leaf` cannot replay code that calls it.
        let mut other = Module::new();
        let main = other.declare_func("top");
        {
            let mut b = FunctionBuilder::new("top");
            b.ret(None);
            other.define_func(main, b.build());
        }
        assert!(cache.lookup(7, &other).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let t = Target::mips_like();
        let o3 = config_fingerprint(&t, &AllocOptions::o3());
        assert_eq!(o3, config_fingerprint(&t, &AllocOptions::o3()));
        assert_ne!(o3, config_fingerprint(&t, &AllocOptions::o2_base()));
        assert_ne!(
            o3,
            config_fingerprint(&t, &AllocOptions::o3_no_shrink_wrap())
        );
        assert_ne!(
            o3,
            config_fingerprint(&t, &AllocOptions::o3().force_open("x"))
        );
        assert_ne!(
            o3,
            config_fingerprint(&Target::with_class_limits(7, 0), &AllocOptions::o3())
        );
        // jobs and cache_dir do not affect output, so not the key either.
        assert_eq!(o3, config_fingerprint(&t, &AllocOptions::o3().with_jobs(4)));
        assert_eq!(
            o3,
            config_fingerprint(&t, &AllocOptions::o3().with_cache_dir("/tmp/c"))
        );
    }

    #[test]
    fn component_key_tracks_summary_bytes_not_callee_identity() {
        let module = demo_module();
        let leaf = module.func_by_name("leaf").unwrap();
        let top = module.func_by_name("top").unwrap();
        let fp = config_fingerprint(&Target::mips_like(), &AllocOptions::o3());
        let open = |_| false;
        let hashes = ipra_ir::hash_all_functions(&module);

        let mut env = SummaryEnv::default();
        let base = component_key(&module, &hashes, &[top], open, fp, true, &env, None);
        assert_eq!(
            base,
            component_key(&module, &hashes, &[top], open, fp, true, &env, None),
            "key is deterministic"
        );

        // Publishing the callee's summary changes top's key...
        let regs = ipra_machine::RegFile::mips_like();
        env.summaries
            .insert(leaf, FuncSummary::default_for(&regs, 1));
        env.tree_used.insert(leaf, RegMask(0b1010));
        let with_summary = component_key(&module, &hashes, &[top], open, fp, true, &env, None);
        assert_ne!(base, with_summary);

        // ...but re-publishing byte-identical values does not (early cutoff).
        let mut env2 = SummaryEnv::default();
        env2.summaries
            .insert(leaf, FuncSummary::default_for(&regs, 1));
        env2.tree_used.insert(leaf, RegMask(0b1010));
        assert_eq!(
            with_summary,
            component_key(&module, &hashes, &[top], open, fp, true, &env2, None)
        );

        // A different clobber mask changes the key.
        env2.summaries.get_mut(&leaf).unwrap().clobbers = RegMask(0b1);
        assert_ne!(
            with_summary,
            component_key(&module, &hashes, &[top], open, fp, true, &env2, None)
        );

        // A profile is part of the key.
        let profile: Vec<Vec<u64>> = vec![vec![1], vec![5, 5]];
        assert_ne!(
            with_summary,
            component_key(
                &module,
                &hashes,
                &[top],
                open,
                fp,
                true,
                &env,
                Some(&profile)
            )
        );
    }
}
