//! Allocation configuration: the compiler flags of the paper's §8.

use std::collections::HashSet;

/// How registers are allocated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocMode {
    /// No register allocation: every virtual register lives in its home
    /// slot. Baseline/oracle configuration.
    NoAlloc,
    /// Intra-procedural priority-based coloring (the paper's `-O2`).
    Intra,
    /// Inter-procedural allocation over the bottom-up call-graph order
    /// (the paper's `-O3`).
    Inter,
}

/// Register-allocation options.
#[derive(Clone, Debug)]
pub struct AllocOptions {
    /// Allocation mode.
    pub mode: AllocMode,
    /// Shrink-wrap callee-saved save/restore placement (§5). Independent of
    /// the mode, exactly as in the paper ("performed under both -O2 and
    /// -O3"). Under [`AllocMode::Inter`] this also enables the §6 rule:
    /// saves that would land at procedure entry are propagated up instead.
    pub shrink_wrap: bool,
    /// Bind outgoing arguments to the callee's chosen parameter registers
    /// (§4). Only effective under [`AllocMode::Inter`].
    pub custom_param_regs: bool,
    /// Promote global scalars to registers within procedures where no call
    /// can touch them (§1: "we do allocate them to registers within
    /// procedures in which they appear").
    pub promote_globals: bool,
    /// Split uncolorable live ranges instead of leaving them in memory
    /// (priority-based coloring's splitting step).
    pub split_ranges: bool,
    /// Function names to treat as separately compiled (their summaries are
    /// invisible and they are open), simulating incomplete program
    /// information (§3) without editing the IR.
    pub forced_open: HashSet<String>,
    /// Run the profile-guided inliner (see [`crate::inline`]) between
    /// global promotion and the call-graph phases. Off in every preset;
    /// the `IPRA_INLINE` environment variable (`1`/`on` or `0`/`off`)
    /// overrides this field when set.
    pub inline: bool,
    /// Per-caller growth budget for the inliner, in instructions. Only
    /// consulted when inlining is (effectively) on.
    pub inline_budget: u32,
    /// Worker threads for the wave scheduler: `0` picks
    /// `std::thread::available_parallelism`, `1` forces the serial path.
    /// Results are bit-identical for every value. The `IPRA_JOBS`
    /// environment variable overrides this field when set.
    pub jobs: usize,
    /// Directory for the incremental allocation cache (`ipra-cache.json`
    /// inside it). `None` disables caching. The `IPRA_CACHE` environment
    /// variable supplies a directory when this field is `None`. Warm
    /// compiles are bit-identical to cold ones; the cache key covers the
    /// function body, every option in this struct (except `jobs` and
    /// `cache_dir` themselves), the target, and all callee summaries.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl AllocOptions {
    /// The paper's baseline: `-O2` with shrink-wrap disabled.
    pub fn o2_base() -> Self {
        AllocOptions {
            mode: AllocMode::Intra,
            shrink_wrap: false,
            custom_param_regs: false,
            promote_globals: true,
            split_ranges: true,
            forced_open: HashSet::new(),
            inline: false,
            inline_budget: crate::inline::DEFAULT_INLINE_BUDGET,
            jobs: 0,
            cache_dir: None,
        }
    }

    /// Table 1 configuration A: `-O2` with shrink-wrap.
    pub fn o2_shrink_wrap() -> Self {
        AllocOptions {
            shrink_wrap: true,
            ..Self::o2_base()
        }
    }

    /// Table 1 configuration B: `-O3` without shrink-wrap.
    pub fn o3_no_shrink_wrap() -> Self {
        AllocOptions {
            mode: AllocMode::Inter,
            custom_param_regs: true,
            ..Self::o2_base()
        }
    }

    /// Table 1 configuration C: `-O3` with shrink-wrap.
    pub fn o3() -> Self {
        AllocOptions {
            shrink_wrap: true,
            ..Self::o3_no_shrink_wrap()
        }
    }

    /// The no-allocation oracle configuration.
    pub fn no_alloc() -> Self {
        AllocOptions {
            mode: AllocMode::NoAlloc,
            shrink_wrap: false,
            custom_param_regs: false,
            promote_globals: false,
            split_ranges: false,
            forced_open: HashSet::new(),
            inline: false,
            inline_budget: crate::inline::DEFAULT_INLINE_BUDGET,
            jobs: 0,
            cache_dir: None,
        }
    }

    /// Marks `name` as separately compiled.
    pub fn force_open(mut self, name: impl Into<String>) -> Self {
        self.forced_open.insert(name.into());
        self
    }

    /// Turns the profile-guided inliner on or off.
    pub fn with_inline(mut self, on: bool) -> Self {
        self.inline = on;
        self
    }

    /// Sets the inliner's per-caller growth budget.
    pub fn with_inline_budget(mut self, budget: u32) -> Self {
        self.inline_budget = budget;
        self
    }

    /// Resolves [`AllocOptions::inline`]: `IPRA_INLINE` (when set to a
    /// recognized value) wins, then the field. `1`/`on`/`true` enable,
    /// `0`/`off`/`false` disable; anything else falls through.
    pub fn effective_inline(&self) -> bool {
        match std::env::var("IPRA_INLINE") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "1" | "on" | "true" => true,
                "0" | "off" | "false" => false,
                _ => self.inline,
            },
            Err(_) => self.inline,
        }
    }

    /// Sets the wave-scheduler worker count (see [`AllocOptions::jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables the incremental allocation cache rooted at `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Resolves [`AllocOptions::cache_dir`]: the field wins; otherwise a
    /// non-empty `IPRA_CACHE` environment variable supplies the directory.
    pub fn effective_cache_dir(&self) -> Option<std::path::PathBuf> {
        if let Some(d) = &self.cache_dir {
            return Some(d.clone());
        }
        match std::env::var("IPRA_CACHE") {
            Ok(v) if !v.trim().is_empty() => Some(std::path::PathBuf::from(v.trim())),
            _ => None,
        }
    }

    /// Resolves [`AllocOptions::jobs`] to a concrete worker count:
    /// `IPRA_JOBS` (when set and parseable) wins, then the field; `0`
    /// means "ask the OS", clamped to at least 1.
    pub fn effective_jobs(&self) -> usize {
        let requested = std::env::var("IPRA_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(self.jobs);
        if requested == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            requested
        }
    }
}

impl Default for AllocOptions {
    fn default() -> Self {
        Self::o3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shapes() {
        assert_eq!(AllocOptions::o2_base().mode, AllocMode::Intra);
        assert!(!AllocOptions::o2_base().shrink_wrap);
        assert!(AllocOptions::o2_shrink_wrap().shrink_wrap);
        assert_eq!(AllocOptions::o3().mode, AllocMode::Inter);
        assert!(AllocOptions::o3().custom_param_regs);
        assert!(!AllocOptions::o3_no_shrink_wrap().shrink_wrap);
        assert_eq!(AllocOptions::no_alloc().mode, AllocMode::NoAlloc);
    }

    #[test]
    fn force_open_collects_names() {
        let o = AllocOptions::o3().force_open("lib_fn").force_open("other");
        assert!(o.forced_open.contains("lib_fn"));
        assert_eq!(o.forced_open.len(), 2);
    }

    #[test]
    fn cache_dir_resolution() {
        // Note: assumes IPRA_CACHE is unset in the test environment.
        if std::env::var_os("IPRA_CACHE").is_some() {
            return;
        }
        assert_eq!(AllocOptions::o3().effective_cache_dir(), None);
        let o = AllocOptions::o3().with_cache_dir("/tmp/x");
        assert_eq!(
            o.effective_cache_dir(),
            Some(std::path::PathBuf::from("/tmp/x"))
        );
    }

    #[test]
    fn inline_resolution() {
        // Note: assumes IPRA_INLINE is unset in the test environment.
        if std::env::var_os("IPRA_INLINE").is_some() {
            return;
        }
        assert!(!AllocOptions::o3().effective_inline());
        assert!(AllocOptions::o3().with_inline(true).effective_inline());
        assert_eq!(AllocOptions::o3().with_inline_budget(7).inline_budget, 7);
        assert_eq!(
            AllocOptions::o3().inline_budget,
            crate::inline::DEFAULT_INLINE_BUDGET
        );
    }

    #[test]
    fn jobs_resolution() {
        // Note: assumes IPRA_JOBS is unset in the test environment.
        if std::env::var_os("IPRA_JOBS").is_some() {
            return;
        }
        assert_eq!(AllocOptions::o3().with_jobs(3).effective_jobs(), 3);
        assert_eq!(AllocOptions::o3().with_jobs(1).effective_jobs(), 1);
        assert!(AllocOptions::o3().with_jobs(0).effective_jobs() >= 1);
    }
}
