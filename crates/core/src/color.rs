//! Priority-based coloring with live-range splitting.
//!
//! Live ranges are processed in order of decreasing priority density; each
//! takes the register with the best net priority among those its
//! interference neighbours have not taken. A range that cannot be colored
//! (or whose whole-range priority is negative) is either *split* — a
//! connected, profitable sub-region of its blocks gets a register, the rest
//! stays in memory — or left in its home memory slot.

use std::collections::HashMap;

use ipra_cfg::{Cfg, Liveness};
use ipra_ir::{BlockId, Vreg};
use ipra_machine::{PReg, RegClass, RegMask};

use crate::priority::{PriorityCache, PriorityCtx};
use crate::scratch::CompileScratch;

/// Where a virtual register lives (over its whole range, or per block for
/// split ranges).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VregLoc {
    /// In a physical register.
    Reg(PReg),
    /// In its home stack slot.
    Mem,
}

/// The result of coloring one function.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// Whole-range location per vreg (the fallback for split ranges).
    pub whole: Vec<VregLoc>,
    /// Per-block overrides for split ranges.
    pub split: Vec<Option<HashMap<usize, PReg>>>,
    /// All registers the assignment uses.
    pub used: RegMask,
}

impl Assignment {
    /// Location of `v` inside `block`.
    pub fn loc(&self, v: Vreg, block: BlockId) -> VregLoc {
        if let Some(map) = &self.split[v.index()] {
            return match map.get(&block.index()) {
                Some(&r) => VregLoc::Reg(r),
                None => VregLoc::Mem,
            };
        }
        self.whole[v.index()]
    }

    /// Whether `v` was split.
    pub fn is_split(&self, v: Vreg) -> bool {
        self.split[v.index()].is_some()
    }

    /// Whether `v` touches memory anywhere (home slot needed).
    pub fn needs_home(&self, v: Vreg) -> bool {
        match (&self.split[v.index()], self.whole[v.index()]) {
            (Some(_), _) => true,
            (None, VregLoc::Mem) => true,
            (None, VregLoc::Reg(_)) => false,
        }
    }
}

/// Runs the coloring algorithm.
///
/// `liveness` is needed for split boundary-cost estimation; `split_enabled`
/// turns live-range splitting on.
pub fn color(
    ctx: &PriorityCtx<'_>,
    cfg: &Cfg,
    liveness: &Liveness,
    split_enabled: bool,
) -> Assignment {
    color_with(
        ctx,
        cfg,
        liveness,
        split_enabled,
        &mut CompileScratch::default(),
    )
}

/// [`color`] running its transient tables (forbid masks, occupancy,
/// block-index rows, done flags) out of the caller's [`CompileScratch`].
/// The returned [`Assignment`] owns only what escapes; everything pooled
/// is handed back before returning.
pub fn color_with(
    ctx: &PriorityCtx<'_>,
    cfg: &Cfg,
    liveness: &Liveness,
    split_enabled: bool,
    scratch: &mut CompileScratch,
) -> Assignment {
    let nv = ctx.ranges.ranges.len();
    let nb = cfg.num_blocks();
    let mut whole = vec![VregLoc::Mem; nv];
    let mut split: Vec<Option<HashMap<usize, PReg>>> = vec![None; nv];
    let mut used = RegMask::EMPTY;
    // Precise interference forbiddance for whole-range assignments.
    let mut forbidden = scratch.masks.take(nv, RegMask::EMPTY);
    // Block-granular occupancy: registers taken in a block by whole-range
    // assignments / by split regions.
    let mut occ_whole = scratch.masks.take(nb, RegMask::EMPTY);
    let mut occ_split = scratch.masks.take(nb, RegMask::EMPTY);

    // Incremental per-range forbid masks from split occupancy. A split
    // touches a handful of blocks; only ranges containing those blocks can
    // be affected, so the block -> candidate-ranges index lets a split
    // update exactly those masks instead of every heap pop re-ORing
    // `occ_split` over its whole range.
    let mut ranges_in_block: Vec<Vec<u32>> = scratch.take_index_rows(nb);
    for lr in &ctx.ranges.ranges {
        if !lr.is_candidate() {
            continue;
        }
        for b in lr.blocks.iter() {
            ranges_in_block[b].push(lr.vreg.index() as u32);
        }
    }
    let mut split_forbid = scratch.masks.take(nv, RegMask::EMPTY);

    // Memoized static priority terms (see `PriorityCache`).
    let mut cache = PriorityCache::new(ctx);

    // Max-heap of (density, vreg); keys may go stale, so they are
    // re-validated on pop.
    let mut heap: std::collections::BinaryHeap<(Score, usize)> =
        std::collections::BinaryHeap::new();
    for lr in &ctx.ranges.ranges {
        if !lr.is_candidate() {
            continue;
        }
        let forbid = forbidden[lr.vreg.index()] | split_forbid[lr.vreg.index()];
        if let Some((_, d)) = cache.best(ctx, lr, forbid, used) {
            heap.push((Score(d), lr.vreg.index()));
        }
    }

    let mut done = std::mem::take(&mut scratch.flags);
    done.clear();
    done.resize(nv, false);
    while let Some((Score(d), vi)) = heap.pop() {
        if done[vi] {
            continue;
        }
        let lr = &ctx.ranges.ranges[vi];
        let forbid = forbidden[vi] | split_forbid[vi];
        match cache.best(ctx, lr, forbid, used) {
            Some((r, d2)) => {
                if d2 < d - 1e-9 {
                    // Stale key (a neighbour took our best register);
                    // re-queue with the current value.
                    heap.push((Score(d2), vi));
                    continue;
                }
                done[vi] = true;
                if d2 < -1e-9 {
                    // Strictly unprofitable as a whole range (a zero-net
                    // range costs nothing in a register, and its register —
                    // once saved — is free for every later range); maybe a
                    // sub-region still pays.
                    if split_enabled {
                        try_split(
                            ctx,
                            cfg,
                            liveness,
                            vi,
                            &mut split,
                            &mut occ_whole,
                            &mut occ_split,
                            &mut used,
                            &ranges_in_block,
                            &mut split_forbid,
                        );
                    }
                    emit_decision(ctx, vi, &split, None, d2);
                    continue;
                }
                whole[vi] = VregLoc::Reg(r);
                used.insert(r);
                for n in ctx.ranges.adj[vi].iter() {
                    forbidden[n].insert(r);
                }
                for b in lr.blocks.iter() {
                    occ_whole[b].insert(r);
                }
                emit_decision(ctx, vi, &split, Some(r), d2);
            }
            None => {
                // Every register is forbidden over the whole range.
                done[vi] = true;
                if split_enabled {
                    try_split(
                        ctx,
                        cfg,
                        liveness,
                        vi,
                        &mut split,
                        &mut occ_whole,
                        &mut occ_split,
                        &mut used,
                        &ranges_in_block,
                        &mut split_forbid,
                    );
                }
                emit_decision(ctx, vi, &split, None, d);
            }
        }
    }

    // Candidates that never reached the heap (no register was ever
    // available, or the initial density had no viable register) still get a
    // decision record, so every candidate vreg appears exactly once.
    for lr in &ctx.ranges.ranges {
        if lr.is_candidate() && !done[lr.vreg.index()] {
            emit_decision(ctx, lr.vreg.index(), &split, None, f64::NEG_INFINITY);
        }
    }

    scratch.flags = done;
    scratch.masks.give(forbidden);
    scratch.masks.give(occ_whole);
    scratch.masks.give(occ_split);
    scratch.masks.give(split_forbid);
    scratch.give_index_rows(ranges_in_block);

    Assignment { whole, split, used }
}

/// Records one `alloc.decision` event: the final location class of a
/// candidate vreg and the priority density that decided it. `priority` is
/// `-inf` (rendered as JSON `null`) when the range never had a viable
/// register to price.
fn emit_decision(
    ctx: &PriorityCtx<'_>,
    vi: usize,
    split: &[Option<HashMap<usize, PReg>>],
    reg: Option<PReg>,
    priority: f64,
) {
    ipra_obs::event("alloc.decision", || {
        use ipra_obs::TraceValue as V;
        let kind = match (reg, &split[vi]) {
            (Some(r), _) => match ctx.target.regs.class(r) {
                Some(RegClass::CalleeSaved) => "callee_saved",
                _ => "caller_saved",
            },
            (None, Some(_)) => "split",
            (None, None) => "mem",
        };
        let mut fields = vec![
            ("vreg", V::Int(vi as i64)),
            ("kind", V::Str(kind.into())),
            ("priority", V::Float(priority)),
        ];
        if let Some(r) = reg {
            fields.push(("reg", V::Str(ctx.target.regs.name(r).to_string())));
        }
        fields
    });
}

/// Attempts to give connected, profitable sub-regions of `vi`'s live range
/// a register each; leaves the rest in memory.
#[allow(clippy::too_many_arguments)]
fn try_split(
    ctx: &PriorityCtx<'_>,
    cfg: &Cfg,
    liveness: &Liveness,
    vi: usize,
    split: &mut [Option<HashMap<usize, PReg>>],
    occ_whole: &mut [RegMask],
    occ_split: &mut [RegMask],
    used: &mut RegMask,
    ranges_in_block: &[Vec<u32>],
    split_forbid: &mut [RegMask],
) {
    let lr = &ctx.ranges.ranges[vi];
    if lr.size() < 2 {
        return;
    }
    let c = &ctx.target.cost;
    let save_restore = (c.load + c.store) as f64;

    // Per-block weighted reference gain for this vreg.
    let gain_of = per_block_gain(ctx, vi);

    // Calls spanned by the range, by block.
    let mut call_cost_in_block: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
    for &site in &lr.spans_calls {
        let s = &ctx.ranges.call_sites[site as usize];
        call_cost_in_block
            .entry(s.loc.block.index())
            .or_default()
            .push((site as usize, s.weight));
    }

    let mut remaining = lr.blocks.clone();
    let mut map: HashMap<usize, PReg> = HashMap::new();

    loop {
        let mut best: Option<(PReg, Vec<usize>, f64)> = None;
        for &r in ctx.target.regs.allocatable() {
            // Blocks where r is free, within the remaining range.
            let mut free = Vec::new();
            for b in remaining.iter() {
                if !occ_whole[b].contains(r) && !occ_split[b].contains(r) {
                    free.push(b);
                }
            }
            // Seed at the highest-gain referenced free block.
            let Some(&seed) = free
                .iter()
                .filter(|&&b| gain_of.get(&b).copied().unwrap_or(0.0) > 0.0)
                .max_by(|&&a, &&b| gain_of[&a].total_cmp(&gain_of[&b]))
            else {
                continue;
            };
            // Grow a connected region inside the free set.
            let free_set: std::collections::HashSet<usize> = free.iter().copied().collect();
            let mut region = vec![seed];
            let mut in_region: std::collections::HashSet<usize> = [seed].into();
            let mut work = vec![seed];
            while let Some(b) = work.pop() {
                let bid = BlockId(b as u32);
                for &n in cfg.succs(bid).iter().chain(cfg.preds(bid)) {
                    let ni = n.index();
                    if free_set.contains(&ni) && in_region.insert(ni) {
                        region.push(ni);
                        work.push(ni);
                    }
                }
            }

            // Estimate the region's net value.
            let mut net = 0.0;
            for &b in &region {
                net += gain_of.get(&b).copied().unwrap_or(0.0);
                if let Some(calls) = call_cost_in_block.get(&b) {
                    for &(site, w) in calls {
                        if ctx.site_clobbers[site].contains(r) {
                            net -= w * save_restore;
                        }
                    }
                }
            }
            // Boundary transfers: loads entering, stores leaving, priced at
            // the block's real execution weight (a transfer on a loop-edge
            // block executes per iteration).
            for &b in &region {
                let bid = BlockId(b as u32);
                let w = ctx.weights.weight(bid).max(1.0);
                if liveness.live_in[b].contains(vi)
                    && cfg
                        .preds(bid)
                        .iter()
                        .any(|p| !in_region.contains(&p.index()))
                {
                    net -= w * c.load as f64;
                }
                if cfg.succs(bid).iter().any(|s| {
                    liveness.live_in[s.index()].contains(vi) && !in_region.contains(&s.index())
                }) {
                    net -= w * c.store as f64;
                }
            }
            if ctx.charge_callee_saved_entry
                && ctx.target.regs.class(r) == Some(RegClass::CalleeSaved)
                && !used.contains(r)
            {
                net -= ctx.entry_weight * save_restore;
            }

            if net > 1e-9 && best.as_ref().is_none_or(|(_, _, bn)| net > *bn) {
                best = Some((r, region, net));
            }
        }

        let Some((r, region, _)) = best else { break };
        for &b in &region {
            map.insert(b, r);
            occ_split[b].insert(r);
            remaining.remove(b);
            // Invalidate only the ranges this split actually touches.
            for &v in &ranges_in_block[b] {
                split_forbid[v as usize].insert(r);
            }
        }
        used.insert(r);
        if remaining.is_empty() {
            break;
        }
    }

    if !map.is_empty() {
        split[vi] = Some(map);
    }
}

/// Weighted memory-traffic gain per block for one vreg: loads avoided for
/// uses, stores avoided for defs, from the range's per-block detail.
fn per_block_gain(ctx: &PriorityCtx<'_>, vi: usize) -> HashMap<usize, f64> {
    let lr = &ctx.ranges.ranges[vi];
    let c = &ctx.target.cost;
    lr.block_refs
        .iter()
        .map(|(&b, &(wu, wd))| (b as usize, wu * c.load as f64 + wd * c.store as f64))
        .collect()
}

/// Max-heap key over f64 (total order).
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) struct Score(pub f64);

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
