//! Reusable allocator scratch buffers.
//!
//! Each function compiled allocates the same shapes of transient storage:
//! per-block `RegMask` vectors (occupancy, shrink-wrap dataflow),
//! per-vreg flag vectors, range-index rows, a liveness bitset, and the
//! parallel-move resolver's worklists. [`CompileScratch`] owns one of
//! each and hands them out `clear()`ed instead of freshly allocated, so a
//! worker compiling its hundredth function reuses the buffers of its
//! first. [`ScratchPool`] holds one `CompileScratch` per wave worker and
//! recycles them across waves and across compiles of the same
//! [`crate::Pipeline`].
//!
//! Reuse is invisible to the output: every `take_*` returns buffers in
//! the exact state a fresh allocation would have, so machine code is
//! bit-identical whether scratch is fresh or recycled (the differential
//! oracle checks this).

use std::collections::HashSet;
use std::sync::Mutex;

use ipra_cfg::BitSet;
use ipra_machine::{PReg, RegMask};

/// A pool of `Vec<RegMask>` buffers.
///
/// The allocator's hottest transient shape: occupancy vectors, avail/save
/// dataflow vectors in shrink-wrapping, per-vreg forbidden masks. `take`
/// pops a retired buffer (or starts an empty one) and sizes it to `n`
/// copies of `fill`; `give` retires a buffer for the next `take`.
#[derive(Debug, Default)]
pub struct MaskPool {
    free: Vec<Vec<RegMask>>,
}

impl MaskPool {
    /// A buffer of exactly `n` elements, all equal to `fill`.
    pub fn take(&mut self, n: usize, fill: RegMask) -> Vec<RegMask> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        v.resize(n, fill);
        v
    }

    /// Returns a buffer to the pool.
    pub fn give(&mut self, v: Vec<RegMask>) {
        self.free.push(v);
    }
}

/// Worklists reused by the parallel-move resolver
/// ([`crate::parmove::resolve_parallel_moves_into`]). A lowering pass
/// resolves one move set per call site plus one per prologue; reusing
/// these two collections removes that per-site churn.
#[derive(Debug, Default)]
pub struct MoveScratch {
    /// Register-to-register moves still waiting to be emitted.
    pub pending: Vec<(PReg, PReg)>,
    /// Destination-uniqueness check set.
    pub seen: HashSet<PReg>,
}

/// Per-worker scratch for one in-flight function compilation.
///
/// Owned by a [`ScratchPool`]; the wave scheduler lends one to each
/// worker thread, and the worker threads it through ranges → color →
/// shrink-wrap → lower. Buffers that escape into results (`SavePlan`
/// placement maps, `Assignment` vectors) are never pooled — only
/// genuinely transient storage lives here.
#[derive(Debug, Default)]
pub struct CompileScratch {
    /// Pool of per-block / per-vreg `RegMask` vectors.
    pub masks: MaskPool,
    /// Running liveness set for range construction.
    pub live_now: BitSet,
    /// Parallel-move resolver worklists.
    pub moves: MoveScratch,
    /// Per-vreg boolean flags (coloring's `done` vector).
    pub flags: Vec<bool>,
    /// Per-block index rows (coloring's block → live-range lists).
    index_rows: Vec<Vec<u32>>,
}

impl CompileScratch {
    /// A row-per-block table of `n` empty `u32` rows, reusing both the
    /// outer vector and every inner row's capacity.
    pub fn take_index_rows(&mut self, n: usize) -> Vec<Vec<u32>> {
        let mut rows = std::mem::take(&mut self.index_rows);
        for row in rows.iter_mut() {
            row.clear();
        }
        rows.truncate(n);
        rows.resize_with(n, Vec::new);
        rows
    }

    /// Returns an index-row table to the scratch.
    pub fn give_index_rows(&mut self, rows: Vec<Vec<u32>>) {
        self.index_rows = rows;
    }
}

/// A shared pool of [`CompileScratch`] instances, one per concurrently
/// active worker. Lives on the [`crate::Pipeline`], so scratch survives
/// not just across functions in one compile but across whole recompiles.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<CompileScratch>>,
}

impl ScratchPool {
    /// Borrows a scratch instance (creating one if the pool is dry).
    /// Return it with [`ScratchPool::release`] when the worker finishes.
    pub fn acquire(&self) -> CompileScratch {
        self.free.lock().unwrap().pop().unwrap_or_default()
    }

    /// Returns a scratch instance for the next worker.
    pub fn release(&self, s: CompileScratch) {
        self.free.lock().unwrap().push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_pool_recycles_and_resizes() {
        let mut pool = MaskPool::default();
        let mut v = pool.take(3, RegMask::EMPTY);
        assert_eq!(v, vec![RegMask::EMPTY; 3]);
        v[1] = RegMask(0b101);
        pool.give(v);
        let v2 = pool.take(5, RegMask(7));
        assert_eq!(v2, vec![RegMask(7); 5], "recycled buffer is re-initialized");
        pool.give(v2);
        let v3 = pool.take(0, RegMask::EMPTY);
        assert!(v3.is_empty());
    }

    #[test]
    fn index_rows_come_back_empty_and_sized() {
        let mut s = CompileScratch::default();
        let mut rows = s.take_index_rows(4);
        rows[0].extend([1, 2, 3]);
        rows[3].push(9);
        s.give_index_rows(rows);
        let rows2 = s.take_index_rows(2);
        assert_eq!(rows2, vec![Vec::<u32>::new(); 2]);
        s.give_index_rows(rows2);
        let rows3 = s.take_index_rows(6);
        assert_eq!(rows3, vec![Vec::<u32>::new(); 6]);
    }

    #[test]
    fn scratch_pool_round_trips() {
        let pool = ScratchPool::default();
        let mut a = pool.acquire();
        a.flags.push(true);
        pool.release(a);
        let b = pool.acquire();
        // Contents are the caller's responsibility; identity round-trips.
        assert_eq!(b.flags, vec![true]);
        pool.release(b);
    }
}
