//! Lowering: IR + allocation → machine code.
//!
//! Makes every cost of the paper explicit as instructions: home-slot loads
//! and stores for memory-resident variables, callee-saved saves/restores at
//! their planned positions, caller-saved saves/restores around calls,
//! parameter moves (through a parallel-move resolver), stack-argument
//! traffic, split-range boundary transfers and the link-register protocol.

use std::collections::HashMap;

use ipra_ir::{
    Address, BlockId, Callee, EntityVec, Function, Inst, InstLoc, Module, Operand, SlotId,
    Terminator, Vreg,
};
use ipra_machine::{
    FrameSlot, FrameSlotId, MAddress, MBlock, MCallee, MFunction, MInst, MOperand, MTerminator,
    MemClass, PReg, SlotPurpose, Target,
};

use crate::alloc::FuncArtifacts;
use crate::color::VregLoc;
use crate::parmove::{resolve_parallel_moves_into, MoveSrc};
use crate::scratch::{CompileScratch, MoveScratch};
use crate::summary::ParamLoc;

struct Lowerer<'a> {
    module: &'a Module,
    func: &'a Function,
    target: &'a Target,
    art: &'a FuncArtifacts,
    frame: EntityVec<FrameSlotId, FrameSlot>,
    home: Vec<Option<FrameSlotId>>,
    array_slots: HashMap<SlotId, FrameSlotId>,
    local_save_slots: HashMap<PReg, FrameSlotId>,
    call_save_slots: HashMap<PReg, FrameSlotId>,
    ra_slot: Option<FrameSlotId>,
    call_plan_at: HashMap<InstLoc, usize>,
    is_leaf: bool,
    /// Split boundary ops per block.
    boundary_loads: Vec<Vec<(Vreg, PReg)>>,
    boundary_stores: Vec<Vec<(Vreg, PReg)>>,
}

/// Lowers one function.
pub fn lower_function(
    module: &Module,
    func: &Function,
    target: &Target,
    art: &FuncArtifacts,
) -> MFunction {
    lower_function_with(module, func, target, art, &mut CompileScratch::default())
}

/// [`lower_function`] resolving its parallel moves out of the caller's
/// [`CompileScratch`] worklists.
pub fn lower_function_with(
    module: &Module,
    func: &Function,
    target: &Target,
    art: &FuncArtifacts,
    scratch: &mut CompileScratch,
) -> MFunction {
    let mut lw = Lowerer::new(module, func, target, art);
    lw.plan_boundaries();
    lw.run(&mut scratch.moves)
}

impl<'a> Lowerer<'a> {
    fn new(
        module: &'a Module,
        func: &'a Function,
        target: &'a Target,
        art: &'a FuncArtifacts,
    ) -> Self {
        let mut frame = EntityVec::new();
        let nv = func.num_vregs();

        // Home slots for memory-resident (or split) vregs.
        let mut home = vec![None; nv];
        for (v, slot) in home.iter_mut().enumerate() {
            let vr = Vreg(v as u32);
            if art.alloc.assignment.needs_home(vr) && art.ranges.ranges[v].num_refs > 0 {
                *slot = Some(
                    frame.push(FrameSlot {
                        size: 1,
                        purpose: SlotPurpose::Home,
                        label: func
                            .vreg_name(vr)
                            .map(|n| format!("home_{n}"))
                            .unwrap_or_else(|| format!("home_{vr}")),
                    }),
                );
            }
        }

        // Local arrays.
        //
        // Determinism: the slot maps below are HashMaps, but they are
        // populated from deterministic sources (entity-id order, RegMask
        // iteration, call-plan order) and only ever read by keyed lookup —
        // frame-slot numbering comes from the insertion loops, never from
        // map iteration.
        let mut array_slots = HashMap::new();
        for (id, s) in func.slots.iter() {
            array_slots.insert(
                id,
                frame.push(FrameSlot {
                    size: s.size,
                    purpose: SlotPurpose::Array,
                    label: s.name.clone(),
                }),
            );
        }

        // Save areas.
        let mut local_save_slots = HashMap::new();
        for r in art.alloc.locally_saved.iter() {
            local_save_slots.insert(
                r,
                frame.push(FrameSlot {
                    size: 1,
                    purpose: SlotPurpose::Save,
                    label: format!("save_{}", target.regs.name(r)),
                }),
            );
        }
        let mut call_save_slots = HashMap::new();
        for p in &art.alloc.call_plans {
            for r in p.save_around.iter() {
                call_save_slots.entry(r).or_insert_with(|| {
                    frame.push(FrameSlot {
                        size: 1,
                        purpose: SlotPurpose::Save,
                        label: format!("csave_{}", target.regs.name(r)),
                    })
                });
            }
        }

        let is_leaf = func.is_leaf();
        let ra_slot = if is_leaf {
            None
        } else {
            Some(frame.push(FrameSlot {
                size: 1,
                purpose: SlotPurpose::Save,
                label: "save_ra".into(),
            }))
        };

        let call_plan_at = art
            .alloc
            .call_plans
            .iter()
            .enumerate()
            .map(|(i, p)| (p.loc, i))
            .collect();

        let nb = func.num_blocks();
        Lowerer {
            module,
            func,
            target,
            art,
            frame,
            home,
            array_slots,
            local_save_slots,
            call_save_slots,
            ra_slot,
            call_plan_at,
            is_leaf,
            boundary_loads: vec![Vec::new(); nb],
            boundary_stores: vec![Vec::new(); nb],
        }
    }

    fn loc(&self, v: Vreg, b: BlockId) -> VregLoc {
        self.art.alloc.assignment.loc(v, b)
    }

    fn home_addr(&self, v: Vreg) -> MAddress {
        MAddress::slot(self.home[v.index()].expect("memory vreg has a home slot"))
    }

    /// Split-range boundary transfers (see `color`): a register block loads
    /// the home slot at entry when some predecessor holds the value
    /// elsewhere; it stores at exit when a successor will read the home
    /// slot (directly or through its own boundary load).
    fn plan_boundaries(&mut self) {
        let cfg = self.art.cfg();
        let live = self.art.liveness();
        for v in 0..self.func.num_vregs() {
            let vr = Vreg(v as u32);
            if !self.art.alloc.assignment.is_split(vr) {
                continue;
            }
            // Pass 1: loads.
            let mut loads = vec![false; cfg.num_blocks()];
            for &b in &cfg.rpo {
                let bi = b.index();
                if let VregLoc::Reg(r) = self.loc(vr, b) {
                    if live.live_in[bi].contains(v)
                        && cfg
                            .preds(b)
                            .iter()
                            .any(|&p| self.loc(vr, p) != VregLoc::Reg(r))
                    {
                        loads[bi] = true;
                        self.boundary_loads[bi].push((vr, r));
                    }
                }
            }
            // Pass 2: stores.
            for &b in &cfg.rpo {
                let bi = b.index();
                if let VregLoc::Reg(r) = self.loc(vr, b) {
                    let must_store = cfg.succs(b).iter().any(|&s| {
                        live.live_in[s.index()].contains(v)
                            && (self.loc(vr, s) == VregLoc::Mem || loads[s.index()])
                    });
                    if must_store {
                        self.boundary_stores[bi].push((vr, r));
                    }
                }
            }
        }
    }

    /// Materializes an operand for reading inside `b`; memory values load
    /// into `scratch`.
    fn operand(&self, o: Operand, b: BlockId, scratch: PReg, out: &mut Vec<MInst>) -> MOperand {
        match o {
            Operand::Imm(i) => MOperand::Imm(i),
            Operand::Reg(v) => match self.loc(v, b) {
                VregLoc::Reg(r) => MOperand::Reg(r),
                VregLoc::Mem => {
                    out.push(MInst::Load {
                        dst: scratch,
                        addr: self.home_addr(v),
                        class: MemClass::ScalarHome,
                    });
                    MOperand::Reg(scratch)
                }
            },
        }
    }

    /// Address lowering; the index, when memory-resident, loads into
    /// `scratch`.
    fn addr(
        &self,
        a: Address,
        b: BlockId,
        scratch: PReg,
        out: &mut Vec<MInst>,
    ) -> (MAddress, MemClass) {
        match a {
            Address::Global { global, index } => {
                let idx = self.operand(index, b, scratch, out);
                let class = if self.module.globals[global].is_scalar() {
                    MemClass::ScalarHome
                } else {
                    MemClass::Data
                };
                (MAddress::Global { global, index: idx }, class)
            }
            Address::Stack { slot, index } => {
                let idx = self.operand(index, b, scratch, out);
                (
                    MAddress::Frame {
                        slot: self.array_slots[&slot],
                        index: idx,
                    },
                    MemClass::Data,
                )
            }
        }
    }

    /// Where a definition should be computed, plus the store to emit
    /// afterwards for memory-resident destinations.
    fn def_target(&self, v: Vreg, b: BlockId, scratch: PReg) -> (PReg, Option<MInst>) {
        match self.loc(v, b) {
            VregLoc::Reg(r) => (r, None),
            VregLoc::Mem => (
                scratch,
                Some(MInst::Store {
                    src: MOperand::Reg(scratch),
                    addr: self.home_addr(v),
                    class: MemClass::ScalarHome,
                }),
            ),
        }
    }

    fn prologue(&self, out: &mut Vec<MInst>, ms: &mut MoveScratch) {
        let [s0, _s1] = self.target.regs.scratch();
        let entry = self.func.entry;
        // 1. Planned saves at the entry block are emitted by the caller of
        //    this function (uniform per-block save handling); here we add
        //    the link register and parameter placement.
        if let Some(slot) = self.ra_slot {
            out.push(MInst::Store {
                src: MOperand::Reg(self.target.regs.ra()),
                addr: MAddress::slot(slot),
                class: MemClass::SaveRestore,
            });
        }
        // 2. Parameters going to memory: store their arrival register.
        let mut reg_moves: Vec<(PReg, MoveSrc)> = Vec::new();
        let mut incoming_loads: Vec<MInst> = Vec::new();
        let mut split_fixups: Vec<MInst> = Vec::new();
        for (i, &p) in self.func.params.iter().enumerate() {
            // Dead-on-arrival parameters (unreferenced, or overwritten
            // before any read) need no placement under any convention.
            if self.art.ranges.ranges[p.index()].num_refs == 0
                || !self.art.liveness().live_in[entry.index()].contains(p.index())
            {
                continue;
            }
            let arrival = self.art.alloc.param_locs[i];
            let target_loc = self.loc(p, entry);
            match (arrival, target_loc) {
                (ParamLoc::Reg(ar), VregLoc::Reg(r)) => {
                    if ar != r {
                        reg_moves.push((r, MoveSrc::Reg(ar)));
                    }
                }
                (ParamLoc::Reg(ar), VregLoc::Mem) => {
                    out.push(MInst::Store {
                        src: MOperand::Reg(ar),
                        addr: self.home_addr(p),
                        class: MemClass::ScalarHome,
                    });
                }
                (ParamLoc::Stack(k), VregLoc::Reg(r)) => {
                    incoming_loads.push(MInst::Load {
                        dst: r,
                        addr: MAddress::Incoming(k),
                        class: MemClass::ScalarHome,
                    });
                }
                (ParamLoc::Stack(k), VregLoc::Mem) => {
                    incoming_loads.push(MInst::Load {
                        dst: s0,
                        addr: MAddress::Incoming(k),
                        class: MemClass::ScalarHome,
                    });
                    incoming_loads.push(MInst::Store {
                        src: MOperand::Reg(s0),
                        addr: self.home_addr(p),
                        class: MemClass::ScalarHome,
                    });
                }
                (ParamLoc::Ignored, _) => {}
            }
            // Split parameters must have a current home slot from the start
            // (their register region may be re-entered through a back edge).
            if self.art.alloc.assignment.is_split(p) {
                if let VregLoc::Reg(r) = target_loc {
                    split_fixups.push(MInst::Store {
                        src: MOperand::Reg(r),
                        addr: self.home_addr(p),
                        class: MemClass::Spill,
                    });
                }
            }
        }
        resolve_parallel_moves_into(&reg_moves, s0, ms, out);
        out.extend(incoming_loads);
        out.extend(split_fixups);
    }

    fn lower_call(
        &self,
        loc: InstLoc,
        callee: &Callee,
        args: &[Operand],
        dst: Option<Vreg>,
        out: &mut Vec<MInst>,
        ms: &mut MoveScratch,
    ) {
        let [s0, s1] = self.target.regs.scratch();
        let b = loc.block;
        let plan = &self.art.alloc.call_plans[self.call_plan_at[&loc]];

        // 1. Save live values the call sequence may destroy.
        for r in plan.save_around.iter() {
            out.push(MInst::Store {
                src: MOperand::Reg(r),
                addr: MAddress::slot(self.call_save_slots[&r]),
                class: MemClass::SaveRestore,
            });
        }

        // 2. Stack arguments into the outgoing area.
        for (j, arg) in args.iter().enumerate() {
            if let Some(ParamLoc::Stack(k)) = plan.arg_locs.get(j) {
                let val = self.operand(*arg, b, s0, out);
                out.push(MInst::Store {
                    src: val,
                    addr: MAddress::Outgoing(*k),
                    class: MemClass::ScalarHome,
                });
            }
        }

        // 3. Capture an indirect target in s1 so argument moves cannot
        //    clobber it.
        let m_callee = match callee {
            Callee::Direct(f) => MCallee::Direct(*f),
            Callee::Indirect(t) => {
                let val = self.operand(*t, b, s1, out);
                match val {
                    MOperand::Reg(r) if r != s1 => {
                        out.push(MInst::Copy { dst: s1, src: val });
                        MCallee::Indirect(MOperand::Reg(s1))
                    }
                    other => MCallee::Indirect(other),
                }
            }
        };

        // 4. Register arguments as one parallel move.
        let mut moves: Vec<(PReg, MoveSrc)> = Vec::new();
        for (j, arg) in args.iter().enumerate() {
            if let Some(ParamLoc::Reg(r)) = plan.arg_locs.get(j) {
                let src = match arg {
                    Operand::Imm(i) => MoveSrc::Imm(*i),
                    Operand::Reg(v) => match self.loc(*v, b) {
                        VregLoc::Reg(vr) => MoveSrc::Reg(vr),
                        VregLoc::Mem => MoveSrc::Mem(self.home_addr(*v), MemClass::ScalarHome),
                    },
                };
                moves.push((*r, src));
            }
        }
        resolve_parallel_moves_into(&moves, s0, ms, out);

        // 5. The call itself.
        out.push(MInst::Call {
            callee: m_callee,
            num_stack_args: plan.num_stack_args,
        });

        // 6. Return value.
        if let Some(d) = dst {
            let rv = self.target.regs.ret_reg();
            match self.loc(d, b) {
                VregLoc::Reg(r) => {
                    debug_assert!(
                        !plan.save_around.contains(r),
                        "call result register cannot be a saved-around register"
                    );
                    out.push(MInst::Copy {
                        dst: r,
                        src: MOperand::Reg(rv),
                    });
                }
                VregLoc::Mem => out.push(MInst::Store {
                    src: MOperand::Reg(rv),
                    addr: self.home_addr(d),
                    class: MemClass::ScalarHome,
                }),
            }
        }

        // 7. Restore saved-around values.
        for r in plan.save_around.iter() {
            out.push(MInst::Load {
                dst: r,
                addr: MAddress::slot(self.call_save_slots[&r]),
                class: MemClass::SaveRestore,
            });
        }
    }

    fn lower_inst(&self, loc: InstLoc, inst: &Inst, out: &mut Vec<MInst>, ms: &mut MoveScratch) {
        let [s0, s1] = self.target.regs.scratch();
        let b = loc.block;
        match inst {
            Inst::Copy { dst, src } => {
                let val = self.operand(*src, b, s0, out);
                match self.loc(*dst, b) {
                    VregLoc::Reg(r) => out.push(MInst::Copy { dst: r, src: val }),
                    VregLoc::Mem => out.push(MInst::Store {
                        src: val,
                        addr: self.home_addr(*dst),
                        class: MemClass::ScalarHome,
                    }),
                }
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let l = self.operand(*lhs, b, s0, out);
                let r = self.operand(*rhs, b, s1, out);
                let (t, post) = self.def_target(*dst, b, s0);
                out.push(MInst::Bin {
                    op: *op,
                    dst: t,
                    lhs: l,
                    rhs: r,
                });
                out.extend(post);
            }
            Inst::Un { op, dst, src } => {
                let s = self.operand(*src, b, s1, out);
                let (t, post) = self.def_target(*dst, b, s0);
                out.push(MInst::Un {
                    op: *op,
                    dst: t,
                    src: s,
                });
                out.extend(post);
            }
            Inst::Load { dst, addr } => {
                let (a, class) = self.addr(*addr, b, s1, out);
                let (t, post) = self.def_target(*dst, b, s0);
                out.push(MInst::Load {
                    dst: t,
                    addr: a,
                    class,
                });
                out.extend(post);
            }
            Inst::Store { src, addr } => {
                let val = self.operand(*src, b, s0, out);
                let (a, class) = self.addr(*addr, b, s1, out);
                out.push(MInst::Store {
                    src: val,
                    addr: a,
                    class,
                });
            }
            Inst::Call { callee, args, dst } => self.lower_call(loc, callee, args, *dst, out, ms),
            Inst::FuncAddr { dst, func } => {
                let (t, post) = self.def_target(*dst, b, s0);
                out.push(MInst::FuncAddr {
                    dst: t,
                    func: *func,
                });
                out.extend(post);
            }
            Inst::Print { arg } => {
                let val = self.operand(*arg, b, s0, out);
                out.push(MInst::Print { arg: val });
            }
        }
    }

    fn run(self, ms: &mut MoveScratch) -> MFunction {
        let [s0, _s1] = self.target.regs.scratch();
        let rv = self.target.regs.ret_reg();
        let nb = self.func.num_blocks();
        let mut blocks: Vec<MBlock> = Vec::with_capacity(nb);

        for (bid, block) in self.func.blocks.iter() {
            let bi = bid.index();
            let mut out: Vec<MInst> = Vec::new();

            // Planned callee-saved saves at block entry.
            for r in self.art.alloc.save_plan.save_at[bi].iter() {
                out.push(MInst::Store {
                    src: MOperand::Reg(r),
                    addr: MAddress::slot(self.local_save_slots[&r]),
                    class: MemClass::SaveRestore,
                });
            }
            if bid == self.func.entry {
                self.prologue(&mut out, ms);
            }
            // Split boundary loads.
            for &(v, r) in &self.boundary_loads[bi] {
                out.push(MInst::Load {
                    dst: r,
                    addr: self.home_addr(v),
                    class: MemClass::Spill,
                });
            }

            for (i, inst) in block.insts.iter().enumerate() {
                self.lower_inst(
                    InstLoc {
                        block: bid,
                        inst: i,
                    },
                    inst,
                    &mut out,
                    ms,
                );
            }

            // Split boundary stores.
            for &(v, r) in &self.boundary_stores[bi] {
                out.push(MInst::Store {
                    src: MOperand::Reg(r),
                    addr: self.home_addr(v),
                    class: MemClass::Spill,
                });
            }

            // Return value (before restores clobber registers).
            let restores = self.art.alloc.save_plan.restore_at[bi];
            let term = match &block.term {
                Terminator::Ret(val) => {
                    if let Some(v) = val {
                        let op = self.operand(*v, bid, rv, &mut out);
                        if op != MOperand::Reg(rv) {
                            out.push(MInst::Copy { dst: rv, src: op });
                        }
                    }
                    MTerminator::Ret
                }
                Terminator::Br(t) => MTerminator::Br(*t),
                Terminator::CondBr {
                    cond,
                    then_to,
                    else_to,
                } => {
                    let mut op = self.operand(*cond, bid, s0, &mut out);
                    // A restore below may clobber the condition register.
                    if let MOperand::Reg(r) = op {
                        if restores.contains(r) {
                            out.push(MInst::Copy { dst: s0, src: op });
                            op = MOperand::Reg(s0);
                        }
                    }
                    MTerminator::CondBr {
                        cond: op,
                        then_to: *then_to,
                        else_to: *else_to,
                    }
                }
            };

            // Planned restores at block exit.
            for r in restores.iter() {
                out.push(MInst::Load {
                    dst: r,
                    addr: MAddress::slot(self.local_save_slots[&r]),
                    class: MemClass::SaveRestore,
                });
            }
            // Link register restore at returns.
            if matches!(term, MTerminator::Ret) {
                if let Some(slot) = self.ra_slot {
                    out.push(MInst::Load {
                        dst: self.target.regs.ra(),
                        addr: MAddress::slot(slot),
                        class: MemClass::SaveRestore,
                    });
                }
            }
            blocks.push(MBlock { insts: out, term });
        }

        let max_outgoing = self
            .art
            .alloc
            .call_plans
            .iter()
            .map(|p| p.num_stack_args)
            .max()
            .unwrap_or(0);

        MFunction {
            name: self.func.name.clone(),
            entry: self.func.entry,
            blocks: blocks.into_iter().collect(),
            frame: self.frame,
            num_params: self.func.params.len(),
            max_outgoing,
            is_leaf: self.is_leaf,
        }
    }
}
