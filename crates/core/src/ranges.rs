//! Live ranges and the interference graph.
//!
//! Priority-based coloring allocates *live ranges* (Chow–Hennessy): the set
//! of basic blocks where a variable is live, together with its weighted
//! reference counts. Interference is computed precisely, per program point,
//! by a backward scan of every block. The same scan records, for every call
//! site, which ranges are live *across* the call — the quantity that drives
//! the per-(variable, register) cost terms of the inter-procedural
//! allocator.

use ipra_cfg::{BitSet, Cfg, Liveness, LoopInfo};
use ipra_ir::{BlockId, Callee, FuncId, Function, Inst, InstLoc, Vreg};

use crate::scratch::CompileScratch;

/// Execution-frequency weight per block, from static loop nesting or from a
/// measured profile (the paper's planned profile feedback).
#[derive(Clone, Debug)]
pub struct BlockWeights(Vec<f64>);

impl BlockWeights {
    /// Static estimate: `10^loop_depth` per block (the classic Uopt rule).
    pub fn from_loops(cfg: &Cfg, loops: &LoopInfo) -> Self {
        BlockWeights(
            (0..cfg.num_blocks())
                .map(|b| loops.weight(BlockId(b as u32)))
                .collect(),
        )
    }

    /// Measured profile: per-block execution counts normalized so the entry
    /// block weighs 1 per invocation. Falls back to the static estimate for
    /// functions that never ran — and for functions whose block count no
    /// longer matches the profile's (the inliner splices blocks in after a
    /// training run, making the stale counts meaningless for this body).
    pub fn from_profile(cfg: &Cfg, loops: &LoopInfo, counts: &[u64]) -> Self {
        if counts.len() != cfg.num_blocks() {
            return Self::from_loops(cfg, loops);
        }
        let invocations = counts[cfg.entry.index()];
        if invocations == 0 {
            return Self::from_loops(cfg, loops);
        }
        BlockWeights(
            counts
                .iter()
                .map(|&c| c as f64 / invocations as f64)
                .collect(),
        )
    }

    /// Weight of one block.
    pub fn weight(&self, b: BlockId) -> f64 {
        self.0[b.index()]
    }
}

/// A call site, with the loop weight of its block.
#[derive(Clone, Debug)]
pub struct CallSiteInfo {
    /// Location of the call instruction.
    pub loc: InstLoc,
    /// Static target; `None` for indirect calls.
    pub callee: Option<FuncId>,
    /// Execution-frequency weight of the containing block.
    pub weight: f64,
}

/// The live range of one virtual register.
#[derive(Clone, Debug)]
pub struct LiveRange {
    /// The register this range belongs to.
    pub vreg: Vreg,
    /// Blocks in the range (live or referenced).
    pub blocks: BitSet,
    /// Loop-weighted count of uses (reads).
    pub weighted_uses: f64,
    /// Loop-weighted count of definitions (writes).
    pub weighted_defs: f64,
    /// Static reference count (uses + defs).
    pub num_refs: u32,
    /// Indices (into [`RangeData::call_sites`]) of the calls this range is
    /// live across.
    pub spans_calls: Vec<u32>,
    /// Weighted `(uses, defs)` per block index — the per-block detail the
    /// splitter needs to seed and value sub-regions.
    pub block_refs: std::collections::HashMap<u32, (f64, f64)>,
}

impl LiveRange {
    /// Number of blocks in the range (the normalization term of the
    /// priority function).
    pub fn size(&self) -> usize {
        self.blocks.count()
    }

    /// Whether this range is ever referenced (unreferenced ranges are not
    /// allocation candidates).
    pub fn is_candidate(&self) -> bool {
        self.num_refs > 0
    }
}

/// Live ranges, interference and call sites for one function.
#[derive(Clone, Debug)]
pub struct RangeData {
    /// One live range per virtual register.
    pub ranges: Vec<LiveRange>,
    /// Interference adjacency: `adj[v]` holds every vreg whose value is live
    /// simultaneously with `v` at some program point.
    pub adj: Vec<BitSet>,
    /// All call sites, in block order.
    pub call_sites: Vec<CallSiteInfo>,
}

impl RangeData {
    /// Builds ranges and interference for `func`.
    pub fn build(func: &Function, cfg: &Cfg, live: &Liveness, weights: &BlockWeights) -> Self {
        Self::build_with(func, cfg, live, weights, &mut CompileScratch::default())
    }

    /// [`RangeData::build`] running its backward scan out of the caller's
    /// [`CompileScratch`] (the per-block working liveness set is the one
    /// transient buffer here; everything else escapes into the result).
    pub fn build_with(
        func: &Function,
        cfg: &Cfg,
        live: &Liveness,
        weights: &BlockWeights,
        scratch: &mut CompileScratch,
    ) -> Self {
        let nv = func.num_vregs();
        let nb = func.num_blocks();

        let mut ranges: Vec<LiveRange> = (0..nv)
            .map(|i| LiveRange {
                vreg: Vreg(i as u32),
                blocks: BitSet::new(nb),
                weighted_uses: 0.0,
                weighted_defs: 0.0,
                num_refs: 0,
                spans_calls: Vec::new(),
                block_refs: std::collections::HashMap::new(),
            })
            .collect();
        let mut adj: Vec<BitSet> = (0..nv).map(|_| BitSet::new(nv)).collect();

        // Collect call sites in forward block order so the backward scan can
        // index them.
        let mut call_sites = Vec::new();
        for (id, b) in func.blocks.iter() {
            if !cfg.is_reachable(id) {
                continue;
            }
            let w = weights.weight(id);
            for (i, inst) in b.insts.iter().enumerate() {
                if let Inst::Call { callee, .. } = inst {
                    call_sites.push(CallSiteInfo {
                        loc: InstLoc { block: id, inst: i },
                        callee: match callee {
                            Callee::Direct(f) => Some(*f),
                            Callee::Indirect(_) => None,
                        },
                        weight: w,
                    });
                }
            }
        }
        // Per-block index of the first call site.
        let mut site_index = std::collections::HashMap::new();
        for (i, c) in call_sites.iter().enumerate() {
            site_index.insert(c.loc, i as u32);
        }

        // Range membership: every block where the register is live or
        // referenced.
        for (id, _) in func.blocks.iter() {
            if !cfg.is_reachable(id) {
                continue;
            }
            let bi = id.index();
            for set in [
                &live.live_in[bi],
                &live.live_out[bi],
                &live.uevar[bi],
                &live.defs[bi],
            ] {
                for v in set.iter() {
                    ranges[v].blocks.insert(bi);
                }
            }
        }

        // Backward scan: precise interference, weighted counts, live-across
        // sets. Each def ORs the whole live set into its adjacency row in
        // one word-level pass — the reverse edges are filled in by a single
        // symmetrization sweep after the scan, instead of a per-def
        // bit-by-bit walk of `live_now`.
        for (id, b) in func.blocks.iter() {
            if !cfg.is_reachable(id) {
                continue;
            }
            let bi = id.index();
            let w = weights.weight(id);
            scratch.live_now.copy_from(&live.live_out[bi]);
            let live_now = &mut scratch.live_now;

            b.term.for_each_use(|v| {
                let r = &mut ranges[v.index()];
                r.weighted_uses += w;
                r.num_refs += 1;
                r.block_refs.entry(bi as u32).or_insert((0.0, 0.0)).0 += w;
                live_now.insert(v.index());
            });

            for (i, inst) in b.insts.iter().enumerate().rev() {
                if inst.is_call() {
                    let site = site_index[&InstLoc { block: id, inst: i }];
                    let dst = inst.def();
                    for v in live_now.iter() {
                        if dst.map(|d| d.index()) != Some(v) {
                            ranges[v].spans_calls.push(site);
                        }
                    }
                }
                if let Some(d) = inst.def() {
                    let di = d.index();
                    adj[di].union_with(live_now);
                    live_now.remove(di);
                    ranges[di].weighted_defs += w;
                    ranges[di].num_refs += 1;
                    ranges[di]
                        .block_refs
                        .entry(bi as u32)
                        .or_insert((0.0, 0.0))
                        .1 += w;
                }
                inst.for_each_use(|v| {
                    let r = &mut ranges[v.index()];
                    r.weighted_uses += w;
                    r.num_refs += 1;
                    r.block_refs.entry(bi as u32).or_insert((0.0, 0.0)).0 += w;
                    live_now.insert(v.index());
                });
            }
        }

        // Parameters are all defined simultaneously at entry; any pair live
        // at entry interferes (the instruction scan never sees their defs).
        let entry_in = &live.live_in[func.entry.index()];
        for (i, &p) in func.params.iter().enumerate() {
            if !entry_in.contains(p.index()) {
                continue;
            }
            // A parameter's arrival counts as its (free) definition, but its
            // home-store cost is real when it ends up in memory.
            let ew = weights.weight(func.entry);
            ranges[p.index()].weighted_defs += ew;
            ranges[p.index()]
                .block_refs
                .entry(func.entry.index() as u32)
                .or_insert((0.0, 0.0))
                .1 += ew;
            for &q in func.params.iter().skip(i + 1) {
                if entry_in.contains(q.index()) && p != q {
                    adj[p.index()].insert(q.index());
                    adj[q.index()].insert(p.index());
                }
            }
        }

        // Symmetrize: the scan recorded def -> live edges only. Rows of
        // vregs that were never defined while something was live are empty
        // and skipped with one word-level check.
        for v in 0..nv {
            adj[v].remove(v);
            if adj[v].is_empty() {
                continue;
            }
            let row = std::mem::replace(&mut adj[v], BitSet::new(0));
            for u in row.iter() {
                adj[u].insert(v);
            }
            adj[v] = row;
        }

        // De-duplicate spans_calls (a range can be rediscovered live across
        // the same call only once per scan, so they are already unique).
        RangeData {
            ranges,
            adj,
            call_sites,
        }
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: Vreg, b: Vreg) -> bool {
        self.adj[a.index()].contains(b.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FuncAnalyses;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::{BinOp, Module};

    fn analyze(func: &Function) -> (Cfg, RangeData) {
        let FuncAnalyses {
            cfg,
            loops,
            liveness,
            ..
        } = FuncAnalyses::compute(func);
        let weights = BlockWeights::from_loops(&cfg, &loops);
        let rd = RangeData::build(func, &cfg, &liveness, &weights);
        (cfg, rd)
    }

    #[test]
    fn sequential_temps_do_not_interfere() {
        let mut b = FunctionBuilder::new("f");
        let t1 = b.bin(BinOp::Add, 1, 2);
        b.print(t1);
        let t2 = b.bin(BinOp::Add, 3, 4);
        b.print(t2);
        b.ret(None);
        let f = b.build();
        let (_, rd) = analyze(&f);
        assert!(!rd.interferes(t1, t2), "t1 dead before t2 defined");
        assert_eq!(rd.ranges[t1.index()].num_refs, 2);
    }

    #[test]
    fn overlapping_values_interfere() {
        let mut b = FunctionBuilder::new("f");
        let x = b.copy(1);
        let y = b.copy(2);
        let s = b.bin(BinOp::Add, x, y);
        b.print(s);
        b.ret(None);
        let f = b.build();
        let (_, rd) = analyze(&f);
        assert!(rd.interferes(x, y));
        assert!(!rd.interferes(x, s), "x dies where s is defined");
        assert!(!rd.interferes(y, s), "y dies where s is defined");
    }

    #[test]
    fn interference_is_symmetric_and_irreflexive() {
        let mut b = FunctionBuilder::new("f");
        let x = b.copy(1);
        let y = b.copy(2);
        let z = b.bin(BinOp::Add, x, y);
        let w = b.bin(BinOp::Add, z, x);
        b.print(w);
        b.print(y);
        b.ret(None);
        let f = b.build();
        let (_, rd) = analyze(&f);
        for a in 0..f.num_vregs() {
            assert!(!rd.adj[a].contains(a), "no self interference");
            for bb in rd.adj[a].iter() {
                assert!(rd.adj[bb].contains(a), "symmetry {a} vs {bb}");
            }
        }
    }

    #[test]
    fn live_across_call_recorded() {
        let mut m = Module::new();
        let callee = m.declare_func("callee");
        let mut b = FunctionBuilder::new("caller");
        let x = b.copy(5);
        let r = b.call(callee, vec![]);
        let s = b.bin(BinOp::Add, x, r);
        b.print(s);
        b.ret(None);
        let f = b.build();
        let (_, rd) = analyze(&f);
        assert_eq!(rd.call_sites.len(), 1);
        assert_eq!(rd.call_sites[0].callee, Some(callee));
        assert_eq!(
            rd.ranges[x.index()].spans_calls,
            vec![0],
            "x survives the call"
        );
        assert!(
            rd.ranges[r.index()].spans_calls.is_empty(),
            "call result is not live across"
        );
    }

    #[test]
    fn call_argument_not_live_across() {
        let mut m = Module::new();
        let callee = m.declare_func("callee");
        let mut b = FunctionBuilder::new("caller");
        let x = b.copy(5);
        b.call_void(callee, vec![x.into()]);
        b.ret(None);
        let f = b.build();
        let (_, rd) = analyze(&f);
        assert!(
            rd.ranges[x.index()].spans_calls.is_empty(),
            "argument dies at the call; no save needed"
        );
    }

    #[test]
    fn loop_weights_scale_reference_counts() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i");
        let h = b.new_block();
        let body = b.new_block();
        let out = b.new_block();
        b.copy_to(i, 0);
        b.br(h);
        let c = b.bin(BinOp::Lt, i, 10);
        b.cond_br(c, body, out);
        b.switch_to(body);
        let ni = b.bin(BinOp::Add, i, 1);
        b.copy_to(i, ni);
        b.br(h);
        b.switch_to(out);
        b.print(i);
        b.ret(None);
        let f = b.build();
        let (_, rd) = analyze(&f);
        let r = &rd.ranges[i.index()];
        // i: def w=1 (entry) + def w=10 (body copy), uses w=10 (header cmp) +
        // w=10 (body add) + w=1 (print).
        assert_eq!(r.weighted_defs, 11.0);
        assert_eq!(r.weighted_uses, 21.0);
        assert_eq!(r.blocks.count(), 4);
    }

    #[test]
    fn parameters_interfere_with_each_other() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param("x");
        let y = b.param("y");
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s.into()));
        let f = b.build();
        let (_, rd) = analyze(&f);
        assert!(rd.interferes(x, y), "both params live at entry");
    }

    #[test]
    fn dead_def_still_interferes_with_live_values() {
        let mut b = FunctionBuilder::new("f");
        let x = b.copy(1);
        let dead = b.copy(2); // never used
        let y = b.bin(BinOp::Add, x, 3);
        b.print(y);
        b.ret(None);
        let f = b.build();
        let (_, rd) = analyze(&f);
        assert!(
            rd.interferes(dead, x),
            "dead def overlaps x's live range at its def point"
        );
    }
}
