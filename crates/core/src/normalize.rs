//! IR normalization required by the allocator.
//!
//! A procedure's prologue (parameter moves, entry saves) must execute
//! exactly once per invocation, so the entry block must not be a branch
//! target. Front ends normally guarantee this; hand-built or generated IR
//! may not, so the driver splits a fresh entry block in front when needed.

use ipra_ir::{Block, Function, Module, Terminator};

/// Ensures every function's entry block has no predecessors, splitting a
/// new empty entry in front when necessary. Returns how many functions were
/// changed.
pub fn normalize_entries(module: &mut Module) -> usize {
    let mut changed = 0;
    for f in module.funcs.values_mut() {
        if entry_is_branch_target(f) {
            let old = f.entry;
            let new = f.blocks.push(Block::new(Terminator::Br(old)));
            f.entry = new;
            changed += 1;
        }
    }
    changed
}

fn entry_is_branch_target(f: &Function) -> bool {
    let entry = f.entry;
    f.blocks.values().any(|b| {
        let mut hit = false;
        b.term.for_each_succ(|s| hit |= s == entry);
        hit
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;

    #[test]
    fn splits_entry_on_cycle() {
        // entry loops back to itself.
        let mut b = FunctionBuilder::new("f");
        let e = b.current_block();
        let out = b.new_block();
        let c = b.copy(0);
        b.cond_br(c, e, out);
        b.switch_to(out);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_func(b.build());
        m.main = Some(fid);

        let before =
            ipra_ir::interp::run_function(&m, fid, &[], ipra_ir::interp::InterpOptions::default())
                .unwrap();
        assert_eq!(normalize_entries(&mut m), 1);
        ipra_ir::verify::verify_module(&m).unwrap();
        let f = &m.funcs[fid];
        assert_ne!(f.entry, e);
        assert!(!entry_is_branch_target(f));
        let after =
            ipra_ir::interp::run_function(&m, fid, &[], ipra_ir::interp::InterpOptions::default())
                .unwrap();
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn leaves_normal_functions_alone() {
        let mut b = FunctionBuilder::new("f");
        let l = b.new_block();
        let out = b.new_block();
        b.br(l);
        let c = b.copy(0);
        b.cond_br(c, l, out);
        b.switch_to(out);
        b.ret(None);
        let mut m = Module::new();
        m.add_func(b.build());
        assert_eq!(normalize_entries(&mut m), 0);
    }
}
