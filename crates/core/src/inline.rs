//! Profile-guided inlining of hot call sites.
//!
//! Chow's framework minimizes the save/restore penalty *given* a call
//! graph (Eqs 3.1–3.6); the strongest lever on a call edge's penalty is
//! deleting the edge entirely. This pass runs between global promotion
//! and the call-graph/SCC phases of [`crate::ipra::compile_module`]: it
//! ranks direct call sites by dynamic execution count (from `--profile-in`
//! feedback, when available) times a static estimate of the edge's
//! save/restore penalty — the quantity the per-edge penalty ledger
//! measures dynamically — and splices the hottest callee bodies into
//! their callers under a per-caller size budget.
//!
//! Exclusions mirror the paper's open/closed classification (§3): open
//! callees — the program entry, externally visible or address-taken
//! functions, members of recursive cycles — and names forced open by
//! [`AllocOptions::forced_open`](crate::config::AllocOptions::forced_open)
//! keep their out-of-line identity and are never inlined. Because callers
//! are processed in bottom-up call-graph order, chains collapse
//! transitively (a callee spliced into `mid` travels along when `top`
//! inlines `mid`); [`RECURSION_FUEL`] bounds how deep such chains may
//! stack so repeated transitive inlining cannot run away.
//!
//! Correctness obligations of the splice:
//! * **vreg renaming** — every callee virtual register maps to a fresh
//!   caller vreg (injective, disjoint from the caller's existing ones),
//!   so callee locals can never capture caller state;
//! * **slot renaming + fresh-activation zeroing** — callee stack slots
//!   become new caller slots, explicitly zeroed at the splice point,
//!   because the interpreter and the lowered frame both guarantee
//!   zero-initialized slots per activation and an inlined body in a loop
//!   would otherwise observe the previous iteration's values;
//! * **parameter binding** — arguments are copied into the renamed
//!   parameter vregs before control enters the cloned entry block;
//! * **return wiring** — every cloned `Ret` becomes a branch to the
//!   continuation block (the split-off tail of the call's block), with
//!   the returned operand copied into the call's destination first.
//!
//! Downstream invalidation is free by construction: the pass runs before
//! [`ipra_ir::hash_all_functions`], so body hashes, the incremental-cache
//! component keys, the analysis memo and the callee-summary environment
//! all see the transformed bodies.

use std::collections::HashSet;

use ipra_callgraph::{CallGraph, OpenReason, Openness, SccInfo};
use ipra_ir::{
    Address, Block, BlockId, Callee, FuncId, Function, Inst, InstLoc, Module, Operand, SlotData,
    Terminator, Vreg,
};

/// Default per-caller growth budget (instruction count), the value behind
/// `--inline` without `--inline-budget`.
pub const DEFAULT_INLINE_BUDGET: u32 = 48;

/// Maximum inline-chain depth: a callee that already stacks this many
/// levels of spliced bodies is not inlined again. Bounds transitive
/// growth along bottom-up chains.
pub const RECURSION_FUEL: u32 = 3;

/// What the pass did, in deterministic order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InlineStats {
    /// Direct call sites examined.
    pub sites_considered: u64,
    /// Sites actually inlined.
    pub inlined: u64,
    /// Eligible sites skipped only because the caller's budget ran out.
    pub budget_stops: u64,
    /// `(caller, callee)` name pairs for every applied splice, in
    /// application order (bottom-up over callers, reverse document order
    /// within one caller).
    pub edges: Vec<(String, String)>,
}

/// Planted-bug switch for the mutation tests (`tests/inline_mutants.rs`).
/// Production callers always pass [`InlineMutation::None`]; each other
/// variant re-introduces one historical inliner bug class so the tests
/// can prove the verifier / differential oracle rejects it.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InlineMutation {
    /// The healthy pass.
    None,
    /// Splice without renaming vregs: callee locals capture caller state.
    SkipRenaming,
    /// Treat an address-taken callee as private: inline it and stub the
    /// out-of-line body, breaking calls through its taken address.
    TreatAddressTakenAsPrivate,
    /// Admit one more instruction than the configured budget allows.
    BudgetOffByOne,
}

/// Inlines hot direct call sites under `budget` instructions of growth
/// per caller. `profile` is indexed `[function][block]` over the module
/// *as given* (post-normalization, pre-inline block order — the order
/// `--profile-out` records); missing entries weigh as zero. `forced_open`
/// names are never inlined, matching their forced-open allocation.
pub fn inline_hot_calls(
    module: &mut Module,
    budget: u32,
    forced_open: &HashSet<String>,
    profile: Option<&[Vec<u64>]>,
) -> InlineStats {
    inline_with_mutation(module, budget, forced_open, profile, InlineMutation::None)
}

/// [`inline_hot_calls`] with a planted bug. Test-only; see
/// [`InlineMutation`].
#[doc(hidden)]
pub fn inline_with_mutation(
    module: &mut Module,
    budget: u32,
    forced_open: &HashSet<String>,
    profile: Option<&[Vec<u64>]>,
    mutation: InlineMutation,
) -> InlineStats {
    let cg = CallGraph::build(module);
    let scc = SccInfo::compute(&cg);
    let openness = Openness::compute(module, &cg, &scc);
    let mut stats = InlineStats::default();
    // Inline-chain depth per function: 0 until something is spliced in,
    // then 1 + the deepest spliced callee. Deterministic because callers
    // are visited in the (deterministic) bottom-up order.
    let mut depth = vec![0u32; module.funcs.len()];
    let mut stubbed: Vec<FuncId> = Vec::new();

    for caller in scc.bottom_up_order() {
        let cands = collect_candidates(
            module,
            caller,
            &openness,
            forced_open,
            &depth,
            profile,
            &mut stats,
            mutation,
        );
        if cands.is_empty() {
            continue;
        }

        // Greedy budget pass in score order. The admission test is
        // deliberately on the *pre-splice* cost so hit/miss decisions are
        // independent of application order.
        let effective_budget = match mutation {
            InlineMutation::BudgetOffByOne => u64::from(budget) + 1,
            _ => u64::from(budget),
        };
        let mut grown = 0u64;
        let mut chosen: Vec<Candidate> = Vec::new();
        for c in cands {
            if grown + c.cost <= effective_budget {
                grown += c.cost;
                chosen.push(c);
            } else {
                stats.budget_stops += 1;
            }
        }
        if chosen.is_empty() {
            continue;
        }

        // Apply in reverse document order so pending `InstLoc`s stay
        // valid: splicing at (b, i) only moves instructions *after* i out
        // of block b and appends fresh blocks.
        chosen.sort_by_key(|c| std::cmp::Reverse((c.loc.block.index(), c.loc.inst)));
        let mut max_callee_depth = 0u32;
        for c in chosen {
            let callee_fn = module.funcs[c.callee].clone();
            splice(
                &mut module.funcs[caller],
                c.loc,
                &callee_fn,
                mutation != InlineMutation::SkipRenaming,
            );
            max_callee_depth = max_callee_depth.max(depth[c.callee.index()]);
            stats.inlined += 1;
            stats
                .edges
                .push((module.funcs[caller].name.clone(), callee_fn.name.clone()));
            if mutation == InlineMutation::TreatAddressTakenAsPrivate
                && cg.address_taken[c.callee.index()]
                && !stubbed.contains(&c.callee)
            {
                stubbed.push(c.callee);
            }
        }
        depth[caller.index()] = depth[caller.index()].max(max_callee_depth + 1);
    }

    // The planted "inlined away, so delete it" bug: replace each inlined
    // address-taken callee's body with a stub. Calls through its taken
    // address now return 0 — exactly what the differential oracle exists
    // to catch.
    for fid in stubbed {
        let f = &mut module.funcs[fid];
        let mut blocks = ipra_ir::EntityVec::new();
        let entry = blocks.push(Block::new(Terminator::Ret(Some(Operand::Imm(0)))));
        f.blocks = blocks;
        f.entry = entry;
    }

    stats
}

/// One inlinable call site, scored.
struct Candidate {
    loc: InstLoc,
    callee: FuncId,
    /// Instructions the splice adds: callee body + parameter copies +
    /// slot-zeroing stores.
    cost: u64,
    score: u64,
}

/// Static proxy for the save/restore penalty of one call edge: two memory
/// operations (a save and a restore) per register the callee plausibly
/// occupies, plus the call/return overhead itself. The paper's Eq 3.4
/// charges exactly these moves; the dynamic ledger (`penalty_by_edge`)
/// measures them, this estimates them before allocation has run.
fn penalty_estimate(callee: &Function) -> u64 {
    2 * (callee.num_vregs().min(8) as u64 + 1)
}

#[allow(clippy::too_many_arguments)]
fn collect_candidates(
    module: &Module,
    caller: FuncId,
    openness: &Openness,
    forced_open: &HashSet<String>,
    depth: &[u32],
    profile: Option<&[Vec<u64>]>,
    stats: &mut InlineStats,
    mutation: InlineMutation,
) -> Vec<Candidate> {
    let f = &module.funcs[caller];
    let mut cands = Vec::new();
    for (bid, block) in f.blocks.iter() {
        for (i, inst) in block.insts.iter().enumerate() {
            let Inst::Call {
                callee: Callee::Direct(g),
                args,
                dst,
            } = inst
            else {
                continue;
            };
            stats.sites_considered += 1;
            let g = *g;
            if g == caller {
                continue;
            }
            let inlineable_openness = openness.is_closed(g)
                || (mutation == InlineMutation::TreatAddressTakenAsPrivate
                    && openness.reasons(g) == [OpenReason::AddressTaken]);
            if !inlineable_openness || forced_open.contains(&module.funcs[g].name) {
                continue;
            }
            if depth[g.index()] >= RECURSION_FUEL {
                continue;
            }
            let callee = &module.funcs[g];
            if args.len() != callee.params.len() {
                continue;
            }
            // A value-consuming call needs a value on every return path.
            if dst.is_some()
                && callee
                    .blocks
                    .values()
                    .any(|b| matches!(b.term, Terminator::Ret(None)))
            {
                continue;
            }
            let slot_cells: u64 = callee.slots.values().map(|s| u64::from(s.size)).sum();
            let cost = callee.num_insts() as u64 + callee.params.len() as u64 + slot_cells;
            let count = profile
                .and_then(|p| p.get(caller.index()))
                .and_then(|blocks| blocks.get(bid.index()))
                .copied()
                .unwrap_or(0);
            cands.push(Candidate {
                loc: InstLoc {
                    block: bid,
                    inst: i,
                },
                callee: g,
                cost,
                score: (count + 1) * penalty_estimate(callee),
            });
        }
    }
    // Hottest first; document order breaks ties so the ranking is total.
    cands.sort_by_key(|c| (std::cmp::Reverse(c.score), c.loc.block.index(), c.loc.inst));
    cands
}

/// Fresh, injective renaming of every callee vreg into `caller`. Named
/// callee vregs keep a `callee.name`-qualified debug name; temporaries
/// stay anonymous. Public (hidden) so the renamer property tests can
/// check injectivity and freshness directly.
#[doc(hidden)]
pub fn rename_vregs(caller: &mut Function, callee: &Function) -> Vec<Vreg> {
    (0..callee.num_vregs())
        .map(|i| {
            let v = Vreg(i as u32);
            match callee.vreg_name(v) {
                Some(n) => caller.new_named_vreg(format!("{}.{}", callee.name, n)),
                None => caller.new_vreg(),
            }
        })
        .collect()
}

/// Splices `callee`'s body into `caller` at the direct call `loc`.
/// `rename` is `false` only under [`InlineMutation::SkipRenaming`].
fn splice(caller: &mut Function, loc: InstLoc, callee: &Function, rename: bool) {
    let Inst::Call { args, dst, .. } = caller.blocks[loc.block].insts[loc.inst].clone() else {
        unreachable!("candidate location no longer holds a call");
    };
    let vmap: Vec<Vreg> = if rename {
        rename_vregs(caller, callee)
    } else {
        (0..callee.num_vregs()).map(|i| Vreg(i as u32)).collect()
    };
    let smap: Vec<ipra_ir::SlotId> = callee
        .slots
        .values()
        .map(|s| {
            caller.slots.push(SlotData {
                size: s.size,
                name: format!("{}.{}", callee.name, s.name),
            })
        })
        .collect();

    let base = caller.blocks.len();
    let shift = |b: BlockId| BlockId((base + b.index()) as u32);
    let cont = BlockId((base + callee.blocks.len()) as u32);

    // Split the call's block: everything after the call becomes the
    // continuation block's body; the call itself disappears.
    let tail: Vec<Inst> = caller.blocks[loc.block].insts.split_off(loc.inst + 1);
    caller.blocks[loc.block].insts.pop();

    // Fresh-activation semantics for the adopted slots: each call of the
    // out-of-line body saw zeroed slots, so each pass through the splice
    // must too (the caller may reach it in a loop).
    for (si, s) in smap.iter().zip(callee.slots.values()) {
        for cell in 0..s.size {
            caller.blocks[loc.block].insts.push(Inst::Store {
                src: Operand::Imm(0),
                addr: Address::Stack {
                    slot: *si,
                    index: Operand::Imm(i64::from(cell)),
                },
            });
        }
    }
    for (p, a) in callee.params.iter().zip(args.iter()) {
        caller.blocks[loc.block].insts.push(Inst::Copy {
            dst: vmap[p.index()],
            src: *a,
        });
    }
    let entry_clone = shift(callee.entry);
    let old_term = std::mem::replace(
        &mut caller.blocks[loc.block].term,
        Terminator::Br(entry_clone),
    );

    let remap_op = |o: Operand| match o {
        Operand::Reg(v) => Operand::Reg(vmap[v.index()]),
        imm => imm,
    };
    for b in callee.blocks.values() {
        let mut insts: Vec<Inst> = b
            .insts
            .iter()
            .map(|inst| remap_inst(inst, &vmap, &smap))
            .collect();
        let term = match &b.term {
            Terminator::Ret(op) => {
                if let (Some(d), Some(o)) = (dst, op) {
                    insts.push(Inst::Copy {
                        dst: d,
                        src: remap_op(*o),
                    });
                }
                Terminator::Br(cont)
            }
            Terminator::Br(to) => Terminator::Br(shift(*to)),
            Terminator::CondBr {
                cond,
                then_to,
                else_to,
            } => Terminator::CondBr {
                cond: remap_op(*cond),
                then_to: shift(*then_to),
                else_to: shift(*else_to),
            },
        };
        caller.blocks.push(Block { insts, term });
    }
    caller.blocks.push(Block {
        insts: tail,
        term: old_term,
    });
}

/// Rewrites one callee instruction into the caller's namespace.
fn remap_inst(inst: &Inst, vmap: &[Vreg], smap: &[ipra_ir::SlotId]) -> Inst {
    let v = |r: Vreg| vmap[r.index()];
    let op = |o: Operand| match o {
        Operand::Reg(r) => Operand::Reg(vmap[r.index()]),
        imm => imm,
    };
    let addr = |a: Address| match a {
        Address::Global { global, index } => Address::Global {
            global,
            index: op(index),
        },
        Address::Stack { slot, index } => Address::Stack {
            slot: smap[slot.index()],
            index: op(index),
        },
    };
    match inst {
        Inst::Copy { dst, src } => Inst::Copy {
            dst: v(*dst),
            src: op(*src),
        },
        Inst::Bin {
            op: bop,
            dst,
            lhs,
            rhs,
        } => Inst::Bin {
            op: *bop,
            dst: v(*dst),
            lhs: op(*lhs),
            rhs: op(*rhs),
        },
        Inst::Un { op: uop, dst, src } => Inst::Un {
            op: *uop,
            dst: v(*dst),
            src: op(*src),
        },
        Inst::Load { dst, addr: a } => Inst::Load {
            dst: v(*dst),
            addr: addr(*a),
        },
        Inst::Store { src, addr: a } => Inst::Store {
            src: op(*src),
            addr: addr(*a),
        },
        Inst::Call { callee, args, dst } => Inst::Call {
            callee: match callee {
                Callee::Direct(f) => Callee::Direct(*f),
                Callee::Indirect(t) => Callee::Indirect(op(*t)),
            },
            args: args.iter().map(|a| op(*a)).collect(),
            dst: dst.map(v),
        },
        Inst::FuncAddr { dst, func } => Inst::FuncAddr {
            dst: v(*dst),
            func: *func,
        },
        Inst::Print { arg } => Inst::Print { arg: op(*arg) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::{interp, BinOp};

    fn no_forced() -> HashSet<String> {
        HashSet::new()
    }

    /// leaf/mid/main chain with arithmetic that would expose any renaming
    /// or parameter-binding slip.
    fn chain_module() -> Module {
        let mut m = Module::new();
        let leaf = m.declare_func("leaf");
        let mid = m.declare_func("mid");
        let main = m.declare_func("main");
        {
            let mut b = FunctionBuilder::new("leaf");
            let a = b.param("a");
            let c = b.param("c");
            let t = b.bin(BinOp::Mul, a, Operand::Imm(3));
            let u = b.bin(BinOp::Add, t, c);
            b.ret(Some(u.into()));
            m.define_func(leaf, b.build());
        }
        {
            let mut b = FunctionBuilder::new("mid");
            let x = b.param("x");
            let r = b.call(leaf, vec![x.into(), Operand::Imm(7)]);
            let s = b.call(leaf, vec![r.into(), x.into()]);
            let t = b.bin(BinOp::Sub, s, r);
            b.ret(Some(t.into()));
            m.define_func(mid, b.build());
        }
        {
            let mut b = FunctionBuilder::new("main");
            let r = b.call(mid, vec![Operand::Imm(5)]);
            b.print(r);
            let s = b.call(mid, vec![Operand::Imm(9)]);
            b.print(s);
            b.ret(None);
            m.define_func(main, b.build());
        }
        m.main = Some(main);
        m
    }

    fn outputs(m: &Module) -> Vec<i64> {
        interp::run_module(m).expect("runs").output
    }

    #[test]
    fn chain_inlines_and_preserves_behavior() {
        let mut m = chain_module();
        let want = outputs(&m);
        let stats = inline_hot_calls(&mut m, 64, &no_forced(), None);
        assert!(stats.inlined >= 2, "{stats:?}");
        assert!(ipra_ir::verify::verify_module(&m).is_ok());
        assert_eq!(outputs(&m), want);
        // Bottom-up chains collapse: main's spliced `mid` body carries the
        // already-inlined `leaf`.
        assert!(stats
            .edges
            .iter()
            .any(|(caller, callee)| caller == "mid" && callee == "leaf"));
        assert!(stats
            .edges
            .iter()
            .any(|(caller, callee)| caller == "main" && callee == "mid"));
    }

    #[test]
    fn zero_budget_inlines_nothing() {
        let mut m = chain_module();
        let before = m.clone();
        let stats = inline_hot_calls(&mut m, 0, &no_forced(), None);
        assert_eq!(stats.inlined, 0);
        assert!(stats.budget_stops > 0);
        assert_eq!(m, before);
    }

    #[test]
    fn forced_open_callee_is_excluded() {
        let mut m = chain_module();
        let mut forced = HashSet::new();
        forced.insert("leaf".to_string());
        let stats = inline_hot_calls(&mut m, 64, &forced, None);
        assert!(stats.edges.iter().all(|(_, callee)| callee != "leaf"));
        assert_eq!(outputs(&m), outputs(&chain_module()));
    }

    #[test]
    fn address_taken_callee_is_excluded() {
        let mut m = Module::new();
        let leaf = m.declare_func("leaf");
        let main = m.declare_func("main");
        {
            let mut b = FunctionBuilder::new("leaf");
            let a = b.param("a");
            let t = b.bin(BinOp::Add, a, Operand::Imm(1));
            b.ret(Some(t.into()));
            m.define_func(leaf, b.build());
        }
        {
            let mut b = FunctionBuilder::new("main");
            let r = b.call(leaf, vec![Operand::Imm(4)]);
            b.print(r);
            let fp = b.func_addr(leaf);
            let s = b.call_indirect(fp, vec![Operand::Imm(10)]);
            b.print(s);
            b.ret(None);
            m.define_func(main, b.build());
        }
        m.main = Some(main);
        let want = outputs(&m);
        let stats = inline_hot_calls(&mut m, 64, &no_forced(), None);
        assert_eq!(stats.inlined, 0, "{stats:?}");
        assert_eq!(outputs(&m), want);
    }

    #[test]
    fn recursive_callee_is_excluded() {
        let mut m = Module::new();
        let fac = m.declare_func("fac");
        let main = m.declare_func("main");
        {
            let mut b = FunctionBuilder::new("fac");
            let n = b.param("n");
            let done = b.new_block();
            let rec = b.new_block();
            let cond = b.bin(BinOp::Le, n, Operand::Imm(1));
            b.cond_br(cond, done, rec);
            b.switch_to(done);
            b.ret(Some(Operand::Imm(1)));
            b.switch_to(rec);
            let n1 = b.bin(BinOp::Sub, n, Operand::Imm(1));
            let r = b.call(fac, vec![n1.into()]);
            let t = b.bin(BinOp::Mul, n, r);
            b.ret(Some(t.into()));
            m.define_func(fac, b.build());
        }
        {
            let mut b = FunctionBuilder::new("main");
            let r = b.call(fac, vec![Operand::Imm(6)]);
            b.print(r);
            b.ret(None);
            m.define_func(main, b.build());
        }
        m.main = Some(main);
        let want = outputs(&m);
        let stats = inline_hot_calls(&mut m, 1_000, &no_forced(), None);
        assert_eq!(stats.inlined, 0, "{stats:?}");
        assert_eq!(outputs(&m), want);
    }

    #[test]
    fn inlined_slots_are_zeroed_per_pass() {
        // `acc` accumulates into a local slot cell and returns it; called
        // twice from a loop body, the second call must still see a zeroed
        // slot after inlining.
        let mut m = Module::new();
        let acc = m.declare_func("acc");
        let main = m.declare_func("main");
        {
            let mut b = FunctionBuilder::new("acc");
            let x = b.param("x");
            let s = b.slot("buf", 2);
            let old = b.load(Address::Stack {
                slot: s,
                index: Operand::Imm(1),
            });
            let t = b.bin(BinOp::Add, old, x);
            b.store(
                t,
                Address::Stack {
                    slot: s,
                    index: Operand::Imm(1),
                },
            );
            let out = b.load(Address::Stack {
                slot: s,
                index: Operand::Imm(1),
            });
            b.ret(Some(out.into()));
            m.define_func(acc, b.build());
        }
        {
            let mut b = FunctionBuilder::new("main");
            let i = b.var("i");
            b.copy_to(i, Operand::Imm(0));
            let head = b.new_block();
            let body = b.new_block();
            let exit = b.new_block();
            b.br(head);
            b.switch_to(head);
            let c = b.bin(BinOp::Lt, i, Operand::Imm(3));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let r = b.call(acc, vec![i.into()]);
            b.print(r);
            let ni = b.bin(BinOp::Add, i, Operand::Imm(1));
            b.copy_to(i, ni);
            b.br(head);
            b.switch_to(exit);
            b.ret(None);
            m.define_func(main, b.build());
        }
        m.main = Some(main);
        let want = outputs(&m);
        let stats = inline_hot_calls(&mut m, 64, &no_forced(), None);
        assert_eq!(stats.inlined, 1, "{stats:?}");
        assert!(ipra_ir::verify::verify_module(&m).is_ok());
        assert_eq!(outputs(&m), want);
    }

    #[test]
    fn profile_steers_the_budget_to_the_hot_site() {
        // Two callees of equal size; budget fits exactly one. The profile
        // makes the *second* site hot, so it must win the budget.
        let mut m = Module::new();
        let f1 = m.declare_func("one");
        let f2 = m.declare_func("two");
        let main = m.declare_func("main");
        for (fid, k) in [(f1, 1i64), (f2, 2i64)] {
            let name = if k == 1 { "one" } else { "two" };
            let mut b = FunctionBuilder::new(name);
            let a = b.param("a");
            let t = b.bin(BinOp::Add, a, Operand::Imm(k));
            b.ret(Some(t.into()));
            m.define_func(fid, b.build());
        }
        {
            let mut b = FunctionBuilder::new("main");
            let cold = b.new_block();
            let hot = b.new_block();
            let exit = b.new_block();
            b.cond_br(Operand::Imm(1), hot, cold);
            b.switch_to(cold);
            let r = b.call(f1, vec![Operand::Imm(10)]);
            b.print(r);
            b.br(exit);
            b.switch_to(hot);
            let s = b.call(f2, vec![Operand::Imm(20)]);
            b.print(s);
            b.br(exit);
            b.switch_to(exit);
            b.ret(None);
            m.define_func(main, b.build());
        }
        m.main = Some(main);
        let want = outputs(&m);
        // Block counts for main: entry, cold, hot, exit. `hot` runs 1000x.
        let mi = main.index();
        let mut profile: Vec<Vec<u64>> = vec![Vec::new(); m.funcs.len()];
        profile[mi] = vec![1, 0, 1000, 1];
        let cost_one = 3u32; // 2 insts + 1 param
        let stats = inline_hot_calls(&mut m, cost_one, &no_forced(), Some(&profile));
        assert_eq!(stats.inlined, 1, "{stats:?}");
        assert_eq!(stats.edges[0].1, "two", "{stats:?}");
        assert_eq!(stats.budget_stops, 1, "{stats:?}");
        assert_eq!(outputs(&m), want);
    }

    #[test]
    fn renamer_is_injective_and_fresh() {
        let m = chain_module();
        let callee = &m.funcs[ipra_ir::FuncId(0)];
        let mut caller = m.funcs[ipra_ir::FuncId(2)].clone();
        let before = caller.num_vregs();
        let map = rename_vregs(&mut caller, callee);
        let mut seen = HashSet::new();
        for v in &map {
            assert!(v.index() >= before, "{v:?} not fresh");
            assert!(seen.insert(*v), "{v:?} mapped twice");
        }
        assert_eq!(caller.num_vregs(), before + callee.num_vregs());
    }

    #[test]
    fn mutated_budget_admits_one_extra_instruction() {
        // `leaf` costs exactly 4 (2 insts + 2 params); with budget 3 the
        // healthy pass refuses every site, the off-by-one mutant admits
        // the boundary one.
        let mut m = chain_module();
        let healthy = {
            let mut c = m.clone();
            inline_hot_calls(&mut c, 3, &no_forced(), None)
        };
        let mutated = inline_with_mutation(
            &mut m,
            3,
            &no_forced(),
            None,
            InlineMutation::BudgetOffByOne,
        );
        assert!(
            mutated.inlined > healthy.inlined,
            "healthy {healthy:?} vs mutated {mutated:?}"
        );
    }
}
