//! Parallel move resolution.
//!
//! Placing outgoing arguments in the callee's parameter registers (and
//! shuffling incoming parameters to their assigned registers) is a parallel
//! assignment: all sources are read "at once". Sequentializing it naively
//! can clobber a source before it is read; this module orders the moves and
//! breaks cycles through a scratch register.

use ipra_machine::{MAddress, MInst, MOperand, MemClass, PReg};

use crate::scratch::MoveScratch;

/// A source of a parallel move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MoveSrc {
    /// Value currently in a register.
    Reg(PReg),
    /// Constant.
    Imm(i64),
    /// Value in memory (a home slot); loaded with the given accounting
    /// class.
    Mem(MAddress, MemClass),
}

/// Sequentializes the parallel assignment `dst_i <- src_i`.
///
/// Register-to-register moves are emitted in an order that never overwrites
/// a still-needed source; cycles are broken through `scratch`. Constant and
/// memory fills are emitted last (their sources cannot be clobbered by
/// register moves).
///
/// # Panics
///
/// Panics if two moves share a destination, or if `scratch` appears as a
/// destination or register source.
pub fn resolve_parallel_moves(moves: &[(PReg, MoveSrc)], scratch: PReg) -> Vec<MInst> {
    let mut ms = MoveScratch::default();
    let mut out = Vec::new();
    resolve_parallel_moves_into(moves, scratch, &mut ms, &mut out);
    out
}

/// [`resolve_parallel_moves`] appending into `out` and working out of the
/// caller's [`MoveScratch`] worklists, so a lowering pass resolving one
/// move set per call site reuses the same buffers throughout.
pub fn resolve_parallel_moves_into(
    moves: &[(PReg, MoveSrc)],
    scratch: PReg,
    ms: &mut MoveScratch,
    out: &mut Vec<MInst>,
) {
    // Validate preconditions.
    ms.seen.clear();
    for (dst, src) in moves {
        assert!(
            ms.seen.insert(*dst),
            "duplicate destination {dst} in parallel move"
        );
        assert_ne!(*dst, scratch, "scratch register used as destination");
        if let MoveSrc::Reg(s) = src {
            assert_ne!(*s, scratch, "scratch register used as source");
        }
    }

    // Pending register-to-register moves as (dst, src).
    let pending = &mut ms.pending;
    pending.clear();
    pending.extend(moves.iter().filter_map(|(d, s)| match s {
        MoveSrc::Reg(s) if s != d => Some((*d, *s)),
        _ => None,
    }));

    while !pending.is_empty() {
        // A move is safe when its destination is not a pending source.
        let safe = pending
            .iter()
            .position(|(d, _)| pending.iter().all(|(_, s)| s != d));
        match safe {
            Some(i) => {
                let (d, s) = pending.swap_remove(i);
                out.push(MInst::Copy {
                    dst: d,
                    src: MOperand::Reg(s),
                });
            }
            None => {
                // Pure cycle(s): break one by parking a source in scratch.
                let (d0, s0) = pending[0];
                out.push(MInst::Copy {
                    dst: scratch,
                    src: MOperand::Reg(s0),
                });
                // Every pending read of s0 now reads scratch.
                for (_, s) in pending.iter_mut() {
                    if *s == s0 {
                        *s = scratch;
                    }
                }
                let _ = d0;
            }
        }
    }

    // Constant and memory fills last.
    for (d, s) in moves {
        match s {
            MoveSrc::Imm(i) => out.push(MInst::Copy {
                dst: *d,
                src: MOperand::Imm(*i),
            }),
            MoveSrc::Mem(addr, class) => out.push(MInst::Load {
                dst: *d,
                addr: *addr,
                class: *class,
            }),
            MoveSrc::Reg(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(moves: &[(PReg, MoveSrc)], scratch: PReg, nregs: usize) -> Vec<i64> {
        // Interpret: register i starts holding value i.
        let mut regs: Vec<i64> = (0..nregs as i64).collect();
        for inst in resolve_parallel_moves(moves, scratch) {
            match inst {
                MInst::Copy { dst, src } => {
                    regs[dst.index()] = match src {
                        MOperand::Reg(r) => regs[r.index()],
                        MOperand::Imm(i) => i,
                    }
                }
                MInst::Load { dst, .. } => regs[dst.index()] = -1, // marker
                other => panic!("unexpected inst {other:?}"),
            }
        }
        regs
    }

    #[test]
    fn independent_moves() {
        let scratch = PReg(9);
        let regs = apply(
            &[
                (PReg(0), MoveSrc::Reg(PReg(5))),
                (PReg(1), MoveSrc::Imm(42)),
            ],
            scratch,
            10,
        );
        assert_eq!(regs[0], 5);
        assert_eq!(regs[1], 42);
    }

    #[test]
    fn overlapping_chain_ordered_correctly() {
        // 1 <- 0, 2 <- 1 : must copy 2<-1 before 1<-0.
        let scratch = PReg(9);
        let regs = apply(
            &[
                (PReg(1), MoveSrc::Reg(PReg(0))),
                (PReg(2), MoveSrc::Reg(PReg(1))),
            ],
            scratch,
            10,
        );
        assert_eq!(regs[2], 1, "old value of r1");
        assert_eq!(regs[1], 0);
    }

    #[test]
    fn two_cycle_uses_scratch() {
        // swap r0 and r1.
        let scratch = PReg(9);
        let moves = [
            (PReg(0), MoveSrc::Reg(PReg(1))),
            (PReg(1), MoveSrc::Reg(PReg(0))),
        ];
        let insts = resolve_parallel_moves(&moves, scratch);
        assert_eq!(insts.len(), 3, "cycle of two needs three moves");
        let regs = apply(&moves, scratch, 10);
        assert_eq!(regs[0], 1);
        assert_eq!(regs[1], 0);
    }

    #[test]
    fn three_cycle() {
        // r0 <- r1 <- r2 <- r0.
        let scratch = PReg(9);
        let moves = [
            (PReg(0), MoveSrc::Reg(PReg(1))),
            (PReg(1), MoveSrc::Reg(PReg(2))),
            (PReg(2), MoveSrc::Reg(PReg(0))),
        ];
        let regs = apply(&moves, scratch, 10);
        assert_eq!((regs[0], regs[1], regs[2]), (1, 2, 0));
    }

    #[test]
    fn self_move_is_elided() {
        let scratch = PReg(9);
        let insts = resolve_parallel_moves(&[(PReg(3), MoveSrc::Reg(PReg(3)))], scratch);
        assert!(insts.is_empty());
    }

    #[test]
    fn mixed_cycle_and_fills() {
        let scratch = PReg(9);
        let moves = [
            (PReg(0), MoveSrc::Reg(PReg(1))),
            (PReg(1), MoveSrc::Reg(PReg(0))),
            (PReg(2), MoveSrc::Imm(7)),
        ];
        let regs = apply(&moves, scratch, 10);
        assert_eq!((regs[0], regs[1], regs[2]), (1, 0, 7));
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_destination_panics() {
        let _ = resolve_parallel_moves(
            &[(PReg(0), MoveSrc::Imm(1)), (PReg(0), MoveSrc::Imm(2))],
            PReg(9),
        );
    }
}
