//! Register-usage summaries (paper §2–§4).
//!
//! The types themselves live in `ipra-machine` (see
//! [`ipra_machine::summary`]) so machine-level consumers — the simulator's
//! convention checker and the static verifier — can use them without
//! depending on the allocator. This module re-exports them under their
//! historical path.

pub use ipra_machine::{FuncSummary, ParamLoc};
