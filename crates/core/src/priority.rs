//! The priority function (Chow–Hennessy, extended per the paper's §2).
//!
//! Under intra-procedural allocation the cost of a register depends only on
//! its *class*: a callee-saved register pays one save/restore at entry/exit
//! (only on its first use in the function), a caller-saved register pays a
//! save/restore around every call the live range spans. Under
//! inter-procedural allocation the cost is computed *per register*: a call
//! site only charges for registers its callee's summary actually clobbers,
//! so priorities exist per (variable, register) pair.

use ipra_machine::{PReg, RegClass, RegMask, Target};

use crate::ranges::{BlockWeights, LiveRange, RangeData};

/// Everything needed to evaluate priorities in one function.
#[derive(Debug)]
pub struct PriorityCtx<'a> {
    /// Target machine.
    pub target: &'a Target,
    /// Ranges and call sites.
    pub ranges: &'a RangeData,
    /// Clobber mask per call site (resolved from callee summaries, or the
    /// default mask for open/unknown callees).
    pub site_clobbers: &'a [RegMask],
    /// Whether a callee-saved register's first use in this function pays a
    /// local entry/exit save/restore. True for intra-procedural allocation
    /// and for open procedures; false for closed procedures under
    /// inter-procedural allocation, where the save propagates to ancestors
    /// (§3).
    pub charge_callee_saved_entry: bool,
    /// Loop weight of the entry block (the save/restore at entry/exit
    /// executes once per invocation).
    pub entry_weight: f64,
    /// Registers already used somewhere in the current call tree —
    /// preferred on ties to minimize the tree's register footprint (§2,
    /// Fig. 1 discussion).
    pub subtree_used: RegMask,
    /// Per-vreg register affinities: `(reg, bonus)` pairs. Used for §4
    /// parameter-register binding and default-convention parameter homes.
    pub hints: &'a [Vec<(PReg, f64)>],
    /// Execution-frequency weight per block (static loop-based or measured
    /// profile); the splitter prices boundary transfers with these.
    pub weights: &'a BlockWeights,
}

impl PriorityCtx<'_> {
    /// Memory operations avoided by keeping the range in a register,
    /// weighted by loop depth: each use avoids a load, each def a store.
    pub fn benefit(&self, lr: &LiveRange) -> f64 {
        let c = &self.target.cost;
        lr.weighted_uses * c.load as f64 + lr.weighted_defs * c.store as f64
    }

    /// Cost of holding `lr` in register `r`:
    /// save/restore around every spanned call whose callee clobbers `r`,
    /// plus (when this function must protect callee-saved registers
    /// locally) one entry/exit save/restore on the first use of `r`.
    pub fn reg_cost(&self, lr: &LiveRange, r: PReg, used_in_func: RegMask) -> f64 {
        let c = &self.target.cost;
        let save_restore = (c.load + c.store) as f64;
        let mut cost = 0.0;
        for &site in &lr.spans_calls {
            if self.site_clobbers[site as usize].contains(r) {
                cost += self.ranges.call_sites[site as usize].weight * save_restore;
            }
        }
        if self.charge_callee_saved_entry
            && self.target.regs.class(r) == Some(RegClass::CalleeSaved)
            && !used_in_func.contains(r)
        {
            cost += self.entry_weight * save_restore;
        }
        cost
    }

    /// Affinity bonus of `(lr, r)` from hints.
    pub fn hint_bonus(&self, lr: &LiveRange, r: PReg) -> f64 {
        self.hints[lr.vreg.index()]
            .iter()
            .filter(|(hr, _)| *hr == r)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Net priority of assigning `r` to `lr`.
    pub fn net(&self, lr: &LiveRange, r: PReg, used_in_func: RegMask) -> f64 {
        self.benefit(lr) - self.reg_cost(lr, r, used_in_func) + self.hint_bonus(lr, r)
    }

    /// The best allowed register for `lr`, with its priority *density*
    /// (net priority normalized by live-range size, the paper's ordering
    /// criterion). Ties prefer registers already used in the call tree,
    /// then already used in this function, then lower index.
    pub fn best(
        &self,
        lr: &LiveRange,
        forbidden: RegMask,
        used_in_func: RegMask,
    ) -> Option<(PReg, f64)> {
        let size = lr.size().max(1) as f64;
        let mut best: Option<(PReg, f64, (bool, bool))> = None;
        for &r in self.target.regs.allocatable() {
            if forbidden.contains(r) {
                continue;
            }
            let density = self.net(lr, r, used_in_func) / size;
            let pref = (self.subtree_used.contains(r), used_in_func.contains(r));
            let better = match best {
                None => true,
                Some((_, bd, bp)) => {
                    density > bd + 1e-9 || (density > bd - 1e-9 && pref_rank(pref) > pref_rank(bp))
                }
            };
            if better {
                best = Some((r, density, pref));
            }
        }
        best.map(|(r, d, _)| (r, d))
    }
}

fn pref_rank(p: (bool, bool)) -> u8 {
    // Already used in this function beats only-in-subtree beats fresh.
    match p {
        (_, true) => 2,
        (true, false) => 1,
        (false, false) => 0,
    }
}

/// Memoized static priority terms for the coloring loop.
///
/// `benefit`, the per-call cost sum, and the hint bonus of a
/// `(variable, register)` pair never change while coloring runs (site
/// clobbers and hints are fixed per function), yet [`PriorityCtx::best`]
/// re-derives them on every heap revalidation. The cache computes each
/// pair once, lazily. Only the callee-saved entry charge depends on
/// evolving state (`used_in_func`), so it is added at lookup time — in the
/// same accumulation order as [`PriorityCtx::reg_cost`], which keeps every
/// floating-point result bit-identical to the uncached path.
pub struct PriorityCache {
    nr: usize,
    /// Per-vreg benefit; `None` until first asked.
    benefit: Vec<Option<f64>>,
    /// Per `(vreg, reg)` pair: `(call_cost, hint_bonus)`.
    pair: Vec<Option<(f64, f64)>>,
}

impl PriorityCache {
    /// An empty cache sized for `ctx`.
    pub fn new(ctx: &PriorityCtx<'_>) -> Self {
        let nv = ctx.ranges.ranges.len();
        let nr = ctx.target.regs.num_regs();
        PriorityCache {
            nr,
            benefit: vec![None; nv],
            pair: vec![None; nv * nr],
        }
    }

    /// Cached equivalent of [`PriorityCtx::net`].
    pub fn net(
        &mut self,
        ctx: &PriorityCtx<'_>,
        lr: &LiveRange,
        r: PReg,
        used_in_func: RegMask,
    ) -> f64 {
        let vi = lr.vreg.index();
        let benefit = *self.benefit[vi].get_or_insert_with(|| ctx.benefit(lr));
        let (call_cost, hint) = *self.pair[vi * self.nr + r.index()].get_or_insert_with(|| {
            let c = &ctx.target.cost;
            let save_restore = (c.load + c.store) as f64;
            let mut cost = 0.0;
            for &site in &lr.spans_calls {
                if ctx.site_clobbers[site as usize].contains(r) {
                    cost += ctx.ranges.call_sites[site as usize].weight * save_restore;
                }
            }
            (cost, ctx.hint_bonus(lr, r))
        });
        let mut cost = call_cost;
        if ctx.charge_callee_saved_entry
            && ctx.target.regs.class(r) == Some(RegClass::CalleeSaved)
            && !used_in_func.contains(r)
        {
            let c = &ctx.target.cost;
            cost += ctx.entry_weight * (c.load + c.store) as f64;
        }
        benefit - cost + hint
    }

    /// Cached equivalent of [`PriorityCtx::best`]: same selection, same
    /// tie-breaks, same result — the per-pair terms just come from the
    /// memo table.
    pub fn best(
        &mut self,
        ctx: &PriorityCtx<'_>,
        lr: &LiveRange,
        forbidden: RegMask,
        used_in_func: RegMask,
    ) -> Option<(PReg, f64)> {
        let size = lr.size().max(1) as f64;
        let mut best: Option<(PReg, f64, (bool, bool))> = None;
        for &r in ctx.target.regs.allocatable() {
            if forbidden.contains(r) {
                continue;
            }
            let density = self.net(ctx, lr, r, used_in_func) / size;
            let pref = (ctx.subtree_used.contains(r), used_in_func.contains(r));
            let better = match best {
                None => true,
                Some((_, bd, bp)) => {
                    density > bd + 1e-9 || (density > bd - 1e-9 && pref_rank(pref) > pref_rank(bp))
                }
            };
            if better {
                best = Some((r, density, pref));
            }
        }
        best.map(|(r, d, _)| (r, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FuncAnalyses;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::{BinOp, Function, Module};

    fn range_data(f: &Function) -> (RangeData, BlockWeights) {
        let an = FuncAnalyses::compute(f);
        let weights = BlockWeights::from_loops(&an.cfg, &an.loops);
        (
            RangeData::build(f, &an.cfg, &an.liveness, &weights),
            weights,
        )
    }

    /// x is live across one call; t is a short temp.
    fn func_with_call() -> (Function, ipra_ir::Vreg, ipra_ir::Vreg) {
        let mut m = Module::new();
        let callee = m.declare_func("callee");
        let mut b = FunctionBuilder::new("f");
        let x = b.copy(5);
        b.call_void(callee, vec![]);
        let t = b.bin(BinOp::Add, x, 1);
        b.print(t);
        b.ret(None);
        (b.build(), x, t)
    }

    #[test]
    fn call_spanning_range_prefers_callee_saved_intra() {
        let (f, x, _) = func_with_call();
        let target = Target::mips_like();
        let (rd, weights) = range_data(&f);
        let clobbers = vec![target.regs.default_clobbers()];
        let ctx = PriorityCtx {
            target: &target,
            ranges: &rd,
            site_clobbers: &clobbers,
            charge_callee_saved_entry: true,
            entry_weight: 1.0,
            subtree_used: RegMask::EMPTY,
            hints: &vec![Vec::new(); f.num_vregs()],
            weights: &weights,
        };
        let lr = &rd.ranges[x.index()];
        let caller = target
            .regs
            .allocatable_of(RegClass::CallerSaved)
            .next()
            .unwrap();
        let callee_saved = target
            .regs
            .allocatable_of(RegClass::CalleeSaved)
            .next()
            .unwrap();
        // Both classes cost one save/restore here (around the call vs at
        // entry/exit), so they tie for a single call...
        assert_eq!(
            ctx.reg_cost(lr, caller, RegMask::EMPTY),
            ctx.reg_cost(lr, callee_saved, RegMask::EMPTY)
        );
        // ...but with the callee-saved register already used, it is free.
        let used = RegMask::single(callee_saved);
        assert_eq!(ctx.reg_cost(lr, callee_saved, used), 0.0);
        assert!(ctx.reg_cost(lr, caller, used) > 0.0);
        let (best, _) = ctx.best(lr, RegMask::EMPTY, used).unwrap();
        assert_eq!(best, callee_saved);
    }

    #[test]
    fn short_temp_prefers_caller_saved() {
        let (f, _, t) = func_with_call();
        let target = Target::mips_like();
        let (rd, weights) = range_data(&f);
        let clobbers = vec![target.regs.default_clobbers()];
        let ctx = PriorityCtx {
            target: &target,
            ranges: &rd,
            site_clobbers: &clobbers,
            charge_callee_saved_entry: true,
            entry_weight: 1.0,
            subtree_used: RegMask::EMPTY,
            hints: &vec![Vec::new(); f.num_vregs()],
            weights: &weights,
        };
        let lr = &rd.ranges[t.index()];
        let (best, density) = ctx.best(lr, RegMask::EMPTY, RegMask::EMPTY).unwrap();
        assert_eq!(
            target.regs.class(best),
            Some(RegClass::CallerSaved),
            "temp not spanning calls must take a free caller-saved register"
        );
        assert!(density > 0.0);
    }

    #[test]
    fn interprocedural_cost_depends_on_callee_summary() {
        let (f, x, _) = func_with_call();
        let target = Target::mips_like();
        let (rd, weights) = range_data(&f);
        // The callee's summary says it clobbers only one specific register.
        let hot = target.regs.allocatable()[5];
        let clobbers = vec![RegMask::single(hot)];
        let ctx = PriorityCtx {
            target: &target,
            ranges: &rd,
            site_clobbers: &clobbers,
            charge_callee_saved_entry: false,
            entry_weight: 1.0,
            subtree_used: RegMask::EMPTY,
            hints: &vec![Vec::new(); f.num_vregs()],
            weights: &weights,
        };
        let lr = &rd.ranges[x.index()];
        assert!(
            ctx.reg_cost(lr, hot, RegMask::EMPTY) > 0.0,
            "clobbered register costs"
        );
        let other = target.regs.allocatable()[6];
        assert_eq!(
            ctx.reg_cost(lr, other, RegMask::EMPTY),
            0.0,
            "unclobbered register is free"
        );
        let (best, _) = ctx.best(lr, RegMask::EMPTY, RegMask::EMPTY).unwrap();
        assert_ne!(best, hot);
    }

    #[test]
    fn hints_steer_selection() {
        let (f, x, _) = func_with_call();
        let target = Target::mips_like();
        let (rd, weights) = range_data(&f);
        let clobbers = vec![RegMask::EMPTY];
        let fav = target.regs.allocatable()[9];
        let mut hints = vec![Vec::new(); f.num_vregs()];
        hints[x.index()].push((fav, 50.0));
        let ctx = PriorityCtx {
            target: &target,
            ranges: &rd,
            site_clobbers: &clobbers,
            charge_callee_saved_entry: false,
            entry_weight: 1.0,
            subtree_used: RegMask::EMPTY,
            hints: &hints,
            weights: &weights,
        };
        let (best, _) = ctx
            .best(&rd.ranges[x.index()], RegMask::EMPTY, RegMask::EMPTY)
            .unwrap();
        assert_eq!(best, fav);
    }

    #[test]
    fn cache_matches_uncached_bit_for_bit() {
        let (f, _, _) = func_with_call();
        let target = Target::mips_like();
        let (rd, weights) = range_data(&f);
        let clobbers = vec![target.regs.default_clobbers()];
        let fav = target.regs.allocatable()[2];
        let mut hints = vec![Vec::new(); f.num_vregs()];
        hints[0].push((fav, 7.5));
        let ctx = PriorityCtx {
            target: &target,
            ranges: &rd,
            site_clobbers: &clobbers,
            charge_callee_saved_entry: true,
            entry_weight: 1.0,
            subtree_used: RegMask::single(fav),
            hints: &hints,
            weights: &weights,
        };
        let mut cache = PriorityCache::new(&ctx);
        for lr in rd.ranges.iter().filter(|l| l.is_candidate()) {
            for &r in target.regs.allocatable() {
                for used in [RegMask::EMPTY, RegMask::single(r)] {
                    // Ask twice: the first call fills the memo, the second
                    // reads it; both must equal the uncached value exactly.
                    for _ in 0..2 {
                        assert_eq!(
                            cache.net(&ctx, lr, r, used).to_bits(),
                            ctx.net(lr, r, used).to_bits(),
                        );
                    }
                }
            }
            let uncached = ctx.best(lr, RegMask::EMPTY, RegMask::EMPTY);
            let cached = cache.best(&ctx, lr, RegMask::EMPTY, RegMask::EMPTY);
            match (uncached, cached) {
                (None, None) => {}
                (Some((ur, ud)), Some((cr, cd))) => {
                    assert_eq!(ur, cr);
                    assert_eq!(ud.to_bits(), cd.to_bits());
                }
                other => panic!("cache diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn subtree_preference_breaks_ties() {
        let (f, x, _) = func_with_call();
        let target = Target::mips_like();
        let (rd, weights) = range_data(&f);
        let clobbers = vec![RegMask::EMPTY];
        let ctx_no_pref = PriorityCtx {
            target: &target,
            ranges: &rd,
            site_clobbers: &clobbers,
            charge_callee_saved_entry: false,
            entry_weight: 1.0,
            subtree_used: RegMask::EMPTY,
            hints: &vec![Vec::new(); f.num_vregs()],
            weights: &weights,
        };
        let preferred = target.regs.allocatable()[7];
        let (b1, _) = ctx_no_pref
            .best(&rd.ranges[x.index()], RegMask::EMPTY, RegMask::EMPTY)
            .unwrap();
        let ctx_pref = PriorityCtx {
            subtree_used: RegMask::single(preferred),
            ..ctx_no_pref
        };
        let (b2, _) = ctx_pref
            .best(&rd.ranges[x.index()], RegMask::EMPTY, RegMask::EMPTY)
            .unwrap();
        assert_eq!(
            b1,
            target.regs.allocatable()[0],
            "no preference: first register"
        );
        assert_eq!(b2, preferred, "tie broken toward the call tree's register");
    }
}
