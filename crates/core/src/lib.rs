//! # ipra-core — the paper's contribution
//!
//! Priority-based coloring register allocation with the three extensions of
//! Fred Chow's *"Minimizing Register Usage Penalty at Procedure Calls"*
//! (PLDI 1988):
//!
//! 1. per-(variable, register) priorities driven by callee register-usage
//!    summaries, allocated in one bottom-up pass over the call graph (§2–§3);
//! 2. parameter passing in arbitrary registers chosen by the callee (§4);
//! 3. shrink-wrapped placement of callee-saved register saves/restores via
//!    bit-vector data-flow analysis with range extension and the loop
//!    constraint (§5), combined with the propagation rule of §6.
//!
//! The module driver [`ipra::compile_module`] turns an IR module into
//! executable machine code under any [`config::AllocOptions`]
//! configuration.

#![warn(missing_docs)]

pub mod alloc;
pub mod analysis;
pub mod cache;
pub mod color;
pub mod config;
pub mod inline;
pub mod ipra;
pub mod lower;
pub mod normalize;
pub mod parmove;
pub mod pipeline;
pub mod priority;
pub mod promote;
pub mod ranges;
pub mod scratch;
pub mod shrinkwrap;
pub mod summary;

pub use alloc::{allocate_function, CallPlan, FuncAllocation, FuncArtifacts, SummaryEnv};
pub use analysis::{AnalysisCache, AnalysisStats, FuncAnalyses};
pub use cache::{AllocCache, CacheStats, CachedFunc};
pub use color::{Assignment, VregLoc};
pub use config::{AllocMode, AllocOptions};
pub use inline::{inline_hot_calls, InlineStats, DEFAULT_INLINE_BUDGET};
pub use ipra::{compile_module, compile_module_with_profile, CompiledModule, FuncReport};
pub use lower::lower_function;
pub use normalize::normalize_entries;
pub use pipeline::Pipeline;
pub use priority::PriorityCtx;
pub use promote::{promote_globals, PromotionStats};
pub use ranges::{BlockWeights, CallSiteInfo, LiveRange, RangeData};
pub use scratch::{CompileScratch, MaskPool, MoveScratch, ScratchPool};
pub use shrinkwrap::{shrink_wrap, verify_plan, SavePlan};
pub use summary::{FuncSummary, ParamLoc};
