//! The one-pass inter-procedural driver (paper §2, §7).
//!
//! Processes the procedures of a module in a depth-first (bottom-up)
//! traversal of the call graph, so every closed procedure's register-usage
//! summary is available at its call sites when the callers are allocated.
//! Open procedures (paper §3) fall back to the default convention. The same
//! driver also runs the intra-procedural and no-allocation configurations,
//! which simply never consult summaries.

use ipra_callgraph::{CallGraph, OpenReason, Openness, SccInfo};
use ipra_ir::{EntityVec, FuncId, Module};
use ipra_machine::{MModule, RegMask, Target};

use crate::alloc::{allocate_function, FuncArtifacts, SummaryEnv};
use crate::config::{AllocMode, AllocOptions};
use crate::lower::lower_function;
use crate::normalize::normalize_entries;
use crate::promote::{promote_globals, PromotionStats};
use crate::summary::FuncSummary;

/// Per-function diagnostics of one compilation.
#[derive(Clone, Debug)]
pub struct FuncReport {
    /// Function name.
    pub name: String,
    /// Whether the function was treated as open, and why.
    pub open_reasons: Vec<OpenReason>,
    /// Whether forced open by [`AllocOptions::forced_open`].
    pub forced_open: bool,
    /// Registers the assignment uses.
    pub used: RegMask,
    /// Callee-saved registers saved locally.
    pub locally_saved: RegMask,
    /// Shrink-wrap range-extension iterations.
    pub shrink_iterations: u32,
    /// Virtual registers left fully in memory (referenced ones only).
    pub memory_vregs: usize,
    /// Virtual registers split between registers and memory.
    pub split_vregs: usize,
    /// Total referenced virtual registers.
    pub candidate_vregs: usize,
}

/// A fully compiled module.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// Executable machine code.
    pub mmodule: MModule,
    /// Final summaries (default summaries for open procedures).
    pub summaries: Vec<FuncSummary>,
    /// Per-function clobber masks for the simulator's convention checker.
    pub clobber_masks: Vec<RegMask>,
    /// Per-function diagnostics.
    pub reports: Vec<FuncReport>,
    /// Global-promotion statistics (zero when the pass is off).
    pub promotion: PromotionStats,
}

/// Compiles a module under the given options.
pub fn compile_module(module: &Module, target: &Target, opts: &AllocOptions) -> CompiledModule {
    compile_module_with_profile(module, target, opts, None)
}

/// Compiles with measured per-`[function][block]` execution counts feeding
/// the priority function's weights — the profile feedback the paper lists
/// as future work ("knowledge of such profile data can enable the register
/// allocator to distribute saves/restores more optimally").
pub fn compile_module_with_profile(
    module: &Module,
    target: &Target,
    opts: &AllocOptions,
    profile: Option<&[Vec<u64>]>,
) -> CompiledModule {
    let mut module = module.clone();
    // Prologue code must run once per invocation, so entries may not be
    // branch targets (front ends guarantee this; generated IR may not).
    normalize_entries(&mut module);
    let promotion = if opts.promote_globals {
        promote_globals(&mut module)
    } else {
        PromotionStats::default()
    };
    ipra_obs::counter("promote.promoted", promotion.promoted as u64);
    ipra_obs::counter(
        "promote.accesses_rewritten",
        promotion.accesses_rewritten as u64,
    );

    let cg = CallGraph::build(&module);
    let scc = SccInfo::compute(&cg);
    let openness = Openness::compute(&module, &cg, &scc);
    scc.record_stats();
    openness.record_stats();

    let inter = opts.mode == AllocMode::Inter;
    let n = module.funcs.len();
    let mut env = SummaryEnv::default();
    let mut artifacts: Vec<Option<FuncArtifacts>> = (0..n).map(|_| None).collect();

    for fid in scc.bottom_up_order() {
        let _obs = ipra_obs::scope(&module.funcs[fid].name);
        let forced = opts.forced_open.contains(&module.funcs[fid].name);
        let is_open = !inter || forced || openness.is_open(fid);
        let art = allocate_function(
            &module,
            fid,
            target,
            opts,
            is_open,
            &env,
            profile.map(|p| p[fid.index()].as_slice()),
        );
        if inter && !is_open {
            env.summaries.insert(fid, art.alloc.summary.clone());
        }
        env.tree_used.insert(fid, art.alloc.tree_used);
        artifacts[fid.index()] = Some(art);
    }

    let mut funcs = EntityVec::new();
    let mut summaries = Vec::with_capacity(n);
    let mut clobber_masks = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    for (fid, func) in module.funcs.iter() {
        let art = artifacts[fid.index()]
            .as_ref()
            .expect("every function allocated");
        {
            let _obs = ipra_obs::scope(&func.name);
            let _t = ipra_obs::span("lower");
            funcs.push(lower_function(&module, func, target, art));
        }

        let a = &art.alloc;
        summaries.push(a.summary.clone());
        clobber_masks.push(if inter && !a.is_open {
            a.summary.clobbers
        } else {
            target.regs.default_clobbers()
        });
        let mut memory_vregs = 0;
        let mut split_vregs = 0;
        let mut candidates = 0;
        for lr in &art.ranges.ranges {
            if !lr.is_candidate() {
                continue;
            }
            candidates += 1;
            if a.assignment.is_split(lr.vreg) {
                split_vregs += 1;
            } else if a.assignment.whole[lr.vreg.index()] == crate::color::VregLoc::Mem {
                memory_vregs += 1;
            }
        }
        reports.push(FuncReport {
            name: func.name.clone(),
            open_reasons: openness.reasons(fid).to_vec(),
            forced_open: opts.forced_open.contains(&func.name),
            used: a.assignment.used,
            locally_saved: a.locally_saved,
            shrink_iterations: a.shrink_iterations,
            memory_vregs,
            split_vregs,
            candidate_vregs: candidates,
        });
    }

    CompiledModule {
        mmodule: MModule {
            funcs,
            globals: module.globals.clone(),
            main: module.main,
        },
        summaries,
        clobber_masks,
        reports,
        promotion,
    }
}

/// Convenience: which functions ended up open under `opts`.
pub fn open_functions(module: &Module, opts: &AllocOptions) -> Vec<FuncId> {
    let cg = CallGraph::build(module);
    let scc = SccInfo::compute(&cg);
    let openness = Openness::compute(module, &cg, &scc);
    module
        .funcs
        .iter()
        .filter(|(id, f)| {
            opts.mode != AllocMode::Inter
                || opts.forced_open.contains(&f.name)
                || openness.is_open(*id)
        })
        .map(|(id, _)| id)
        .collect()
}
