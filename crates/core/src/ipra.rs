//! The one-pass inter-procedural driver (paper §2, §7).
//!
//! Processes the procedures of a module in a depth-first (bottom-up)
//! traversal of the call graph, so every closed procedure's register-usage
//! summary is available at its call sites when the callers are allocated.
//! Open procedures (paper §3) fall back to the default convention. The same
//! driver also runs the intra-procedural and no-allocation configurations,
//! which simply never consult summaries.
//!
//! # Wave scheduling
//!
//! The bottom-up invariant only orders a function after its callees;
//! functions whose callees are all summarized are mutually independent.
//! The driver therefore partitions the SCC condensation into levels
//! ([`SccInfo::levels`]) and fans each level out across scoped worker
//! threads when [`AllocOptions::jobs`] resolves to more than one. The unit
//! of work is the *component*, not the function: members of a multi-node
//! SCC see each other's whole-tree usage in serial processing order, so a
//! worker replays that order against a private copy of the environment.
//! Workers collect their own observability shards; the driver merges
//! summaries and shards in `FuncId` order, making output, reports, and
//! traces independent of thread scheduling — bit-identical to `jobs = 1`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ipra_callgraph::{CallGraph, OpenReason, Openness, SccInfo};
use ipra_ir::{hash_all_functions, EntityVec, FuncId, Module};
use ipra_machine::{MFunction, MModule, RegMask, Target};

use crate::alloc::{allocate_function_with, FuncArtifacts, SummaryEnv};
use crate::analysis::{AnalysisCache, AnalysisStats};
use crate::cache::{component_key, config_fingerprint, AllocCache, CacheStats, CachedFunc};
use crate::config::{AllocMode, AllocOptions};
use crate::inline::{inline_hot_calls, InlineStats};
use crate::lower::lower_function_with;
use crate::normalize::normalize_entries;
use crate::pipeline::{Pipeline, PreparedModule};
use crate::promote::{promote_globals, PromotionStats};
use crate::scratch::{CompileScratch, ScratchPool};
use crate::summary::FuncSummary;

/// Per-function diagnostics of one compilation.
#[derive(Clone, Debug)]
pub struct FuncReport {
    /// Function name.
    pub name: String,
    /// Whether the function was treated as open, and why.
    pub open_reasons: Vec<OpenReason>,
    /// Whether forced open by [`AllocOptions::forced_open`].
    pub forced_open: bool,
    /// Registers the assignment uses.
    pub used: RegMask,
    /// Callee-saved registers saved locally.
    pub locally_saved: RegMask,
    /// Shrink-wrap range-extension iterations.
    pub shrink_iterations: u32,
    /// Virtual registers left fully in memory (referenced ones only).
    pub memory_vregs: usize,
    /// Virtual registers split between registers and memory.
    pub split_vregs: usize,
    /// Total referenced virtual registers.
    pub candidate_vregs: usize,
}

/// A fully compiled module.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// Executable machine code.
    pub mmodule: MModule,
    /// Final summaries (default summaries for open procedures).
    pub summaries: Vec<FuncSummary>,
    /// Per-function clobber masks for the simulator's convention checker.
    pub clobber_masks: Vec<RegMask>,
    /// Per-function diagnostics.
    pub reports: Vec<FuncReport>,
    /// Global-promotion statistics (zero when the pass is off).
    pub promotion: PromotionStats,
    /// What the profile-guided inliner did (default when the pass is off).
    pub inline: InlineStats,
    /// Incremental-cache outcome (default when no cache was configured).
    pub cache: CacheStats,
    /// Analysis-memo hits/misses within this compile (all misses for a
    /// one-shot compile; mostly hits on a warm [`Pipeline`] recompile).
    /// Summed from this compile's own lookups, so concurrent compiles
    /// sharing the pipeline never pollute each other's window.
    pub analysis: AnalysisStats,
}

/// How one function's result was obtained: allocated in this compile, or
/// replayed from the incremental cache. Cached results point into a
/// shared component entry (`Arc` + member index) so replay never clones
/// the decoded entry per function.
enum FuncResult {
    Fresh(Box<FuncArtifacts>),
    Cached(Arc<Vec<CachedFunc>>, usize),
}

/// Compiles a module under the given options.
pub fn compile_module(module: &Module, target: &Target, opts: &AllocOptions) -> CompiledModule {
    compile_module_with_profile(module, target, opts, None)
}

/// Compiles with measured per-`[function][block]` execution counts feeding
/// the priority function's weights — the profile feedback the paper lists
/// as future work ("knowledge of such profile data can enable the register
/// allocator to distribute saves/restores more optimally").
pub fn compile_module_with_profile(
    module: &Module,
    target: &Target,
    opts: &AllocOptions,
    profile: Option<&[Vec<u64>]>,
) -> CompiledModule {
    // One-shot compile: a throwaway pipeline (empty memo, empty pools).
    compile_module_impl(module, target, opts, profile, &Pipeline::new())
}

/// The module-level front half of one compile: clone and transform the
/// input (entry normalization, optional global promotion, optional
/// profile-guided inlining), hash the transformed bodies, and build the
/// call graph, its SCC condensation and the openness classification.
/// Deterministic in the input (including the profile, which steers the
/// inliner when that pass is on), so [`Pipeline`] memoizes the whole
/// bundle by module hash plus inline configuration.
pub(crate) fn prepare_module(
    module: &Module,
    opts: &AllocOptions,
    profile: Option<&[Vec<u64>]>,
) -> PreparedModule {
    let input = module.clone();
    let mut module = module.clone();
    // Prologue code must run once per invocation, so entries may not be
    // branch targets (front ends guarantee this; generated IR may not).
    normalize_entries(&mut module);
    let promotion = if opts.promote_globals {
        promote_globals(&mut module)
    } else {
        PromotionStats::default()
    };
    // Inlining runs before the hashes and the call-graph phases below, so
    // the incremental cache, the analysis memo, the SCC condensation and
    // the openness classification all see the transformed bodies —
    // summary/body-hash invalidation falls out of the key derivation.
    let inline_on = opts.effective_inline();
    let inline = if inline_on {
        inline_hot_calls(&mut module, opts.inline_budget, &opts.forced_open, profile)
    } else {
        InlineStats::default()
    };

    // Structural hashes of the *transformed* bodies: both the incremental
    // cache and the analysis memo key on what the allocator actually sees.
    let body_hashes = hash_all_functions(&module);

    let cg = CallGraph::build(&module);
    let scc = SccInfo::compute(&cg);
    let openness = Openness::compute(&module, &cg, &scc);
    PreparedModule {
        input,
        promote: opts.promote_globals,
        inline_on,
        inline_budget: opts.inline_budget,
        inline_profile: if inline_on {
            profile.map(|p| p.to_vec())
        } else {
            None
        },
        module,
        promotion,
        inline,
        body_hashes,
        cg,
        scc,
        openness,
    }
}

/// The driver body behind both the one-shot entry points above and
/// [`Pipeline::compile`]. All memoized state (prepared module, analysis
/// memo, scratch pool, decoded cache entries) lives in `pipe`, so its
/// lifetime decides what a recompile can reuse.
pub(crate) fn compile_module_impl(
    module: &Module,
    target: &Target,
    opts: &AllocOptions,
    profile: Option<&[Vec<u64>]>,
    pipe: &Pipeline,
) -> CompiledModule {
    let prep = pipe.prepared(module, opts, profile);
    let module = &prep.module;
    let promotion = prep.promotion;
    let body_hashes = &prep.body_hashes;
    let (cg, scc, openness) = (&prep.cg, &prep.scc, &prep.openness);

    // Observability is re-emitted per compile even when the preparation
    // replayed from the memo, so traces stay identical across pipeline
    // temperature.
    ipra_obs::counter("promote.promoted", promotion.promoted as u64);
    ipra_obs::counter(
        "promote.accesses_rewritten",
        promotion.accesses_rewritten as u64,
    );
    if prep.inline_on {
        ipra_obs::counter("inline.sites_considered", prep.inline.sites_considered);
        ipra_obs::counter("inline.inlined", prep.inline.inlined);
        ipra_obs::counter("inline.budget_stops", prep.inline.budget_stops);
    }
    scc.record_stats();
    openness.record_stats();

    // Flight-recorder shape of the traversal. Recorded from the SCC
    // structure itself (not from the scheduler) so serial and wave
    // compilations produce identical metrics.
    if ipra_obs::is_enabled() {
        for comp in &scc.components {
            ipra_obs::metric_observe("callgraph.scc_size", &[], comp.len() as u64);
        }
        for wave in scc.levels(cg) {
            ipra_obs::metric_observe("wave.width", &[], wave.len() as u64);
        }
    }

    let inter = opts.mode == AllocMode::Inter;
    let n = module.funcs.len();
    let jobs = opts.effective_jobs();
    let mut env = SummaryEnv::default();

    // Incremental cache (see `crate::cache`). When enabled, compilation
    // always takes the wave path below — the per-wave lookup needs the
    // environment frozen at wave boundaries — and stays bit-identical to
    // the serial path for any hit/miss pattern.
    let mut cache = opts.effective_cache_dir().map(|d| AllocCache::load(&d));
    let fingerprint = if cache.is_some() {
        config_fingerprint(target, opts)
    } else {
        0
    };
    let mut cache_stats = CacheStats {
        enabled: cache.is_some(),
        ..CacheStats::default()
    };
    let mut recompiled = vec![false; n];
    let mut miss_records: Vec<(u64, Vec<FuncId>)> = Vec::new();

    let mut results: Vec<Option<FuncResult>> = (0..n).map(|_| None).collect();

    if jobs <= 1 && cache.is_none() {
        // Serial path: one pass over the flat bottom-up order, one
        // scratch checked out for the whole pass.
        let mut scratch = pipe.scratch.acquire();
        for fid in scc.bottom_up_order() {
            let _obs = ipra_obs::scope(&module.funcs[fid].name);
            let forced = opts.forced_open.contains(&module.funcs[fid].name);
            let is_open = !inter || forced || openness.is_open(fid);
            let art = allocate_function_with(
                module,
                fid,
                target,
                opts,
                is_open,
                &env,
                profile.map(|p| p[fid.index()].as_slice()),
                &pipe.analyses,
                body_hashes[fid.index()],
                &mut scratch,
            );
            if inter && !is_open {
                env.summaries.insert(fid, art.alloc.summary.clone());
            }
            env.tree_used.insert(fid, art.alloc.tree_used);
            results[fid.index()] = Some(FuncResult::Fresh(Box::new(art)));
        }
        pipe.scratch.release(scratch);
    } else {
        // Wave scheduler: every component of a level has all its callees
        // summarized, so a whole level fans out at once. `env` is frozen
        // (shared read-only) while a wave runs and updated between waves
        // in FuncId order, so results match the serial path bit for bit.
        let tracing = ipra_obs::is_enabled();
        for wave in scc.levels(cg) {
            let comps: Vec<&[FuncId]> = wave
                .iter()
                .map(|&ci| scc.components[ci].as_slice())
                .collect();

            // Cache lookup, serial and deterministic, against the frozen
            // environment (every external callee lives in a lower wave).
            // The pipeline's in-memory entry image is consulted first; a
            // disk hit is decoded once and promoted into it, so a warm
            // recompile through a persistent [`Pipeline`] never rereads
            // or reparses the cache directory.
            let mut comp_keys = vec![0u64; comps.len()];
            let mut hits: Vec<Option<Arc<Vec<CachedFunc>>>> =
                (0..comps.len()).map(|_| None).collect();
            if let Some(c) = &cache {
                for (i, comp) in comps.iter().enumerate() {
                    let key = component_key(
                        module,
                        body_hashes,
                        comp,
                        |fid| {
                            let forced = opts.forced_open.contains(&module.funcs[fid].name);
                            !inter || forced || openness.is_open(fid)
                        },
                        fingerprint,
                        inter,
                        &env,
                        profile,
                    );
                    comp_keys[i] = key;
                    // The names guard against FNV collisions and stale
                    // entries; a mismatch is just a miss.
                    let matches = |funcs: &[CachedFunc]| {
                        funcs.len() == comp.len()
                            && funcs
                                .iter()
                                .zip(comp.iter())
                                .all(|(cf, &fid)| cf.name == module.funcs[fid].name)
                    };
                    let memo = pipe.entries.lock().unwrap().get(&key).cloned();
                    if let Some(funcs) = memo {
                        if matches(&funcs) {
                            hits[i] = Some(funcs);
                            continue;
                        }
                    }
                    if let Some(funcs) = c.lookup(key, module) {
                        if matches(&funcs) {
                            let funcs = Arc::new(funcs);
                            pipe.entries.lock().unwrap().insert(key, Arc::clone(&funcs));
                            hits[i] = Some(funcs);
                        }
                    }
                }
            }

            // Fan the misses out across the workers.
            let miss_idx: Vec<usize> = (0..comps.len()).filter(|&i| hits[i].is_none()).collect();
            let mut fresh = run_tasks(jobs, miss_idx.len(), &pipe.scratch, |out, scratch, t| {
                alloc_component(
                    module,
                    comps[miss_idx[t]],
                    target,
                    opts,
                    inter,
                    openness,
                    &env,
                    profile,
                    tracing,
                    &pipe.analyses,
                    body_hashes,
                    scratch,
                    out,
                );
            });
            fresh.sort_by_key(|(fid, _, _)| fid.index());
            if cache.is_some() {
                for &i in &miss_idx {
                    miss_records.push((comp_keys[i], comps[i].to_vec()));
                }
            }

            // Deterministic merge: interleave the hit and miss streams in
            // FuncId order so the environment, observability records and
            // counters come out independent of thread scheduling.
            let mut hit_funcs: Vec<(FuncId, Arc<Vec<CachedFunc>>, usize)> = Vec::new();
            for (i, h) in hits.into_iter().enumerate() {
                if let Some(funcs) = h {
                    for (m, &fid) in comps[i].iter().enumerate() {
                        hit_funcs.push((fid, Arc::clone(&funcs), m));
                    }
                }
            }
            hit_funcs.sort_by_key(|(fid, _, _)| fid.index());
            let mut fresh_it = fresh.into_iter().peekable();
            let mut hit_it = hit_funcs.into_iter().peekable();
            loop {
                let take_fresh = match (fresh_it.peek(), hit_it.peek()) {
                    (Some((f, _, _)), Some((h, _, _))) => f.index() < h.index(),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_fresh {
                    let (fid, art, shard) = fresh_it.next().expect("peeked");
                    if inter && !art.alloc.is_open {
                        env.summaries.insert(fid, art.alloc.summary.clone());
                    }
                    env.tree_used.insert(fid, art.alloc.tree_used);
                    ipra_obs::absorb(shard);
                    recompiled[fid.index()] = true;
                    if cache.is_some() {
                        cache_stats.misses += 1;
                        cache_stats.recompiled.push(module.funcs[fid].name.clone());
                        let _obs = ipra_obs::scope(&module.funcs[fid].name);
                        ipra_obs::counter("cache.miss", 1);
                        ipra_obs::metric_counter("cache.lookup", &[("result", "miss")], 1);
                    }
                    results[fid.index()] = Some(FuncResult::Fresh(Box::new(art)));
                } else {
                    let (fid, entry, idx) = hit_it.next().expect("peeked");
                    let cf = &entry[idx];
                    if inter && !cf.is_open {
                        env.summaries.insert(fid, cf.summary.clone());
                    }
                    env.tree_used.insert(fid, cf.tree_used);
                    cache_stats.hits += 1;
                    // A hit whose direct callee was recompiled is an early
                    // cutoff: the callee changed but its summary bytes did
                    // not, so invalidation stopped here.
                    let cutoff = cg.callees(fid).iter().any(|c| recompiled[c.index()]);
                    {
                        let _obs = ipra_obs::scope(&module.funcs[fid].name);
                        let _t = ipra_obs::span("cache.hit");
                        ipra_obs::counter("cache.hit", 1);
                        ipra_obs::metric_counter("cache.lookup", &[("result", "hit")], 1);
                        if cutoff {
                            cache_stats.cutoffs += 1;
                            ipra_obs::counter("cache.cutoff", 1);
                            ipra_obs::metric_counter("cache.lookup", &[("result", "cutoff")], 1);
                        }
                    }
                    results[fid.index()] = Some(FuncResult::Cached(entry, idx));
                }
            }
        }
    }

    // Lowering is embarrassingly parallel: the artifacts are frozen now.
    // Cache hits already carry their lowered code and skip this entirely.
    let fresh_ids: Vec<usize> = (0..n)
        .filter(|&i| matches!(results[i], Some(FuncResult::Fresh(_))))
        .collect();
    let tracing = ipra_obs::is_enabled();
    let mut lowered_parts = run_tasks(jobs, fresh_ids.len(), &pipe.scratch, |out, scratch, t| {
        let fi = fresh_ids[t];
        let fid = FuncId(fi as u32);
        let func = &module.funcs[fid];
        let Some(FuncResult::Fresh(art)) = &results[fi] else {
            unreachable!("fresh_ids only lists fresh results");
        };
        // Shard capture only on sink-less worker threads; inline
        // execution records straight into the driver's sink (see
        // `alloc_component`).
        let capture = tracing && !ipra_obs::is_enabled();
        if capture {
            ipra_obs::enable();
        }
        let mf = {
            let _obs = ipra_obs::scope(&func.name);
            let _t = ipra_obs::span("lower");
            lower_function_with(module, func, target, art, scratch)
        };
        let shard = if capture {
            ipra_obs::disable()
        } else {
            ipra_obs::Trace::default()
        };
        out.push((fi, mf, shard));
    });
    lowered_parts.sort_by_key(|(i, _, _)| *i);
    let mut lowered: Vec<Option<MFunction>> = (0..n).map(|_| None).collect();
    for (i, mf, shard) in lowered_parts {
        ipra_obs::absorb(shard);
        lowered[i] = Some(mf);
    }

    let mut funcs = EntityVec::new();
    let mut summaries = Vec::with_capacity(n);
    let mut clobber_masks = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    // This compile's own analysis-memo window, summed from the per-
    // function hit flags. Diffing the shared memo counters would fold in
    // whatever concurrent compiles through the same pipeline did.
    let mut analysis = AnalysisStats::default();
    for (fid, func) in module.funcs.iter() {
        match results[fid.index()]
            .as_ref()
            .expect("every function compiled")
        {
            FuncResult::Fresh(art) => {
                if art.analysis_hit {
                    analysis.hits += 1;
                } else {
                    analysis.misses += 1;
                }
                funcs.push(lowered[fid.index()].take().expect("fresh function lowered"));
                let a = &art.alloc;
                summaries.push(a.summary.clone());
                clobber_masks.push(if inter && !a.is_open {
                    a.summary.clobbers
                } else {
                    target.regs.default_clobbers()
                });
                let mut memory_vregs = 0;
                let mut split_vregs = 0;
                let mut candidates = 0;
                for lr in &art.ranges.ranges {
                    if !lr.is_candidate() {
                        continue;
                    }
                    candidates += 1;
                    if a.assignment.is_split(lr.vreg) {
                        split_vregs += 1;
                    } else if a.assignment.whole[lr.vreg.index()] == crate::color::VregLoc::Mem {
                        memory_vregs += 1;
                    }
                }
                reports.push(FuncReport {
                    name: func.name.clone(),
                    open_reasons: openness.reasons(fid).to_vec(),
                    forced_open: opts.forced_open.contains(&func.name),
                    used: a.assignment.used,
                    locally_saved: a.locally_saved,
                    shrink_iterations: a.shrink_iterations,
                    memory_vregs,
                    split_vregs,
                    candidate_vregs: candidates,
                });
            }
            FuncResult::Cached(entry, idx) => {
                let c = &entry[*idx];
                funcs.push(c.code.clone());
                summaries.push(c.summary.clone());
                clobber_masks.push(if inter && !c.is_open {
                    c.summary.clobbers
                } else {
                    target.regs.default_clobbers()
                });
                reports.push(FuncReport {
                    name: func.name.clone(),
                    open_reasons: openness.reasons(fid).to_vec(),
                    forced_open: opts.forced_open.contains(&func.name),
                    used: c.used,
                    locally_saved: c.locally_saved,
                    shrink_iterations: c.shrink_iterations,
                    memory_vregs: c.memory_vregs,
                    split_vregs: c.split_vregs,
                    candidate_vregs: c.candidate_vregs,
                });
            }
        }
    }

    // Store every miss back into the cache, keyed by the lookup-time key.
    if let Some(cache) = &mut cache {
        for (key, comp) in &miss_records {
            let entry: Vec<CachedFunc> = comp
                .iter()
                .map(|&fid| {
                    let i = fid.index();
                    let Some(FuncResult::Fresh(art)) = &results[i] else {
                        unreachable!("misses were compiled fresh");
                    };
                    CachedFunc {
                        name: module.funcs[fid].name.clone(),
                        code: funcs[fid].clone(),
                        summary: summaries[i].clone(),
                        tree_used: art.alloc.tree_used,
                        is_open: art.alloc.is_open,
                        used: reports[i].used,
                        locally_saved: reports[i].locally_saved,
                        shrink_iterations: reports[i].shrink_iterations,
                        memory_vregs: reports[i].memory_vregs,
                        split_vregs: reports[i].split_vregs,
                        candidate_vregs: reports[i].candidate_vregs,
                    }
                })
                .collect();
            cache.insert(*key, &entry, module);
            // Mirror the store into the pipeline's entry image so the
            // next recompile through the same pipeline hits in memory.
            pipe.entries.lock().unwrap().insert(*key, Arc::new(entry));
        }
        if !miss_records.is_empty() {
            cache.save();
        }
    }

    CompiledModule {
        mmodule: MModule {
            funcs,
            globals: module.globals.clone(),
            main: module.main,
        },
        summaries,
        clobber_masks,
        reports,
        promotion,
        inline: prep.inline.clone(),
        cache: cache_stats,
        analysis,
    }
}

/// Fans `tasks` indices out across at most `jobs` scoped worker threads.
/// Workers pull indices from a shared counter and append results into
/// their own vector; the concatenation is returned in arbitrary order
/// (callers sort by `FuncId` before consuming). Each worker checks one
/// [`CompileScratch`] out of the pool for its whole run, so per-task
/// buffers are recycled instead of reallocated.
fn run_tasks<T: Send>(
    jobs: usize,
    tasks: usize,
    pool: &ScratchPool,
    work: impl Fn(&mut Vec<T>, &mut CompileScratch, usize) + Sync,
) -> Vec<T> {
    let workers = jobs.min(tasks).max(1);
    if workers == 1 {
        // Narrow wave (or serial request): run inline, no thread overhead.
        let mut out = Vec::new();
        let mut scratch = pool.acquire();
        for t in 0..tasks {
            work(&mut out, &mut scratch, t);
        }
        pool.release(scratch);
        return out;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    let mut scratch = pool.acquire();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks {
                            break;
                        }
                        work(&mut out, &mut scratch, t);
                    }
                    pool.release(scratch);
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    })
}

/// Allocates one SCC on a worker thread. Members of a multi-node SCC
/// observe each other's whole-tree register usage in serial order, so the
/// component replays that order against a private copy of the environment
/// (multi-node SCCs are rare; singletons use the shared snapshot
/// directly). Each member's observability records are collected into a
/// per-function shard for deterministic merging by the driver.
#[allow(clippy::too_many_arguments)]
fn alloc_component(
    module: &Module,
    comp: &[FuncId],
    target: &Target,
    opts: &AllocOptions,
    inter: bool,
    openness: &Openness,
    env: &SummaryEnv,
    profile: Option<&[Vec<u64>]>,
    tracing: bool,
    analyses: &AnalysisCache,
    body_hashes: &[u64],
    scratch: &mut CompileScratch,
    out: &mut Vec<(FuncId, FuncArtifacts, ipra_obs::Trace)>,
) {
    let mut overlay: Option<SummaryEnv> = if comp.len() > 1 {
        Some(env.clone())
    } else {
        None
    };
    for &fid in comp {
        // On a spawned worker the thread has no sink: install one and
        // return its records as a shard. When the task runs inline on the
        // driver thread (narrow wave), the driver's own sink is already
        // installed and records flow into it directly — enabling here
        // would wipe it.
        let capture = tracing && !ipra_obs::is_enabled();
        if capture {
            ipra_obs::enable();
        }
        let art = {
            let _obs = ipra_obs::scope(&module.funcs[fid].name);
            let forced = opts.forced_open.contains(&module.funcs[fid].name);
            let is_open = !inter || forced || openness.is_open(fid);
            allocate_function_with(
                module,
                fid,
                target,
                opts,
                is_open,
                overlay.as_ref().unwrap_or(env),
                profile.map(|p| p[fid.index()].as_slice()),
                analyses,
                body_hashes[fid.index()],
                scratch,
            )
        };
        let shard = if capture {
            ipra_obs::disable()
        } else {
            ipra_obs::Trace::default()
        };
        if let Some(ov) = overlay.as_mut() {
            if inter && !art.alloc.is_open {
                ov.summaries.insert(fid, art.alloc.summary.clone());
            }
            ov.tree_used.insert(fid, art.alloc.tree_used);
        }
        out.push((fid, art, shard));
    }
}

/// Convenience: which functions ended up open under `opts`.
pub fn open_functions(module: &Module, opts: &AllocOptions) -> Vec<FuncId> {
    let cg = CallGraph::build(module);
    let scc = SccInfo::compute(&cg);
    let openness = Openness::compute(module, &cg, &scc);
    module
        .funcs
        .iter()
        .filter(|(id, f)| {
            opts.mode != AllocMode::Inter
                || opts.forced_open.contains(&f.name)
                || openness.is_open(*id)
        })
        .map(|(id, _)| id)
        .collect()
}
