//! The one-pass inter-procedural driver (paper §2, §7).
//!
//! Processes the procedures of a module in a depth-first (bottom-up)
//! traversal of the call graph, so every closed procedure's register-usage
//! summary is available at its call sites when the callers are allocated.
//! Open procedures (paper §3) fall back to the default convention. The same
//! driver also runs the intra-procedural and no-allocation configurations,
//! which simply never consult summaries.
//!
//! # Wave scheduling
//!
//! The bottom-up invariant only orders a function after its callees;
//! functions whose callees are all summarized are mutually independent.
//! The driver therefore partitions the SCC condensation into levels
//! ([`SccInfo::levels`]) and fans each level out across scoped worker
//! threads when [`AllocOptions::jobs`] resolves to more than one. The unit
//! of work is the *component*, not the function: members of a multi-node
//! SCC see each other's whole-tree usage in serial processing order, so a
//! worker replays that order against a private copy of the environment.
//! Workers collect their own observability shards; the driver merges
//! summaries and shards in `FuncId` order, making output, reports, and
//! traces independent of thread scheduling — bit-identical to `jobs = 1`.

use std::sync::atomic::{AtomicUsize, Ordering};

use ipra_callgraph::{CallGraph, OpenReason, Openness, SccInfo};
use ipra_ir::{EntityVec, FuncId, Module};
use ipra_machine::{MFunction, MModule, RegMask, Target};

use crate::alloc::{allocate_function, FuncArtifacts, SummaryEnv};
use crate::config::{AllocMode, AllocOptions};
use crate::lower::lower_function;
use crate::normalize::normalize_entries;
use crate::promote::{promote_globals, PromotionStats};
use crate::summary::FuncSummary;

/// Per-function diagnostics of one compilation.
#[derive(Clone, Debug)]
pub struct FuncReport {
    /// Function name.
    pub name: String,
    /// Whether the function was treated as open, and why.
    pub open_reasons: Vec<OpenReason>,
    /// Whether forced open by [`AllocOptions::forced_open`].
    pub forced_open: bool,
    /// Registers the assignment uses.
    pub used: RegMask,
    /// Callee-saved registers saved locally.
    pub locally_saved: RegMask,
    /// Shrink-wrap range-extension iterations.
    pub shrink_iterations: u32,
    /// Virtual registers left fully in memory (referenced ones only).
    pub memory_vregs: usize,
    /// Virtual registers split between registers and memory.
    pub split_vregs: usize,
    /// Total referenced virtual registers.
    pub candidate_vregs: usize,
}

/// A fully compiled module.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// Executable machine code.
    pub mmodule: MModule,
    /// Final summaries (default summaries for open procedures).
    pub summaries: Vec<FuncSummary>,
    /// Per-function clobber masks for the simulator's convention checker.
    pub clobber_masks: Vec<RegMask>,
    /// Per-function diagnostics.
    pub reports: Vec<FuncReport>,
    /// Global-promotion statistics (zero when the pass is off).
    pub promotion: PromotionStats,
}

/// Compiles a module under the given options.
pub fn compile_module(module: &Module, target: &Target, opts: &AllocOptions) -> CompiledModule {
    compile_module_with_profile(module, target, opts, None)
}

/// Compiles with measured per-`[function][block]` execution counts feeding
/// the priority function's weights — the profile feedback the paper lists
/// as future work ("knowledge of such profile data can enable the register
/// allocator to distribute saves/restores more optimally").
pub fn compile_module_with_profile(
    module: &Module,
    target: &Target,
    opts: &AllocOptions,
    profile: Option<&[Vec<u64>]>,
) -> CompiledModule {
    let mut module = module.clone();
    // Prologue code must run once per invocation, so entries may not be
    // branch targets (front ends guarantee this; generated IR may not).
    normalize_entries(&mut module);
    let promotion = if opts.promote_globals {
        promote_globals(&mut module)
    } else {
        PromotionStats::default()
    };
    ipra_obs::counter("promote.promoted", promotion.promoted as u64);
    ipra_obs::counter(
        "promote.accesses_rewritten",
        promotion.accesses_rewritten as u64,
    );

    let cg = CallGraph::build(&module);
    let scc = SccInfo::compute(&cg);
    let openness = Openness::compute(&module, &cg, &scc);
    scc.record_stats();
    openness.record_stats();

    let inter = opts.mode == AllocMode::Inter;
    let n = module.funcs.len();
    let jobs = opts.effective_jobs();
    let mut env = SummaryEnv::default();
    let mut artifacts: Vec<Option<FuncArtifacts>> = (0..n).map(|_| None).collect();

    if jobs <= 1 {
        // Serial path: one pass over the flat bottom-up order.
        for fid in scc.bottom_up_order() {
            let _obs = ipra_obs::scope(&module.funcs[fid].name);
            let forced = opts.forced_open.contains(&module.funcs[fid].name);
            let is_open = !inter || forced || openness.is_open(fid);
            let art = allocate_function(
                &module,
                fid,
                target,
                opts,
                is_open,
                &env,
                profile.map(|p| p[fid.index()].as_slice()),
            );
            if inter && !is_open {
                env.summaries.insert(fid, art.alloc.summary.clone());
            }
            env.tree_used.insert(fid, art.alloc.tree_used);
            artifacts[fid.index()] = Some(art);
        }
    } else {
        // Wave scheduler: every component of a level has all its callees
        // summarized, so a whole level fans out at once. `env` is frozen
        // (shared read-only) while a wave runs and updated between waves
        // in FuncId order, so results match the serial path bit for bit.
        let tracing = ipra_obs::is_enabled();
        for wave in scc.levels(&cg) {
            let comps: Vec<&[FuncId]> = wave
                .iter()
                .map(|&ci| scc.components[ci].as_slice())
                .collect();
            let mut results = run_tasks(jobs, comps.len(), |out, t| {
                alloc_component(
                    &module, comps[t], target, opts, inter, &openness, &env, profile, tracing, out,
                );
            });
            results.sort_by_key(|(fid, _, _)| fid.index());
            for (fid, art, shard) in results {
                if inter && !art.alloc.is_open {
                    env.summaries.insert(fid, art.alloc.summary.clone());
                }
                env.tree_used.insert(fid, art.alloc.tree_used);
                ipra_obs::absorb(shard);
                artifacts[fid.index()] = Some(art);
            }
        }
    }

    // Lowering is embarrassingly parallel: the artifacts are frozen now.
    let lowered: Vec<MFunction> = if jobs <= 1 {
        module
            .funcs
            .iter()
            .map(|(fid, func)| {
                let art = artifacts[fid.index()]
                    .as_ref()
                    .expect("every function allocated");
                let _obs = ipra_obs::scope(&func.name);
                let _t = ipra_obs::span("lower");
                lower_function(&module, func, target, art)
            })
            .collect()
    } else {
        let tracing = ipra_obs::is_enabled();
        let mut results = run_tasks(jobs, n, |out, t| {
            let fid = FuncId(t as u32);
            let func = &module.funcs[fid];
            let art = artifacts[fid.index()]
                .as_ref()
                .expect("every function allocated");
            // Shard capture only on sink-less worker threads; inline
            // execution records straight into the driver's sink (see
            // `alloc_component`).
            let capture = tracing && !ipra_obs::is_enabled();
            if capture {
                ipra_obs::enable();
            }
            let mf = {
                let _obs = ipra_obs::scope(&func.name);
                let _t = ipra_obs::span("lower");
                lower_function(&module, func, target, art)
            };
            let shard = if capture {
                ipra_obs::disable()
            } else {
                ipra_obs::Trace::default()
            };
            out.push((t, mf, shard));
        });
        results.sort_by_key(|(i, _, _)| *i);
        results
            .into_iter()
            .map(|(_, mf, shard)| {
                ipra_obs::absorb(shard);
                mf
            })
            .collect()
    };

    let mut funcs = EntityVec::new();
    let mut summaries = Vec::with_capacity(n);
    let mut clobber_masks = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    for ((fid, func), mf) in module.funcs.iter().zip(lowered) {
        let art = artifacts[fid.index()]
            .as_ref()
            .expect("every function allocated");
        funcs.push(mf);

        let a = &art.alloc;
        summaries.push(a.summary.clone());
        clobber_masks.push(if inter && !a.is_open {
            a.summary.clobbers
        } else {
            target.regs.default_clobbers()
        });
        let mut memory_vregs = 0;
        let mut split_vregs = 0;
        let mut candidates = 0;
        for lr in &art.ranges.ranges {
            if !lr.is_candidate() {
                continue;
            }
            candidates += 1;
            if a.assignment.is_split(lr.vreg) {
                split_vregs += 1;
            } else if a.assignment.whole[lr.vreg.index()] == crate::color::VregLoc::Mem {
                memory_vregs += 1;
            }
        }
        reports.push(FuncReport {
            name: func.name.clone(),
            open_reasons: openness.reasons(fid).to_vec(),
            forced_open: opts.forced_open.contains(&func.name),
            used: a.assignment.used,
            locally_saved: a.locally_saved,
            shrink_iterations: a.shrink_iterations,
            memory_vregs,
            split_vregs,
            candidate_vregs: candidates,
        });
    }

    CompiledModule {
        mmodule: MModule {
            funcs,
            globals: module.globals.clone(),
            main: module.main,
        },
        summaries,
        clobber_masks,
        reports,
        promotion,
    }
}

/// Fans `tasks` indices out across at most `jobs` scoped worker threads.
/// Workers pull indices from a shared counter and append results into
/// their own vector; the concatenation is returned in arbitrary order
/// (callers sort by `FuncId` before consuming).
fn run_tasks<T: Send>(
    jobs: usize,
    tasks: usize,
    work: impl Fn(&mut Vec<T>, usize) + Sync,
) -> Vec<T> {
    let workers = jobs.min(tasks).max(1);
    if workers == 1 {
        // Narrow wave (or serial request): run inline, no thread overhead.
        let mut out = Vec::new();
        for t in 0..tasks {
            work(&mut out, t);
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks {
                            break;
                        }
                        work(&mut out, t);
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    })
}

/// Allocates one SCC on a worker thread. Members of a multi-node SCC
/// observe each other's whole-tree register usage in serial order, so the
/// component replays that order against a private copy of the environment
/// (multi-node SCCs are rare; singletons use the shared snapshot
/// directly). Each member's observability records are collected into a
/// per-function shard for deterministic merging by the driver.
#[allow(clippy::too_many_arguments)]
fn alloc_component(
    module: &Module,
    comp: &[FuncId],
    target: &Target,
    opts: &AllocOptions,
    inter: bool,
    openness: &Openness,
    env: &SummaryEnv,
    profile: Option<&[Vec<u64>]>,
    tracing: bool,
    out: &mut Vec<(FuncId, FuncArtifacts, ipra_obs::Trace)>,
) {
    let mut overlay: Option<SummaryEnv> = if comp.len() > 1 {
        Some(env.clone())
    } else {
        None
    };
    for &fid in comp {
        // On a spawned worker the thread has no sink: install one and
        // return its records as a shard. When the task runs inline on the
        // driver thread (narrow wave), the driver's own sink is already
        // installed and records flow into it directly — enabling here
        // would wipe it.
        let capture = tracing && !ipra_obs::is_enabled();
        if capture {
            ipra_obs::enable();
        }
        let art = {
            let _obs = ipra_obs::scope(&module.funcs[fid].name);
            let forced = opts.forced_open.contains(&module.funcs[fid].name);
            let is_open = !inter || forced || openness.is_open(fid);
            allocate_function(
                module,
                fid,
                target,
                opts,
                is_open,
                overlay.as_ref().unwrap_or(env),
                profile.map(|p| p[fid.index()].as_slice()),
            )
        };
        let shard = if capture {
            ipra_obs::disable()
        } else {
            ipra_obs::Trace::default()
        };
        if let Some(ov) = overlay.as_mut() {
            if inter && !art.alloc.is_open {
                ov.summaries.insert(fid, art.alloc.summary.clone());
            }
            ov.tree_used.insert(fid, art.alloc.tree_used);
        }
        out.push((fid, art, shard));
    }
}

/// Convenience: which functions ended up open under `opts`.
pub fn open_functions(module: &Module, opts: &AllocOptions) -> Vec<FuncId> {
    let cg = CallGraph::build(module);
    let scc = SccInfo::compute(&cg);
    let openness = Openness::compute(module, &cg, &scc);
    module
        .funcs
        .iter()
        .filter(|(id, f)| {
            opts.mode != AllocMode::Inter
                || opts.forced_open.contains(&f.name)
                || openness.is_open(*id)
        })
        .map(|(id, _)| id)
        .collect()
}
