//! Per-function register allocation: coloring + save/restore planning +
//! call-site planning + summary construction.
//!
//! This is where the paper's pieces meet: the priority coloring of §2, the
//! open/closed summary protocol of §3, parameter binding of §4, shrink-wrap
//! placement of §5 and the propagation rule of §6.

use std::collections::HashMap;
use std::sync::Arc;

use ipra_cfg::{Cfg, Liveness, LoopInfo};
use ipra_ir::{hash_function, FuncId, InstLoc, Module, Operand};
use ipra_machine::{PReg, RegMask, Target};

use crate::analysis::{AnalysisCache, FuncAnalyses};
use crate::color::{color_with, Assignment, VregLoc};
use crate::config::{AllocMode, AllocOptions};
use crate::priority::PriorityCtx;
use crate::ranges::{BlockWeights, RangeData};
use crate::scratch::{CompileScratch, MaskPool};
use crate::shrinkwrap::{shrink_wrap_with, SavePlan};
use crate::summary::{FuncSummary, ParamLoc};

/// What the caller must do at one call site.
#[derive(Clone, Debug)]
pub struct CallPlan {
    /// Location of the call instruction.
    pub loc: InstLoc,
    /// Registers holding values live across the call that the callee (or
    /// the argument setup) clobbers: saved before, restored after.
    pub save_around: RegMask,
    /// Where each outgoing argument goes (the callee's convention).
    pub arg_locs: Vec<ParamLoc>,
    /// Number of stack-passed arguments.
    pub num_stack_args: u32,
    /// Registers the call sequence may destroy: the callee's clobber mask,
    /// the argument-target registers and the return register.
    pub danger: RegMask,
}

/// Complete allocation decision for one function.
#[derive(Clone, Debug)]
pub struct FuncAllocation {
    /// Register/memory assignment per vreg (split-aware).
    pub assignment: Assignment,
    /// Callee-saved registers this function saves/restores locally.
    pub locally_saved: RegMask,
    /// Placement of the local saves/restores.
    pub save_plan: SavePlan,
    /// One plan per call site (aligned with
    /// [`RangeData::call_sites`]).
    pub call_plans: Vec<CallPlan>,
    /// How this function's own parameters arrive.
    pub param_locs: Vec<ParamLoc>,
    /// The summary published to callers (meaningful for closed procedures).
    pub summary: FuncSummary,
    /// Registers used anywhere in this function's call tree (for the Fig. 1
    /// tie-break in ancestors).
    pub tree_used: RegMask,
    /// Whether the function was treated as open.
    pub is_open: bool,
    /// Shrink-wrap range-extension iterations (0 when disabled).
    pub shrink_iterations: u32,
}

/// Allocation plus the analyses lowering needs.
#[derive(Clone, Debug)]
pub struct FuncArtifacts {
    /// The function's memoized analyses (shared with the
    /// [`AnalysisCache`], so cloning artifacts never copies them).
    pub analyses: Arc<FuncAnalyses>,
    /// Whether [`FuncArtifacts::analyses`] came from the memo. Summed by
    /// the driver into the compile's own hit/miss window — the shared
    /// memo counters can't be diffed for that, since concurrent compiles
    /// through one pipeline interleave on them.
    pub analysis_hit: bool,
    /// Ranges and call sites.
    pub ranges: RangeData,
    /// The allocation.
    pub alloc: FuncAllocation,
}

impl FuncArtifacts {
    /// Control-flow graph.
    pub fn cfg(&self) -> &Cfg {
        &self.analyses.cfg
    }

    /// Loop nesting.
    pub fn loops(&self) -> &LoopInfo {
        &self.analyses.loops
    }

    /// Per-block liveness.
    pub fn liveness(&self) -> &Liveness {
        &self.analyses.liveness
    }
}

/// Per-callee information the allocator consumes: summaries of processed
/// closed procedures, plus their whole-tree register usage.
#[derive(Clone, Debug, Default)]
pub struct SummaryEnv {
    /// Summaries of processed *closed* functions.
    pub summaries: HashMap<FuncId, FuncSummary>,
    /// Whole-call-tree register usage of processed functions (closed or
    /// open), for the tie-break preference.
    pub tree_used: HashMap<FuncId, RegMask>,
}

/// Allocates registers for one function. `profile` optionally supplies
/// measured per-block execution counts (profile feedback, the paper's §8
/// future work); otherwise static loop-based weights are used.
pub fn allocate_function(
    module: &Module,
    fid: FuncId,
    target: &Target,
    opts: &AllocOptions,
    is_open: bool,
    env: &SummaryEnv,
    profile: Option<&[u64]>,
) -> FuncArtifacts {
    allocate_function_with(
        module,
        fid,
        target,
        opts,
        is_open,
        env,
        profile,
        &AnalysisCache::default(),
        hash_function(module, fid),
        &mut CompileScratch::default(),
    )
}

/// [`allocate_function`] drawing the function's analyses from a shared
/// [`AnalysisCache`] memo (keyed by `body_hash`, see
/// [`ipra_ir::hash_function`]) and its transient buffers from the
/// caller's [`CompileScratch`]. The pipeline driver threads both through
/// every job; the plain entry point above supplies one-shot instances.
#[allow(clippy::too_many_arguments)]
pub fn allocate_function_with(
    module: &Module,
    fid: FuncId,
    target: &Target,
    opts: &AllocOptions,
    is_open: bool,
    env: &SummaryEnv,
    profile: Option<&[u64]>,
    analyses: &AnalysisCache,
    body_hash: u64,
    scratch: &mut CompileScratch,
) -> FuncArtifacts {
    let func = &module.funcs[fid];
    let ranges_span = ipra_obs::span("ranges");
    let (analyses, memo_hit) = analyses.get_or_compute(body_hash, func);
    let result = if memo_hit { "hit" } else { "miss" };
    ipra_obs::counter(
        if memo_hit {
            "analysis.hit"
        } else {
            "analysis.miss"
        },
        1,
    );
    ipra_obs::metric_counter("analysis.lookup", &[("result", result)], 1);
    let cfg = &analyses.cfg;
    let loops = &analyses.loops;
    let liveness = &analyses.liveness;
    let weights = match profile {
        Some(counts) => BlockWeights::from_profile(cfg, loops, counts),
        None => BlockWeights::from_loops(cfg, loops),
    };
    let ranges = RangeData::build_with(func, cfg, liveness, &weights, scratch);
    drop(ranges_span);

    let inter = opts.mode == AllocMode::Inter;

    let priority_span = ipra_obs::span("priority");

    // Resolve each call site: clobber mask + callee argument convention.
    let mut site_clobbers: Vec<RegMask> = Vec::with_capacity(ranges.call_sites.len());
    let mut site_args: Vec<Vec<ParamLoc>> = Vec::with_capacity(ranges.call_sites.len());
    for site in &ranges.call_sites {
        let summary = site
            .callee
            .filter(|_| inter)
            .and_then(|callee| env.summaries.get(&callee));
        match summary {
            Some(s) => {
                site_clobbers.push(s.clobbers);
                site_args.push(s.param_locs.clone());
            }
            None => {
                let nargs = match func.inst(site.loc) {
                    ipra_ir::Inst::Call { args, .. } => args.len(),
                    _ => unreachable!("call site points at a call"),
                };
                let d = FuncSummary::default_for(&target.regs, nargs);
                site_clobbers.push(d.clobbers);
                site_args.push(d.param_locs);
            }
        }
    }

    // Register preference from the call tree below (Fig. 1: minimize the
    // tree's register footprint).
    let mut subtree_used = RegMask::EMPTY;
    for site in &ranges.call_sites {
        if let Some(c) = site.callee {
            if let Some(&m) = env.tree_used.get(&c) {
                subtree_used |= m;
            }
        }
    }

    // Whether this function's parameters use the default convention.
    let custom_params = inter && !is_open && opts.custom_param_regs;

    // Hints: parameter homes and §4 outgoing-argument bindings.
    let mut hints: Vec<Vec<(PReg, f64)>> = vec![Vec::new(); func.num_vregs()];
    let entry_weight = weights.weight(func.entry).max(1e-6);
    if !custom_params {
        for (i, &p) in func.params.iter().enumerate() {
            if let Some(&r) = target.regs.param_regs().get(i) {
                if target.regs.allocatable().contains(&r) {
                    hints[p.index()].push((r, entry_weight * target.cost.alu as f64));
                }
            }
        }
    }
    for (si, site) in ranges.call_sites.iter().enumerate() {
        let ipra_ir::Inst::Call { args, .. } = func.inst(site.loc) else {
            continue;
        };
        for (j, arg) in args.iter().enumerate() {
            let (Operand::Reg(v), Some(ParamLoc::Reg(r))) = (arg, site_args[si].get(j)) else {
                continue;
            };
            if target.regs.allocatable().contains(r) {
                hints[v.index()].push((*r, site.weight * target.cost.alu as f64));
            }
        }
    }

    drop(priority_span);

    // Color.
    let color_span = ipra_obs::span("color");
    let assignment = if opts.mode == AllocMode::NoAlloc {
        // Every candidate is trivially a memory decision under -O0.
        for lr in ranges.ranges.iter().filter(|lr| lr.is_candidate()) {
            ipra_obs::event("alloc.decision", || {
                vec![
                    ("vreg", ipra_obs::TraceValue::Int(lr.vreg.index() as i64)),
                    ("kind", ipra_obs::TraceValue::Str("mem".into())),
                    ("priority", ipra_obs::TraceValue::Float(0.0)),
                ]
            });
        }
        Assignment {
            whole: vec![VregLoc::Mem; func.num_vregs()],
            split: vec![None; func.num_vregs()],
            used: RegMask::EMPTY,
        }
    } else {
        let ctx = PriorityCtx {
            target,
            ranges: &ranges,
            site_clobbers: &site_clobbers,
            charge_callee_saved_entry: !inter || is_open,
            entry_weight,
            subtree_used,
            hints: &hints,
            weights: &weights,
        };
        color_with(&ctx, cfg, liveness, opts.split_ranges, scratch)
    };
    drop(color_span);

    // My own parameter arrival convention.
    let mut param_locs = Vec::with_capacity(func.params.len());
    if custom_params {
        let mut next_stack = 0u32;
        let entry_in = &liveness.live_in[func.entry.index()];
        for &p in &func.params {
            // A parameter whose incoming value is dead on arrival (never
            // read before being overwritten) needs no transport at all —
            // and must not claim a register, since dead-on-arrival
            // parameters do not interfere with each other.
            if !entry_in.contains(p.index()) {
                param_locs.push(ParamLoc::Ignored);
                continue;
            }
            match assignment.loc(p, func.entry) {
                VregLoc::Reg(r) => param_locs.push(ParamLoc::Reg(r)),
                VregLoc::Mem => {
                    param_locs.push(ParamLoc::Stack(next_stack));
                    next_stack += 1;
                }
            }
        }
    } else {
        let d = FuncSummary::default_for(&target.regs, func.params.len());
        param_locs = d.param_locs;
    }
    let mut param_target_regs = RegMask::EMPTY;
    for l in &param_locs {
        if let ParamLoc::Reg(r) = l {
            param_target_regs.insert(*r);
        }
    }

    // Local save set and placement.
    let cs = target.regs.callee_saved_mask();
    let used = assignment.used;
    let clobber_union = site_clobbers.iter().fold(RegMask::EMPTY, |a, &m| a | m);

    // APP: block-level appearance of each register (assignment occupancy
    // plus, per register, the calls whose callee clobbers it — the local
    // save region must span those calls to actually protect the original
    // value).
    let nb = func.num_blocks();
    let mut occupancy = scratch.masks.take(nb, RegMask::EMPTY);
    for lr in &ranges.ranges {
        match &assignment.split[lr.vreg.index()] {
            Some(map) => {
                // Determinism: the per-vreg split map is a HashMap, but the
                // loop body is a commutative mask insert, so its randomized
                // iteration order cannot affect the resulting occupancy.
                for (&b, &r) in map {
                    occupancy[b].insert(r);
                }
            }
            None => {
                if let VregLoc::Reg(r) = assignment.whole[lr.vreg.index()] {
                    for b in lr.blocks.iter() {
                        occupancy[b].insert(r);
                    }
                }
            }
        }
    }

    let app_for = |regs: RegMask, masks: &mut MaskPool| -> Vec<RegMask> {
        let mut app = masks.take(occupancy.len(), RegMask::EMPTY);
        for (a, m) in app.iter_mut().zip(occupancy.iter()) {
            *a = m.intersect(regs);
        }
        for (si, site) in ranges.call_sites.iter().enumerate() {
            let m = site_clobbers[si].intersect(regs);
            app[site.loc.block.index()] |= m;
        }
        app
    };

    let shrink_span = ipra_obs::span("shrink_wrap");
    let (locally_saved, save_plan, shrink_iterations);
    // Registers whose local save landed at the entry and was therefore
    // propagated up the call graph instead (§6) — fed to the penalty
    // ledger below.
    let mut propagated = RegMask::EMPTY;
    if opts.mode == AllocMode::NoAlloc {
        locally_saved = RegMask::EMPTY;
        save_plan = SavePlan::at_entry_exits(cfg, RegMask::EMPTY);
        shrink_iterations = 0;
    } else if !inter || is_open {
        // Intra-procedural or open: every callee-saved register used here —
        // or clobbered below a call — must be protected locally (§3: "when
        // a callee-saved register is used by the parent or any of its
        // children, the parent must save it on entry and restore it on
        // exit").
        let candidates = RegMask(cs.0 & (used | clobber_union).0 & !param_target_regs.0);
        if opts.shrink_wrap {
            let app = app_for(candidates, &mut scratch.masks);
            let plan = shrink_wrap_with(cfg, loops, &app, &mut scratch.masks);
            scratch.masks.give(app);
            shrink_iterations = plan.iterations;
            save_plan = plan;
        } else {
            save_plan = SavePlan::at_entry_exits(cfg, candidates);
            shrink_iterations = 0;
        }
        locally_saved = candidates;
    } else if !opts.shrink_wrap {
        // Closed, inter-procedural, no shrink-wrap (configuration B): every
        // save propagates to the ancestors (§3).
        locally_saved = RegMask::EMPTY;
        save_plan = SavePlan::at_entry_exits(cfg, RegMask::EMPTY);
        shrink_iterations = 0;
    } else {
        // Closed + shrink-wrap: the §6 rule. Consider locally protecting
        // each callee-saved register used here; keep the protection only if
        // its save does NOT land at the entry, otherwise propagate up.
        let consider = RegMask(cs.0 & used.0 & !param_target_regs.0);
        let app = app_for(consider, &mut scratch.masks);
        let plan = shrink_wrap_with(cfg, loops, &app, &mut scratch.masks);
        scratch.masks.give(app);
        shrink_iterations = plan.iterations;
        propagated = RegMask(consider.0 & plan.entry_spanning.0);
        let keep = RegMask(consider.0 & !plan.entry_spanning.0);
        // The analysis is bitwise-independent per register, so dropping the
        // propagated registers from every mask yields the plan for `keep`.
        let strip =
            |v: &[RegMask]| -> Vec<RegMask> { v.iter().map(|m| m.intersect(keep)).collect() };
        save_plan = SavePlan {
            save_at: strip(&plan.save_at),
            restore_at: strip(&plan.restore_at),
            entry_spanning: RegMask::EMPTY,
            iterations: plan.iterations,
        };
        locally_saved = keep;
    }
    drop(shrink_span);
    scratch.masks.give(occupancy);
    ipra_obs::counter("shrink_wrap.iterations", shrink_iterations as u64);

    // Summary.
    let summary = if inter && !is_open && opts.mode != AllocMode::NoAlloc {
        let mut clobbers = RegMask((used | clobber_union).0 & !locally_saved.0);
        clobbers.insert(target.regs.ret_reg());
        clobbers |= param_target_regs;
        FuncSummary {
            clobbers,
            param_locs: param_locs.clone(),
            is_default: false,
        }
    } else {
        FuncSummary::default_for(&target.regs, func.params.len())
    };

    let tree_used = {
        let mut m = used | subtree_used | locally_saved;
        for (si, site) in ranges.call_sites.iter().enumerate() {
            if site.callee.is_none_or(|c| !env.tree_used.contains_key(&c)) {
                m |= site_clobbers[si];
            }
        }
        m
    };

    // Call plans.
    let mut call_plans: Vec<CallPlan> = ranges
        .call_sites
        .iter()
        .enumerate()
        .map(|(si, site)| {
            let mut arg_targets = RegMask::EMPTY;
            for l in &site_args[si] {
                if let ParamLoc::Reg(r) = l {
                    arg_targets.insert(*r);
                }
            }
            let danger = site_clobbers[si] | arg_targets | RegMask::single(target.regs.ret_reg());
            CallPlan {
                loc: site.loc,
                save_around: RegMask::EMPTY,
                arg_locs: site_args[si].clone(),
                num_stack_args: site_args[si]
                    .iter()
                    .map(|l| match l {
                        ParamLoc::Stack(i) => i + 1,
                        ParamLoc::Reg(_) | ParamLoc::Ignored => 0,
                    })
                    .max()
                    .unwrap_or(0),
                danger,
            }
        })
        .collect();

    // Fill save_around: registers of values live across each call that the
    // call may destroy.
    for lr in &ranges.ranges {
        for &site in &lr.spans_calls {
            let site = site as usize;
            let block = ranges.call_sites[site].loc.block;
            if let VregLoc::Reg(r) = assignment.loc(lr.vreg, block) {
                if call_plans[site].danger.contains(r) {
                    call_plans[site].save_around.insert(r);
                }
            }
        }
    }

    // Static side of the per-edge penalty ledger: what this compile
    // *planned* to pay at each call edge (caller-side saves around call
    // sites) and at this function's own boundary (prologue saves, §6
    // shrink-wrap placement). The labeled metrics merge additively across
    // wave shards, so multiple sites calling the same callee accumulate
    // into one (caller, callee) instance. Cache-replayed functions skip
    // allocation entirely and record nothing — the ledger describes work
    // performed by *this* compile.
    if ipra_obs::is_enabled() {
        for (si, site) in ranges.call_sites.iter().enumerate() {
            let saved = call_plans[si].save_around.count() as u64;
            if saved > 0 {
                let callee = site
                    .callee
                    .map_or("<indirect>", |c| module.funcs[c].name.as_str());
                ipra_obs::metric_counter(
                    "penalty.callsite.saved_regs",
                    &[("caller", &func.name), ("callee", callee)],
                    saved,
                );
            }
        }
        if locally_saved.count() > 0 {
            ipra_obs::metric_counter(
                "penalty.prologue.saved_regs",
                &[("func", &func.name)],
                locally_saved.count() as u64,
            );
            let off_entry = RegMask(locally_saved.0 & !save_plan.save_at[cfg.entry.index()].0);
            if off_entry.count() > 0 {
                ipra_obs::metric_counter(
                    "shrink_wrap.off_entry_regs",
                    &[("func", &func.name)],
                    off_entry.count() as u64,
                );
            }
        }
        if propagated.count() > 0 {
            ipra_obs::metric_counter(
                "shrink_wrap.propagated_regs",
                &[("func", &func.name)],
                propagated.count() as u64,
            );
        }
    }

    FuncArtifacts {
        analyses: Arc::clone(&analyses),
        analysis_hit: memo_hit,
        ranges,
        alloc: FuncAllocation {
            assignment,
            locally_saved,
            save_plan,
            call_plans,
            param_locs,
            summary,
            tree_used,
            is_open,
            shrink_iterations,
        },
    }
}
