//! Shrink-wrapping of callee-saved register saves/restores (paper §5).
//!
//! Implements the paper's bit-vector equations (3.1)–(3.6): anticipability
//! (`ANT`) and availability (`AV`) of register *appearances* (`APP`)
//! determine the earliest correct save points and latest correct restore
//! points. Two refinements from the paper are included:
//!
//! * **loop constraint** — a register used anywhere in a loop has its `APP`
//!   extended to the whole loop, so a shrink-wrapped region never sits
//!   inside a loop (which would multiply the save/restore per iteration);
//! * **range extension** — instead of splitting control-flow edges, `APP`
//!   is iteratively propagated to blocks whose control-flow shape would
//!   otherwise cause double saves, unprotected uses, missing restores or
//!   saved-at-exit paths (the Fig. 2 situation). The iteration count is
//!   reported; the paper observes one to two iterations in practice.
//!
//! All registers are processed at once as bits of a [`RegMask`].

use ipra_cfg::{Cfg, LoopInfo};
use ipra_ir::BlockId;
use ipra_machine::RegMask;

use crate::scratch::MaskPool;

/// Save/restore placement for one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavePlan {
    /// Registers to save at the *entry* of each block.
    pub save_at: Vec<RegMask>,
    /// Registers to restore at the *exit* of each block (before the
    /// terminator).
    pub restore_at: Vec<RegMask>,
    /// Registers whose save landed at the function entry block — the §6
    /// condition for propagating the save up the call graph instead.
    pub entry_spanning: RegMask,
    /// Range-extension iterations used (paper: "from one to two").
    pub iterations: u32,
}

impl SavePlan {
    /// Number of `(block, register)` save placements in the plan.
    pub fn save_points(&self) -> u32 {
        self.save_at.iter().map(|m| m.count()).sum()
    }

    /// Number of `(block, register)` restore placements in the plan.
    pub fn restore_points(&self) -> u32 {
        self.restore_at.iter().map(|m| m.count()).sum()
    }
}

impl SavePlan {
    /// A plan that saves everything at entry and restores at every exit —
    /// the classic convention, used when shrink-wrapping is disabled.
    pub fn at_entry_exits(cfg: &Cfg, regs: RegMask) -> SavePlan {
        let nb = cfg.num_blocks();
        let mut save_at = vec![RegMask::EMPTY; nb];
        let mut restore_at = vec![RegMask::EMPTY; nb];
        save_at[cfg.entry.index()] = regs;
        for &e in &cfg.exits {
            restore_at[e.index()] = regs;
        }
        SavePlan {
            save_at,
            restore_at,
            entry_spanning: regs,
            iterations: 0,
        }
    }
}

/// Computes shrink-wrapped save/restore placement.
///
/// `app` gives, per block, the registers that appear in that block (already
/// restricted to the registers needing placement). Returns the placement
/// plan; [`verify_plan`] holds on the result by construction (checked in
/// debug builds).
/// # Panics
///
/// Panics if the entry block has predecessors (run
/// [`normalize_entries`](crate::normalize::normalize_entries) first): entry
/// saves must execute exactly once per invocation.
pub fn shrink_wrap(cfg: &Cfg, loops: &LoopInfo, app: &[RegMask]) -> SavePlan {
    shrink_wrap_with(cfg, loops, app, &mut MaskPool::default())
}

/// [`shrink_wrap`] running its dataflow vectors (extended `APP` copies,
/// `ANT`/`AV`, saved-state) out of the caller's [`MaskPool`]. Only the
/// returned plan's own `save_at`/`restore_at` vectors are freshly
/// allocated; every intermediate is recycled.
pub fn shrink_wrap_with(
    cfg: &Cfg,
    loops: &LoopInfo,
    app: &[RegMask],
    masks: &mut MaskPool,
) -> SavePlan {
    let plan = shrink_wrap_inner(cfg, loops, app, masks);
    // Flight-recorder distributions of plan shape: placement points per
    // solve and range-extension rounds. Histograms merge bucket-wise
    // across wave shards, so the module-level picture is scheduling-
    // independent.
    if ipra_obs::is_enabled() {
        ipra_obs::metric_observe(
            "shrink_wrap.save_points",
            &[],
            u64::from(plan.save_points()),
        );
        ipra_obs::metric_observe(
            "shrink_wrap.restore_points",
            &[],
            u64::from(plan.restore_points()),
        );
        ipra_obs::metric_observe("shrink_wrap.rounds", &[], u64::from(plan.iterations));
    }
    plan
}

fn shrink_wrap_inner(
    cfg: &Cfg,
    loops: &LoopInfo,
    app_in: &[RegMask],
    masks: &mut MaskPool,
) -> SavePlan {
    let nb = cfg.num_blocks();
    assert_eq!(app_in.len(), nb);
    assert!(
        cfg.preds(cfg.entry).is_empty(),
        "entry block must not be a branch target (normalize_entries)"
    );
    let mut app = masks.take(nb, RegMask::EMPTY);
    app.copy_from_slice(app_in);
    let mut app_orig = masks.take(nb, RegMask::EMPTY);
    app_orig.copy_from_slice(app_in);

    // Loop constraint: propagate APP over entire loops.
    apply_loop_constraint(loops, &mut app);

    let mut iterations = 0u32;
    let plan = loop {
        // One span per range-extension round, nested under the phase span,
        // so rounds can be costed individually in the trace.
        let _round = ipra_obs::span("shrink_wrap.round");
        iterations += 1;
        let sol = solve_placement(cfg, &app, masks);
        let problems = find_problems(cfg, &app_orig, &sol);
        if problems.is_empty() {
            debug_assert_eq!(verify_plan(cfg, &app_orig, &sol.plan), Ok(()));
            break retire(sol, masks);
        }
        let mut changed = false;
        for (block, mask) in problems {
            let b = block.index();
            let new = app[b] | mask;
            if new != app[b] {
                app[b] = new;
                changed = true;
            }
        }
        retire_all(sol, masks);
        if !changed || iterations > (nb as u32 + 2) {
            // Escape hatch: place the still-problematic registers with the
            // classic convention. In practice extension converges in one or
            // two iterations (§5); this bound only protects termination.
            let sol = solve_placement(cfg, &app, masks);
            let mut bad = RegMask::EMPTY;
            for (_, mask) in find_problems(cfg, &app_orig, &sol) {
                bad |= mask;
            }
            if bad.is_empty() {
                break retire(sol, masks);
            }
            retire_all(sol, masks);
            let mut reachable_app = masks.take(nb, RegMask::EMPTY);
            for (i, r) in reachable_app.iter_mut().enumerate() {
                *r = if cfg.is_reachable(BlockId(i as u32)) {
                    RegMask(app[i].0 | bad.0)
                } else {
                    app[i]
                };
            }
            let sol = solve_placement(cfg, &reachable_app, masks);
            masks.give(reachable_app);
            debug_assert_eq!(verify_plan(cfg, &app_orig, &sol.plan), Ok(()));
            break retire(sol, masks);
        }
        apply_loop_constraint(loops, &mut app);
    };
    masks.give(app);
    masks.give(app_orig);
    SavePlan { iterations, ..plan }
}

/// Hands a solution's pooled saved-state vectors back and surfaces the
/// plan (whose `save_at`/`restore_at` escape to the caller).
fn retire(sol: Solution, masks: &mut MaskPool) -> SavePlan {
    masks.give(sol.must_in);
    masks.give(sol.may_in);
    masks.give(sol.must_out);
    masks.give(sol.may_out);
    sol.plan
}

/// [`retire`] for a solution being discarded: the plan's vectors are
/// recycled too instead of dropped.
fn retire_all(sol: Solution, masks: &mut MaskPool) {
    let plan = retire(sol, masks);
    masks.give(plan.save_at);
    masks.give(plan.restore_at);
}

fn apply_loop_constraint(loops: &LoopInfo, app: &mut [RegMask]) {
    // Nested loops share blocks, so iterate to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for l in &loops.loops {
            let mut u = RegMask::EMPTY;
            for b in l.blocks.iter() {
                u |= app[b];
            }
            for b in l.blocks.iter() {
                if app[b] != u {
                    app[b] = u;
                    changed = true;
                }
            }
        }
    }
}

struct Solution {
    plan: SavePlan,
    /// Must-saved at block entry (all paths).
    must_in: Vec<RegMask>,
    /// May-saved at block entry (some path).
    may_in: Vec<RegMask>,
    /// Must/may-saved at block exit.
    must_out: Vec<RegMask>,
    may_out: Vec<RegMask>,
}

/// One round of the paper's equations: ANT/AV (intersection problems), then
/// SAVE (3.5) and RESTORE (3.6), then the saved-state data flow used by the
/// problem detector.
fn solve_placement(cfg: &Cfg, app: &[RegMask], masks: &mut MaskPool) -> Solution {
    let nb = cfg.num_blocks();
    let full = {
        let mut m = RegMask::EMPTY;
        for a in app {
            m |= *a;
        }
        m
    };

    // Backward: ANTOUT = ∏ succ ANTIN (false at exits); ANTIN = APP + ANTOUT.
    let mut antin = masks.take(nb, RegMask::EMPTY);
    let mut antout = masks.take(nb, RegMask::EMPTY);
    // Forward: AVIN = ∏ pred AVOUT (false at entry); AVOUT = APP + AVIN.
    let mut avin = masks.take(nb, RegMask::EMPTY);
    let mut avout = masks.take(nb, RegMask::EMPTY);
    // Initialize interior to ⊤ for the intersections.
    for &b in &cfg.rpo {
        let i = b.index();
        antin[i] = full;
        antout[i] = full;
        avin[i] = full;
        avout[i] = full;
    }

    // Timed separately so the sweeps counter can be costed under its own
    // sub-span of the shrink_wrap phase.
    let antav_span = ipra_obs::span("shrink_wrap.antav");
    let mut sweeps = 0u64;
    let mut changed = true;
    while changed {
        changed = false;
        sweeps += 1;
        // ANT: post-order sweep.
        for &b in cfg.rpo.iter().rev() {
            let i = b.index();
            let out = if cfg.succs(b).is_empty() {
                RegMask::EMPTY
            } else {
                cfg.succs(b)
                    .iter()
                    .fold(full, |m, s| m.intersect(antin[s.index()]))
            };
            let inn = app[i] | out;
            if out != antout[i] || inn != antin[i] {
                antout[i] = out;
                antin[i] = inn;
                changed = true;
            }
        }
        // AV: RPO sweep.
        for &b in &cfg.rpo {
            let i = b.index();
            let inn = if b == cfg.entry || cfg.preds(b).is_empty() {
                RegMask::EMPTY
            } else {
                cfg.preds(b)
                    .iter()
                    .fold(full, |m, p| m.intersect(avout[p.index()]))
            };
            let out = app[i] | inn;
            if inn != avin[i] || out != avout[i] {
                avin[i] = inn;
                avout[i] = out;
                changed = true;
            }
        }
    }

    ipra_obs::counter("shrink_wrap.antav.sweeps", sweeps);
    drop(antav_span);

    // SAVE_i = ANTIN_i · ¬AVIN_i · ∏_{j∈pred} ¬ANTIN_j            (3.5)
    // RESTORE_i = AVOUT_i · ¬ANTOUT_i · ∏_{j∈succ} ¬AVOUT_j       (3.6)
    let mut save_at = masks.take(nb, RegMask::EMPTY);
    let mut restore_at = masks.take(nb, RegMask::EMPTY);
    for &b in &cfg.rpo {
        let i = b.index();
        let mut s = antin[i].intersect(RegMask(!avin[i].0));
        for p in cfg.preds(b) {
            s = s.intersect(RegMask(!antin[p.index()].0));
        }
        save_at[i] = s.intersect(full);

        let mut r = avout[i].intersect(RegMask(!antout[i].0));
        for su in cfg.succs(b) {
            r = r.intersect(RegMask(!avout[su.index()].0));
        }
        restore_at[i] = r.intersect(full);
    }

    let entry_spanning = save_at[cfg.entry.index()];

    masks.give(antin);
    masks.give(antout);
    masks.give(avin);
    masks.give(avout);

    // Saved-state data flow for the problem detector.
    let (must_in, may_in, must_out, may_out) =
        saved_state_with(cfg, &save_at, &restore_at, full, masks);

    Solution {
        plan: SavePlan {
            save_at,
            restore_at,
            entry_spanning,
            iterations: 0,
        },
        must_in,
        may_in,
        must_out,
        may_out,
    }
}

/// Forward data flow of the "is the original value saved right now" state:
/// `MUST` (all paths) and `MAY` (some path).
fn saved_state(
    cfg: &Cfg,
    save_at: &[RegMask],
    restore_at: &[RegMask],
    full: RegMask,
) -> (Vec<RegMask>, Vec<RegMask>, Vec<RegMask>, Vec<RegMask>) {
    saved_state_with(cfg, save_at, restore_at, full, &mut MaskPool::default())
}

fn saved_state_with(
    cfg: &Cfg,
    save_at: &[RegMask],
    restore_at: &[RegMask],
    full: RegMask,
    masks: &mut MaskPool,
) -> (Vec<RegMask>, Vec<RegMask>, Vec<RegMask>, Vec<RegMask>) {
    let nb = cfg.num_blocks();
    let mut must_in = masks.take(nb, full);
    let mut may_in = masks.take(nb, RegMask::EMPTY);
    let mut must_out = masks.take(nb, full);
    let mut may_out = masks.take(nb, RegMask::EMPTY);
    must_in[cfg.entry.index()] = RegMask::EMPTY;

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            let i = b.index();
            let (mi, yi) = if b == cfg.entry || cfg.preds(b).is_empty() {
                (RegMask::EMPTY, RegMask::EMPTY)
            } else {
                let m = cfg
                    .preds(b)
                    .iter()
                    .fold(full, |m, p| m.intersect(must_out[p.index()]));
                let y = cfg
                    .preds(b)
                    .iter()
                    .fold(RegMask::EMPTY, |m, p| m | may_out[p.index()]);
                (m, y)
            };
            let mo = RegMask((mi | save_at[i]).0 & !restore_at[i].0);
            let yo = RegMask((yi | save_at[i]).0 & !restore_at[i].0);
            if mi != must_in[i] || yi != may_in[i] || mo != must_out[i] || yo != may_out[i] {
                must_in[i] = mi;
                may_in[i] = yi;
                must_out[i] = mo;
                may_out[i] = yo;
                changed = true;
            }
        }
    }
    (must_in, may_in, must_out, may_out)
}

/// Detects the placement problems that require range extension, returning
/// `(block, registers)` pairs whose `APP` must be extended.
fn find_problems(cfg: &Cfg, app_orig: &[RegMask], sol: &Solution) -> Vec<(BlockId, RegMask)> {
    let mut out: Vec<(BlockId, RegMask)> = Vec::new();
    let mut push = |b: BlockId, m: RegMask| {
        if !m.is_empty() {
            out.push((b, m));
        }
    };

    for &b in &cfg.rpo {
        let i = b.index();
        let save = sol.plan.save_at[i];
        let restore = sol.plan.restore_at[i];

        // Double save: saving when some path already saved (Fig. 2).
        // Extend APP into the predecessors carrying the partial save.
        let double = save.intersect(sol.may_in[i]);
        if !double.is_empty() {
            for &p in cfg.preds(b) {
                push(p, double.intersect(sol.may_out[p.index()]));
            }
        }

        // Unprotected use: an original appearance reachable unsaved.
        // Extend APP into the predecessors of the unsaved paths.
        let unprotected = RegMask(app_orig[i].0 & !(sol.must_in[i] | save).0);
        if !unprotected.is_empty() {
            for &p in cfg.preds(b) {
                push(p, RegMask(unprotected.0 & !sol.must_out[p.index()].0));
            }
            if cfg.preds(b).is_empty() {
                // Entry block: saving here is always possible next round.
                push(b, unprotected);
            }
        }

        // Restore of a register not saved on all paths.
        let bad_restore = RegMask(restore.0 & !(sol.must_in[i] | save).0);
        if !bad_restore.is_empty() {
            for &p in cfg.preds(b) {
                push(p, RegMask(bad_restore.0 & !sol.must_out[p.index()].0));
            }
        }

        // Exit while (possibly) still saved: extend APP into the exit block
        // so a restore is forced there.
        if cfg.succs(b).is_empty() {
            push(b, sol.may_out[i]);
        }
    }
    out
}

/// Checks that a placement is correct with respect to the original
/// appearances: along every path, each register is saved exactly once
/// before its first appearance, restored after its last, never
/// double-saved, never restored unsaved, and never left saved at an exit.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn verify_plan(cfg: &Cfg, app_orig: &[RegMask], plan: &SavePlan) -> Result<(), String> {
    let full = {
        let mut m = RegMask::EMPTY;
        for a in app_orig {
            m |= *a;
        }
        for s in &plan.save_at {
            m |= *s;
        }
        m
    };
    let (must_in, may_in, _must_out, may_out) =
        saved_state(cfg, &plan.save_at, &plan.restore_at, full);

    for &b in &cfg.rpo {
        let i = b.index();
        // Consistency: saved-status must be path-independent.
        if must_in[i] != may_in[i] {
            return Err(format!(
                "inconsistent saved state at {b}: must {:?} vs may {:?}",
                must_in[i], may_in[i]
            ));
        }
        let double = plan.save_at[i].intersect(may_in[i]);
        if !double.is_empty() {
            return Err(format!("double save at {b}: {double:?}"));
        }
        let unprotected = RegMask(app_orig[i].0 & !(must_in[i] | plan.save_at[i]).0);
        if !unprotected.is_empty() {
            return Err(format!("unprotected appearance at {b}: {unprotected:?}"));
        }
        let bad_restore = RegMask(plan.restore_at[i].0 & !(must_in[i] | plan.save_at[i]).0);
        if !bad_restore.is_empty() {
            return Err(format!("restore without save at {b}: {bad_restore:?}"));
        }
        if cfg.succs(b).is_empty() && !may_out[i].is_empty() {
            return Err(format!(
                "exit {b} reached with unrestored registers: {:?}",
                may_out[i]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FuncAnalyses;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::Function;

    fn analyses(f: &Function) -> (Cfg, LoopInfo) {
        let an = FuncAnalyses::compute(f);
        (an.cfg, an.loops)
    }

    /// entry(0) -> then(1) | else(2) -> join(3, ret)
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.copy(1);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.ret(None);
        b.build()
    }

    const R: RegMask = RegMask(0b1);

    fn mask_at(v: &[RegMask], b: usize) -> RegMask {
        v[b]
    }

    #[test]
    fn use_on_one_branch_is_wrapped_there() {
        let f = diamond();
        let (cfg, loops) = analyses(&f);
        let mut app = vec![RegMask::EMPTY; 4];
        app[1] = R; // appears only on the then path
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert_eq!(mask_at(&plan.save_at, 1), R, "save at the branch block");
        assert_eq!(mask_at(&plan.restore_at, 1), R, "restore at its exit");
        assert_eq!(mask_at(&plan.save_at, 0), RegMask::EMPTY);
        assert!(plan.entry_spanning.is_empty());
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    }

    #[test]
    fn whole_function_use_saves_at_entry() {
        let f = diamond();
        let (cfg, loops) = analyses(&f);
        let app = vec![R; 4];
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert_eq!(mask_at(&plan.save_at, 0), R);
        assert_eq!(mask_at(&plan.restore_at, 3), R);
        assert_eq!(plan.entry_spanning, R, "§6 condition detected");
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    }

    #[test]
    fn branch_and_join_use_handled_by_anticipability() {
        // APP in then(1) and join(3): anticipability flows through the else
        // path, so the save correctly lands at the entry in one round.
        let f = diamond();
        let (cfg, loops) = analyses(&f);
        let mut app = vec![RegMask::EMPTY; 4];
        app[1] = R;
        app[3] = R;
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
        assert_eq!(plan.iterations, 1);
        assert_eq!(mask_at(&plan.save_at, 0), R, "save hoisted to entry");
        assert_eq!(mask_at(&plan.restore_at, 3), R);
    }

    #[test]
    fn fig2_shape_requires_range_extension() {
        // The paper's Fig. 2(a): 0 -> {1, 2}; 1 -> {3, 4}; 2 -> 4; 3 exits;
        // the register appears in 2 and 4. Naive placement saves at 2 but
        // cannot save at 4 (its predecessor 2 anticipates the use), leaving
        // the 0->1->4 path unprotected. Range extension propagates APP to
        // block 1 and the save merges at the entry.
        let mut b = FunctionBuilder::new("fig2");
        let n1 = b.new_block();
        let n2 = b.new_block();
        let n3 = b.new_block();
        let n4 = b.new_block();
        let c = b.copy(1);
        b.cond_br(c, n1, n2);
        b.switch_to(n1);
        let c2 = b.copy(1);
        b.cond_br(c2, n3, n4);
        b.switch_to(n2);
        b.br(n4);
        b.ret(None); // n4
        b.switch_to(n3);
        b.ret(None);
        let f = b.build();
        let (cfg, loops) = analyses(&f);
        let mut app = vec![RegMask::EMPTY; 5];
        app[2] = R;
        app[4] = R;
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
        assert!(
            plan.iterations >= 2,
            "extension required, took {}",
            plan.iterations
        );
        assert!(
            plan.iterations <= 3,
            "paper reports 1-2 extension rounds; took {}",
            plan.iterations
        );
    }

    #[test]
    fn loop_constraint_keeps_save_outside_loop() {
        // 0 -> 1(header) -> 2(body, uses r) -> 1 ; 1 -> 3(ret)
        let mut b = FunctionBuilder::new("l");
        let h = b.new_block();
        let body = b.new_block();
        let out = b.new_block();
        b.br(h);
        let c = b.copy(1);
        b.cond_br(c, body, out);
        b.switch_to(body);
        b.br(h);
        b.switch_to(out);
        b.ret(None);
        let f = b.build();
        let (cfg, loops) = analyses(&f);
        let mut app = vec![RegMask::EMPTY; 4];
        app[2] = R;
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
        assert!(
            plan.save_at[2].is_empty() && plan.restore_at[2].is_empty(),
            "save/restore must not sit inside the loop body"
        );
        // The loop constraint extends APP over blocks 1 and 2; the save must
        // land before the loop is entered.
        assert_eq!(mask_at(&plan.save_at, 0), R);
    }

    #[test]
    fn no_appearance_no_plan() {
        let f = diamond();
        let (cfg, loops) = analyses(&f);
        let app = vec![RegMask::EMPTY; 4];
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert!(plan.save_at.iter().all(|m| m.is_empty()));
        assert!(plan.restore_at.iter().all(|m| m.is_empty()));
        assert_eq!(plan.iterations, 1);
    }

    #[test]
    fn multiple_registers_processed_at_once() {
        let f = diamond();
        let (cfg, loops) = analyses(&f);
        let r0 = RegMask(0b01);
        let r1 = RegMask(0b10);
        let mut app = vec![RegMask::EMPTY; 4];
        app[1] = r0; // r0 only on then path
        app[0] = r1; // r1 everywhere
        app[3] = r1;
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
        assert!(plan.save_at[1].contains(ipra_machine::PReg(0)));
        assert!(plan.save_at[0].contains(ipra_machine::PReg(1)));
        assert_eq!(plan.entry_spanning, r1);
    }

    #[test]
    fn rounds_and_antav_nest_under_phase_span() {
        let f = diamond();
        let (cfg, loops) = analyses(&f);
        let mut app = vec![RegMask::EMPTY; 4];
        app[1] = R;
        ipra_obs::enable();
        {
            let _phase = ipra_obs::span("shrink_wrap");
            let _ = shrink_wrap(&cfg, &loops, &app);
        }
        let trace = ipra_obs::disable();
        let phase = trace
            .spans
            .iter()
            .find(|s| s.name == "shrink_wrap")
            .unwrap();
        let rounds: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "shrink_wrap.round")
            .collect();
        assert!(!rounds.is_empty());
        for r in &rounds {
            assert_eq!(r.parent_id, Some(phase.id), "round nests under phase");
        }
        for a in trace.spans.iter().filter(|s| s.name == "shrink_wrap.antav") {
            assert!(
                rounds.iter().any(|r| Some(r.id) == a.parent_id),
                "antav nests under a round"
            );
        }
    }

    #[test]
    fn classic_placement_fallback() {
        let f = diamond();
        let (cfg, _) = analyses(&f);
        let plan = SavePlan::at_entry_exits(&cfg, R);
        let app = vec![R; 4];
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
        assert_eq!(plan.save_at[0], R);
        assert_eq!(plan.restore_at[3], R);
        assert_eq!(plan.entry_spanning, R);
    }

    #[test]
    fn fig3_diamond_pair_saves_only_on_use_side() {
        // Fig. 3 shape: two consecutive diamonds; the register is used only
        // in the first diamond's left arm. Shrink-wrap must confine the
        // save/restore to that arm so the other three paths pay nothing.
        let mut b = FunctionBuilder::new("fig3");
        let l1 = b.new_block();
        let r1 = b.new_block();
        let m = b.new_block();
        let l2 = b.new_block();
        let r2 = b.new_block();
        let end = b.new_block();
        let c = b.copy(1);
        b.cond_br(c, l1, r1);
        b.switch_to(l1);
        b.br(m);
        b.switch_to(r1);
        b.br(m);
        let c2 = b.copy(1);
        b.cond_br(c2, l2, r2);
        b.switch_to(l2);
        b.br(end);
        b.switch_to(r2);
        b.br(end);
        b.ret(None);
        let f = b.build();
        let (cfg, loops) = analyses(&f);
        let mut app = vec![RegMask::EMPTY; 7];
        app[1] = R; // left arm of first diamond only
        let plan = shrink_wrap(&cfg, &loops, &app);
        assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
        assert_eq!(plan.save_at[1], R);
        assert_eq!(plan.restore_at[1], R);
        for i in [0usize, 2, 3, 4, 5, 6] {
            assert!(plan.save_at[i].is_empty(), "no save in block {i}");
            assert!(plan.restore_at[i].is_empty(), "no restore in block {i}");
        }
    }
}
