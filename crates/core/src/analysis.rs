//! Memoized per-function analyses.
//!
//! Every allocator phase reads the same four analyses — CFG, dominators,
//! loop nesting, liveness — and historically each compile rebuilt them from
//! scratch for every function. [`FuncAnalyses`] bundles them into one
//! immutable value computed once, and [`AnalysisCache`] memoizes that value
//! across compiles keyed by the function's structural body hash
//! ([`ipra_ir::hash_function`]): a recompile of an unedited function costs
//! one hash lookup and an `Arc` clone instead of four dataflow solves.
//!
//! The hash is exactly the invalidation rule. It covers the function name,
//! attributes, parameters, vreg table and every block, so any edit that
//! could change an analysis changes the key; the stale entry is simply
//! never looked up again. Entries are shared (`Arc`), so concurrent wave
//! workers reading the same function's analyses never copy them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ipra_cfg::{Cfg, Dominators, Liveness, LoopInfo};
use ipra_ir::Function;

/// The per-function analyses the allocator pipeline consumes.
#[derive(Clone, Debug)]
pub struct FuncAnalyses {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: Dominators,
    /// Loop nesting.
    pub loops: LoopInfo,
    /// Per-block liveness.
    pub liveness: Liveness,
}

impl FuncAnalyses {
    /// Computes all four analyses for `func`. This is the single compute
    /// path: every phase (allocation, shrink-wrapping, lowering, tests)
    /// reads the bundle instead of re-deriving its own copies.
    pub fn compute(func: &Function) -> FuncAnalyses {
        let cfg = Cfg::new(func);
        let dom = Dominators::compute(&cfg);
        let loops = LoopInfo::compute(&cfg, &dom);
        let liveness = Liveness::compute(func, &cfg);
        FuncAnalyses {
            cfg,
            dom,
            loops,
            liveness,
        }
    }
}

/// Hit/miss totals of the analysis memo over some window (one compile, or
/// a pipeline's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

/// Memo of [`FuncAnalyses`] keyed by structural body hash.
///
/// Thread-safe: wave workers look up concurrently. Within one compile each
/// function is looked up at most once and function names are part of the
/// hash, so distinct functions never race on a key and the hit/miss
/// counters are independent of thread scheduling.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    map: Mutex<HashMap<u64, Arc<FuncAnalyses>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisCache {
    /// Returns the memoized analyses for `body_hash`, computing (and
    /// remembering) them from `func` on a miss. The second element reports
    /// whether this was a hit.
    pub fn get_or_compute(&self, body_hash: u64, func: &Function) -> (Arc<FuncAnalyses>, bool) {
        if let Some(a) = self.map.lock().unwrap().get(&body_hash) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(a), true);
        }
        // Compute outside the lock so a large function never stalls the
        // other wave workers' lookups.
        let a = Arc::new(FuncAnalyses::compute(func));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .unwrap()
            .entry(body_hash)
            .or_insert_with(|| Arc::clone(&a));
        (a, false)
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss totals.
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Totals accumulated since an earlier [`AnalysisCache::stats`]
    /// snapshot — the per-compile window.
    pub fn stats_since(&self, start: AnalysisStats) -> AnalysisStats {
        let now = self.stats();
        AnalysisStats {
            hits: now.hits - start.hits,
            misses: now.misses - start.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::{hash_function, BinOp, Module};

    fn demo() -> Module {
        let mut m = Module::new();
        let f = m.declare_func("f");
        let mut b = FunctionBuilder::new("f");
        let x = b.param("x");
        let y = b.bin(BinOp::Add, x, 1);
        b.ret(Some(y.into()));
        m.define_func(f, b.build());
        m.main = Some(f);
        m
    }

    #[test]
    fn memo_hits_on_same_hash_and_misses_after_edit() {
        let m = demo();
        let fid = ipra_ir::FuncId(0);
        let cache = AnalysisCache::default();
        let h = hash_function(&m, fid);

        let (a1, hit1) = cache.get_or_compute(h, &m.funcs[fid]);
        assert!(!hit1);
        let (a2, hit2) = cache.get_or_compute(h, &m.funcs[fid]);
        assert!(hit2);
        assert!(Arc::ptr_eq(&a1, &a2), "hit shares the same analyses");
        assert_eq!(cache.stats(), AnalysisStats { hits: 1, misses: 1 });

        // An edit changes the hash, so the memo recomputes.
        let mut m2 = demo();
        m2.funcs[fid].new_named_vreg("__edited");
        let h2 = hash_function(&m2, fid);
        assert_ne!(h, h2);
        let (_, hit3) = cache.get_or_compute(h2, &m2.funcs[fid]);
        assert!(!hit3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn compute_matches_direct_analyses() {
        let m = demo();
        let f = &m.funcs[ipra_ir::FuncId(0)];
        let an = FuncAnalyses::compute(f);
        let cfg = Cfg::new(f);
        assert_eq!(an.cfg.rpo, cfg.rpo);
        let live = Liveness::compute(f, &cfg);
        assert_eq!(an.liveness.live_in, live.live_in);
        assert_eq!(an.liveness.live_out, live.live_out);
    }

    #[test]
    fn stats_since_windows_the_counters() {
        let m = demo();
        let fid = ipra_ir::FuncId(0);
        let cache = AnalysisCache::default();
        let h = hash_function(&m, fid);
        cache.get_or_compute(h, &m.funcs[fid]);
        let snap = cache.stats();
        cache.get_or_compute(h, &m.funcs[fid]);
        cache.get_or_compute(h, &m.funcs[fid]);
        assert_eq!(
            cache.stats_since(snap),
            AnalysisStats { hits: 2, misses: 0 }
        );
    }
}
