//! Unit tests of the allocation layer's observable decisions: summaries,
//! open/closed behavior, save planning, call plans and lowering shape.

use ipra_core::alloc::{allocate_function, SummaryEnv};
use ipra_core::config::AllocOptions;
use ipra_core::ipra::compile_module;
use ipra_core::summary::{FuncSummary, ParamLoc};
use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{BinOp, Module, Operand};
use ipra_machine::{MInst, MemClass, RegClass, RegMask, Target};

fn leaf_module() -> (Module, ipra_ir::FuncId) {
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("leaf");
    let x = b.param("x");
    let y = b.param("y");
    let r = b.bin(BinOp::Mul, x, y);
    b.ret(Some(r.into()));
    let leaf = m.add_func(b.build());
    (m, leaf)
}

#[test]
fn closed_leaf_summary_reports_its_registers_and_params() {
    let (m, leaf) = leaf_module();
    let target = Target::mips_like();
    let opts = AllocOptions::o3();
    let art = allocate_function(
        &m,
        leaf,
        &target,
        &opts,
        false,
        &SummaryEnv::default(),
        None,
    );
    let s = &art.alloc.summary;
    assert!(!s.is_default);
    assert_eq!(s.param_locs.len(), 2);
    // Both params are live and must arrive in distinct registers.
    let regs: Vec<_> = s
        .param_locs
        .iter()
        .map(|l| match l {
            ParamLoc::Reg(r) => *r,
            other => panic!("leaf params should be register-carried, got {other:?}"),
        })
        .collect();
    assert_ne!(regs[0], regs[1]);
    // Every used register is visible in the clobber mask, plus rv.
    assert!(art.alloc.assignment.used.0 & !s.clobbers.0 == 0);
    assert!(s.clobbers.contains(target.regs.ret_reg()));
    // A leaf needs no local saves under -O3 (propagation).
    assert!(art.alloc.locally_saved.is_empty());
}

#[test]
fn open_function_uses_default_summary_and_saves_callee_saved() {
    // A function with values across many calls, treated as open.
    let mut m = Module::new();
    let callee = m.declare_func("callee");
    {
        let mut b = FunctionBuilder::new("callee");
        b.ret(Some(Operand::Imm(1)));
        m.define_func(callee, b.build());
    }
    let mut b = FunctionBuilder::new("busy");
    let mut keep = Vec::new();
    for i in 0..6 {
        keep.push(b.copy(i));
    }
    for _ in 0..3 {
        let _ = b.call(callee, vec![]);
    }
    let mut acc = b.copy(0);
    for k in &keep {
        acc = b.bin(BinOp::Add, acc, *k);
    }
    b.ret(Some(acc.into()));
    let busy = m.add_func(b.build());

    let target = Target::mips_like();
    let opts = AllocOptions::o3();
    let art = allocate_function(&m, busy, &target, &opts, true, &SummaryEnv::default(), None);
    assert!(
        art.alloc.summary.is_default,
        "open procedures publish the default summary"
    );
    assert!(
        !art.alloc.locally_saved.is_empty(),
        "values across calls want callee-saved registers, which an open \
         procedure must protect locally"
    );
    let cs = target.regs.callee_saved_mask();
    assert!(
        art.alloc.locally_saved.0 & !cs.0 == 0,
        "only callee-saved regs saved locally"
    );
}

#[test]
fn closed_procedure_under_o3_without_shrink_wrap_saves_nothing_locally() {
    let (mut m, leaf) = leaf_module();
    let mut b = FunctionBuilder::new("mid");
    let x = b.param("x");
    let keep = b.bin(BinOp::Mul, x, 9);
    let r1 = b.call(leaf, vec![x.into(), Operand::Imm(2)]);
    let s = b.bin(BinOp::Add, keep, r1);
    b.ret(Some(s.into()));
    let mid = m.add_func(b.build());

    let target = Target::mips_like();
    let opts = AllocOptions::o3_no_shrink_wrap();
    let mut env = SummaryEnv::default();
    let leaf_art = allocate_function(&m, leaf, &target, &opts, false, &env, None);
    env.summaries.insert(leaf, leaf_art.alloc.summary.clone());
    env.tree_used.insert(leaf, leaf_art.alloc.tree_used);

    let art = allocate_function(&m, mid, &target, &opts, false, &env, None);
    assert!(
        art.alloc.locally_saved.is_empty(),
        "configuration B propagates all saves up"
    );
    // Crucially, `keep` can live across the call in a register the leaf
    // does not clobber — so the call plan needs no saves either.
    assert!(
        art.alloc
            .call_plans
            .iter()
            .all(|p| p.save_around.is_empty()),
        "leaf summary should free a register for `keep`: {:?}",
        art.alloc.call_plans
    );
}

#[test]
fn default_convention_callers_save_around_calls_when_needed() {
    let (mut m, leaf) = leaf_module();
    let mut b = FunctionBuilder::new("mid");
    let x = b.param("x");
    let keep = b.bin(BinOp::Mul, x, 9);
    let r1 = b.call(leaf, vec![x.into(), Operand::Imm(2)]);
    let s = b.bin(BinOp::Add, keep, r1);
    b.ret(Some(s.into()));
    let mid = m.add_func(b.build());

    // Intra mode: the leaf's summary is unknown, so `keep` either takes a
    // callee-saved register (entry save) or pays around the call.
    let target = Target::mips_like();
    let opts = AllocOptions::o2_base();
    let art = allocate_function(&m, mid, &target, &opts, true, &SummaryEnv::default(), None);
    let around: u32 = art
        .alloc
        .call_plans
        .iter()
        .map(|p| p.save_around.count())
        .sum();
    let local = art.alloc.locally_saved.count();
    assert!(
        around + local > 0,
        "`keep` must be protected one way or the other under -O2"
    );
}

#[test]
fn lowering_emits_expected_memory_classes() {
    let (m, _) = leaf_module();
    let target = Target::mips_like();
    let compiled = compile_module(&m, &target, &AllocOptions::no_alloc());
    // Under -O0 every variable access is a ScalarHome op; no SaveRestore
    // except nothing (leaf, no ra).
    let f = &compiled.mmodule.funcs[ipra_ir::FuncId(0)];
    let mut scalar = 0;
    let mut save = 0;
    let mut data = 0;
    for b in f.blocks.values() {
        for i in &b.insts {
            match i {
                MInst::Load { class, .. } | MInst::Store { class, .. } => match class {
                    MemClass::ScalarHome => scalar += 1,
                    MemClass::SaveRestore => save += 1,
                    MemClass::Data => data += 1,
                    MemClass::Spill => {}
                },
                _ => {}
            }
        }
    }
    assert!(scalar > 0, "unallocated code reads/writes home slots");
    assert_eq!(save, 0, "leaf function has no save/restore");
    assert_eq!(data, 0, "no arrays here");
    assert!(f.is_leaf);
}

#[test]
fn table2_class_limited_targets_use_only_that_class() {
    let (m, leaf) = leaf_module();
    let opts = AllocOptions::o3();
    for (nc, ne, class) in [(7, 0, RegClass::CallerSaved), (0, 7, RegClass::CalleeSaved)] {
        let target = Target::with_class_limits(nc, ne);
        let art = allocate_function(
            &m,
            leaf,
            &target,
            &opts,
            false,
            &SummaryEnv::default(),
            None,
        );
        for r in art.alloc.assignment.used.iter() {
            assert_eq!(
                target.regs.class(r),
                Some(class),
                "register {r} outside the allowed class"
            );
        }
    }
}

#[test]
fn ignored_params_do_not_claim_registers() {
    // p0's incoming value is dead (overwritten before use).
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("f");
    let p0 = b.param("p0");
    let p1 = b.param("p1");
    b.copy_to(p0, 7); // kill the incoming value
    let s = b.bin(BinOp::Add, p0, p1);
    b.ret(Some(s.into()));
    let f = m.add_func(b.build());

    let target = Target::mips_like();
    let opts = AllocOptions::o3();
    let art = allocate_function(&m, f, &target, &opts, false, &SummaryEnv::default(), None);
    assert_eq!(art.alloc.param_locs[0], ParamLoc::Ignored);
    assert!(matches!(art.alloc.param_locs[1], ParamLoc::Reg(_)));
}

#[test]
fn default_summary_matches_machine_convention() {
    let target = Target::mips_like();
    let s = FuncSummary::default_for(&target.regs, 5);
    assert_eq!(s.clobbers, target.regs.default_clobbers());
    assert_eq!(s.num_stack_args(), 1);
    assert_eq!(s.param_locs[4], ParamLoc::Stack(0));
}

#[test]
fn shrink_iterations_reported_through_compile() {
    let (m, _) = leaf_module();
    let compiled = compile_module(&m, &Target::mips_like(), &AllocOptions::o3());
    assert_eq!(compiled.reports.len(), 1);
    assert!(compiled.reports[0].shrink_iterations <= 3);
    assert_eq!(compiled.reports[0].name, "leaf");
    assert!(compiled.reports[0].candidate_vregs >= 3);
}

#[test]
fn tree_used_accumulates_up_the_call_graph() {
    let (mut m, leaf) = leaf_module();
    let mut b = FunctionBuilder::new("mid");
    let x = b.param("x");
    let r = b.call(leaf, vec![x.into(), Operand::Imm(3)]);
    b.ret(Some(r.into()));
    let mid = m.add_func(b.build());

    let target = Target::mips_like();
    let opts = AllocOptions::o3();
    let mut env = SummaryEnv::default();
    let leaf_art = allocate_function(&m, leaf, &target, &opts, false, &env, None);
    env.summaries.insert(leaf, leaf_art.alloc.summary.clone());
    env.tree_used.insert(leaf, leaf_art.alloc.tree_used);
    let mid_art = allocate_function(&m, mid, &target, &opts, false, &env, None);
    assert_eq!(
        mid_art.alloc.tree_used.0 & leaf_art.alloc.tree_used.0,
        leaf_art.alloc.tree_used.0,
        "the subtree's registers are part of mid's tree usage"
    );
    assert!(RegMask(mid_art.alloc.tree_used.0).count() >= leaf_art.alloc.tree_used.count());
}
