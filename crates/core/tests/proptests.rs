//! Property-based tests of the allocator's internal invariants: shrink-wrap
//! placement correctness on arbitrary CFGs, interference-respecting
//! coloring, and parallel-move semantics.
//! Gated behind the non-default `proptest` feature: the external
//! `proptest` crate is not vendored, so offline builds compile this
//! file to nothing. Enable with `--features proptest` after adding
//! the dev-dependency back (requires network access).
#![cfg(feature = "proptest")]

use ipra_cfg::{Cfg, Dominators, Liveness, LoopInfo};
use ipra_core::color::{color, VregLoc};
use ipra_core::normalize::normalize_entries;
use ipra_core::parmove::{resolve_parallel_moves, MoveSrc};
use ipra_core::priority::PriorityCtx;
use ipra_core::ranges::{BlockWeights, RangeData};
use ipra_core::shrinkwrap::{shrink_wrap, verify_plan};
use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{BinOp, Function, Module, Operand};
use ipra_machine::{MInst, MOperand, PReg, RegMask, Target};
use proptest::prelude::*;

/// Builds an arbitrary-shaped function: `n` blocks with random terminators
/// (always well-formed; blocks may be unreachable, CFGs may be irreducible).
fn random_cfg_function(n: usize, edges: &[(usize, usize, Option<usize>)]) -> Function {
    let mut b = FunctionBuilder::new("f");
    let blocks: Vec<_> = (0..n.saturating_sub(1)).map(|_| b.new_block()).collect();
    let all: Vec<ipra_ir::BlockId> = std::iter::once(b.current_block())
        .chain(blocks.iter().copied())
        .collect();
    // Terminate every block per the edge table (fallback: ret).
    for (i, &(_, t1, t2)) in edges.iter().enumerate().take(n) {
        b.switch_to(all[i]);
        match t2 {
            Some(t2) if t1 % (n.max(1)) != t2 % n => {
                let c = b.copy(1);
                b.cond_br(c, all[t1 % n], all[t2 % n]);
            }
            _ => {
                b.br(all[t1 % n]);
                if b.current_block() != all[i] {
                    // br moved the cursor; go back is impossible (block is
                    // closed), nothing to do.
                }
            }
        }
        // Re-point the cursor safely for the next iteration.
        if i + 1 < n {
            // no-op; switch happens at loop head
        }
    }
    // Any block the edge table did not terminate gets a ret. The builder
    // panics on double-termination, so track via edges len.
    for i in edges.len()..n {
        b.switch_to(all[i]);
        b.ret(None);
    }
    b.build()
}

/// Runs the driver's entry normalization on a single function.
fn normalized(f: Function) -> Function {
    let mut m = Module::new();
    let id = m.add_func(f);
    normalize_entries(&mut m);
    m.funcs[id].clone()
}

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, Option<usize>)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edge = (0usize..n, 0usize..n, proptest::option::of(0usize..n));
        // Terminate between half and all blocks with branches; the rest ret.
        (Just(n), proptest::collection::vec(edge, 0..n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Shrink-wrap placement is correct on arbitrary (even irreducible)
    /// CFGs with arbitrary APP masks: every path saves before first use,
    /// restores by exit, never double-saves.
    #[test]
    fn shrink_wrap_placement_always_verifies(
        (n, edges) in arb_graph(),
        app_bits in proptest::collection::vec(0u32..16, 2..10),
    ) {
        let f = normalized(random_cfg_function(n, &edges));
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let loops = LoopInfo::compute(&cfg, &dom);
        let mut app = vec![RegMask::EMPTY; f.num_blocks()];
        for (i, bits) in app_bits.iter().enumerate() {
            app[i % f.num_blocks()] = RegMask(*bits);
        }
        let plan = shrink_wrap(&cfg, &loops, &app);
        prop_assert_eq!(verify_plan(&cfg, &app, &plan), Ok(()));
    }

    /// Loop constraint: no save or restore may sit strictly inside a loop
    /// unless the loop contains the function entry.
    #[test]
    fn shrink_wrap_never_places_inside_loops(
        (n, edges) in arb_graph(),
        app_bits in proptest::collection::vec(0u32..16, 2..10),
    ) {
        let f = normalized(random_cfg_function(n, &edges));
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let loops = LoopInfo::compute(&cfg, &dom);
        let mut app = vec![RegMask::EMPTY; f.num_blocks()];
        for (i, bits) in app_bits.iter().enumerate() {
            app[i % f.num_blocks()] = RegMask(*bits);
        }
        let plan = shrink_wrap(&cfg, &loops, &app);
        for l in &loops.loops {
            if l.blocks.contains(cfg.entry.index()) {
                continue;
            }
            for bi in l.blocks.iter() {
                // Saves at a loop header are fine only if the header is the
                // region boundary — the loop constraint actually forbids
                // placement anywhere inside, so assert exactly that.
                prop_assert!(
                    plan.save_at[bi].is_empty() && plan.restore_at[bi].is_empty(),
                    "save/restore inside loop at block {bi}"
                );
            }
        }
    }

    /// Parallel moves: whatever permutation/duplication of sources is
    /// requested, applying the emitted sequence equals the parallel
    /// semantics.
    #[test]
    fn parallel_moves_have_parallel_semantics(
        moves in proptest::collection::vec((0u8..12, 0u8..12), 0..12),
        imms in proptest::collection::vec(any::<i16>(), 0..4),
    ) {
        // Destinations must be unique; dedupe by destination. Scratch is 15.
        let scratch = PReg(15);
        let mut seen = std::collections::HashSet::new();
        let mut ms: Vec<(PReg, MoveSrc)> = Vec::new();
        for (d, s) in moves {
            if seen.insert(d) && d != 15 && s != 15 {
                ms.push((PReg(d), MoveSrc::Reg(PReg(s))));
            }
        }
        for (k, i) in imms.iter().enumerate() {
            let d = (12 + k) as u8;
            if seen.insert(d) {
                ms.push((PReg(d), MoveSrc::Imm(*i as i64)));
            }
        }
        // Parallel semantics: read all sources first.
        let init: Vec<i64> = (0..16).map(|i| 100 + i as i64).collect();
        let mut expected = init.clone();
        for (d, s) in &ms {
            expected[d.index()] = match s {
                MoveSrc::Reg(r) => init[r.index()],
                MoveSrc::Imm(i) => *i,
                MoveSrc::Mem(..) => unreachable!(),
            };
        }
        // Sequential execution of the emitted program.
        let mut regs = init.clone();
        for inst in resolve_parallel_moves(&ms, scratch) {
            match inst {
                MInst::Copy { dst, src } => {
                    regs[dst.index()] = match src {
                        MOperand::Reg(r) => regs[r.index()],
                        MOperand::Imm(i) => i,
                    };
                }
                other => prop_assert!(false, "unexpected inst {other:?}"),
            }
        }
        for i in 0..16 {
            if i != scratch.index() {
                prop_assert_eq!(regs[i], expected[i], "register {}", i);
            }
        }
    }

    /// Coloring respects interference: no two interfering candidate ranges
    /// share a register; split regions never collide block-wise.
    #[test]
    fn coloring_respects_interference(seed in 0u64..2000) {
        let module = random_straightline_module(seed);
        let f = &module.funcs[module.main.unwrap()];
        let cfg = Cfg::new(f);
        let dom = Dominators::compute(&cfg);
        let loops = LoopInfo::compute(&cfg, &dom);
        let live = Liveness::compute(f, &cfg);
        let weights = BlockWeights::from_loops(&cfg, &loops);
        let rd = RangeData::build(f, &cfg, &live, &weights);
        let target = Target::with_class_limits(3, 2); // heavy pressure
        let clobbers = vec![target.regs.default_clobbers(); rd.call_sites.len()];
        let hints = vec![Vec::new(); f.num_vregs()];
        let ctx = PriorityCtx {
            target: &target,
            ranges: &rd,
            site_clobbers: &clobbers,
            charge_callee_saved_entry: true,
            entry_weight: 1.0,
            subtree_used: RegMask::EMPTY,
            hints: &hints,
            weights: &weights,
        };
        let a = color(&ctx, &cfg, &live, true);
        for v in 0..f.num_vregs() {
            for w in rd.adj[v].iter() {
                if v >= w { continue; }
                // Whole-range vs whole-range interference.
                if let (VregLoc::Reg(rv), VregLoc::Reg(rw)) = (a.whole[v], a.whole[w]) {
                    if !a.is_split(ipra_ir::Vreg(v as u32))
                        && !a.is_split(ipra_ir::Vreg(w as u32))
                    {
                        prop_assert_ne!(rv, rw, "v{} and v{} interfere", v, w);
                    }
                }
            }
        }
        // Block-granular: no two ranges (split or not) may hold the same
        // register in the same block while both are live there.
        let nb = f.num_blocks();
        for b in 0..nb {
            let mut taken: std::collections::HashMap<PReg, usize> = Default::default();
            for v in 0..f.num_vregs() {
                if !rd.ranges[v].blocks.contains(b) { continue; }
                if let VregLoc::Reg(r) = a.loc(ipra_ir::Vreg(v as u32), ipra_ir::BlockId(b as u32)) {
                    if let Some(&other) = taken.get(&r) {
                        // Permitted only if the two never interfere at all
                        // (they can time-share within the block).
                        prop_assert!(
                            !rd.adj[v].contains(other),
                            "block {}: {} and {} both in {:?} and interfering", b, v, other, r
                        );
                    } else {
                        taken.insert(r, v);
                    }
                }
            }
        }
    }
}

/// A deterministic pseudo-random straight-line + diamond module used by the
/// coloring property (no rand dependency: xorshift).
fn random_straightline_module(seed: u64) -> Module {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    let mut next = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    let mut module = Module::new();
    let callee = module.declare_func("callee");
    {
        let mut b = FunctionBuilder::new("callee");
        let x = b.param("x");
        let r = b.bin(BinOp::Add, x, 1);
        b.ret(Some(r.into()));
        module.define_func(callee, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let mut vals: Vec<ipra_ir::Vreg> = Vec::new();
    for i in 0..(4 + next(12)) {
        let v = b.copy(i as i64);
        vals.push(v);
    }
    for _ in 0..next(6) {
        let x = vals[next(vals.len() as u64) as usize];
        let y = vals[next(vals.len() as u64) as usize];
        let s = b.bin(BinOp::Add, x, y);
        vals.push(s);
        if next(3) == 0 {
            let r = b.call(callee, vec![Operand::Reg(s)]);
            vals.push(r);
        }
    }
    // Keep a random subset live to the end.
    let mut acc = b.copy(0);
    for v in &vals {
        if next(2) == 0 {
            acc = b.bin(BinOp::Add, acc, *v);
        }
    }
    b.print(acc);
    b.ret(None);
    let main = module.add_func(b.build());
    module.main = Some(main);
    module
}
