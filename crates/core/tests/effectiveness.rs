//! The optimizations must *move the needle*, not merely preserve
//! semantics: these tests assert the qualitative claims of the paper on
//! small constructed programs.

use ipra_core::config::AllocOptions;
use ipra_core::ipra::compile_module;
use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{BinOp, Module, Operand};
use ipra_machine::Target;
use ipra_sim::{run, SimOptions, Stats};

fn measure(module: &Module, target: &Target, opts: &AllocOptions) -> Stats {
    let compiled = compile_module(module, target, opts);
    let sim_opts =
        SimOptions::for_target(&target.regs).check_preservation(compiled.clobber_masks.clone());
    run(&compiled.mmodule, &target.regs, &sim_opts)
        .expect("runs")
        .stats
}

/// Call-intensive program: deep chain of closed procedures, each using a
/// few values across calls.
fn call_chain_module(depth: usize) -> Module {
    let mut m = Module::new();
    let ids: Vec<_> = (0..depth)
        .map(|i| m.declare_func(format!("f{i}")))
        .collect();
    for i in 0..depth {
        let mut b = FunctionBuilder::new(format!("f{i}"));
        let x = b.param("x");
        if i + 1 < depth {
            let keep = b.bin(BinOp::Mul, x, 3);
            let r1 = b.call(ids[i + 1], vec![x.into()]);
            let r2 = b.call(ids[i + 1], vec![r1.into()]);
            let s = b.bin(BinOp::Add, keep, r2);
            b.ret(Some(s.into()));
        } else {
            let r = b.bin(BinOp::Add, x, 1);
            b.ret(Some(r.into()));
        }
        m.define_func(ids[i], b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let r = b.call(ids[0], vec![Operand::Imm(2)]);
    b.print(r);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    m
}

#[test]
fn ipra_reduces_scalar_memory_traffic() {
    let m = call_chain_module(8);
    let t = Target::mips_like();
    let base = measure(&m, &t, &AllocOptions::o2_base());
    let o3 = measure(&m, &t, &AllocOptions::o3());
    assert!(
        o3.scalar_mem() < base.scalar_mem(),
        "IPRA must cut scalar loads/stores: O2 {} vs O3 {}",
        base.scalar_mem(),
        o3.scalar_mem()
    );
    assert!(
        o3.cycles < base.cycles,
        "and cycles: O2 {} vs O3 {}",
        base.cycles,
        o3.cycles
    );
}

#[test]
fn regalloc_beats_no_alloc_massively() {
    let m = call_chain_module(6);
    let t = Target::mips_like();
    let noalloc = measure(&m, &t, &AllocOptions::no_alloc());
    let o2 = measure(&m, &t, &AllocOptions::o2_base());
    assert!(
        o2.scalar_mem() * 2 < noalloc.scalar_mem(),
        "coloring removes most scalar traffic: {} vs {}",
        o2.scalar_mem(),
        noalloc.scalar_mem()
    );
}

#[test]
fn shrink_wrap_reduces_saves_on_untaken_paths() {
    // A function that uses many callee-saved-worthy values only on a cold
    // path; the hot path is call-free and value-free.
    let mut m = Module::new();
    let helper = m.declare_func("helper");
    {
        let mut b = FunctionBuilder::new("helper");
        let x = b.param("x");
        b.ret(Some(x.into()));
        m.define_func(helper, b.build());
    }
    let work = m.declare_func("work");
    {
        // work(flag): if flag { heavy: values across calls } else { cheap }
        let mut b = FunctionBuilder::new("work");
        let flag = b.param("flag");
        let heavy = b.new_block();
        let cheap = b.new_block();
        let join = b.new_block();
        let r = b.var("r");
        b.cond_br(flag, heavy, cheap);
        b.switch_to(heavy);
        let k1 = b.copy(11);
        let k2 = b.copy(22);
        let c1 = b.call(helper, vec![k1.into()]);
        let c2 = b.call(helper, vec![k2.into()]);
        let s1 = b.bin(BinOp::Add, c1, k1);
        let s2 = b.bin(BinOp::Add, c2, k2);
        let s = b.bin(BinOp::Add, s1, s2);
        b.copy_to(r, s);
        b.br(join);
        b.switch_to(cheap);
        b.copy_to(r, 1);
        b.br(join);
        b.ret(Some(r.into()));
        m.define_func(work, b.build());
    }
    // main calls work(0) many times: the cold path never runs.
    let mut b = FunctionBuilder::new("main");
    let mut acc = b.copy(0);
    for _ in 0..20 {
        let r = b.call(work, vec![Operand::Imm(0)]);
        acc = b.bin(BinOp::Add, acc, r);
    }
    b.print(acc);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);

    let t = Target::mips_like();
    let plain = measure(&m, &t, &AllocOptions::o2_base());
    let sw = measure(&m, &t, &AllocOptions::o2_shrink_wrap());
    assert!(
        sw.save_restore_mem() < plain.save_restore_mem(),
        "shrink-wrap must skip saves on the untaken path: {} vs {}",
        sw.save_restore_mem(),
        plain.save_restore_mem()
    );
    assert!(sw.cycles <= plain.cycles);
}

#[test]
fn custom_param_binding_cuts_moves() {
    let m = call_chain_module(6);
    let t = Target::mips_like();
    let with = measure(&m, &t, &AllocOptions::o3());
    let without = measure(&m, &t, &{
        let mut o = AllocOptions::o3();
        o.custom_param_regs = false;
        o
    });
    assert!(
        with.cycles <= without.cycles,
        "§4 binding should not cost cycles: {} vs {}",
        with.cycles,
        without.cycles
    );
}

#[test]
fn table2_restricted_registers_run_slower_than_full_set() {
    let m = call_chain_module(8);
    let full = measure(&m, &Target::mips_like(), &AllocOptions::o3());
    let d = measure(&m, &Target::with_class_limits(7, 0), &AllocOptions::o3());
    let e = measure(&m, &Target::with_class_limits(0, 7), &AllocOptions::o3());
    assert!(d.scalar_mem() >= full.scalar_mem());
    assert!(e.scalar_mem() >= full.scalar_mem());
}
