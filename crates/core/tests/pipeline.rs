//! End-to-end differential tests: every optimization configuration must
//! produce machine code whose simulated output matches the IR reference
//! interpreter, with the convention checker enabled.

use ipra_core::config::AllocOptions;
use ipra_core::ipra::compile_module;
use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{interp, Address, BinOp, GlobalData, Module, Operand, UnOp};
use ipra_machine::Target;
use ipra_sim::{run, SimOptions};

fn configs() -> Vec<(&'static str, Target, AllocOptions)> {
    vec![
        ("noalloc", Target::mips_like(), AllocOptions::no_alloc()),
        ("o2-base", Target::mips_like(), AllocOptions::o2_base()),
        (
            "o2-sw (A)",
            Target::mips_like(),
            AllocOptions::o2_shrink_wrap(),
        ),
        (
            "o3-nosw (B)",
            Target::mips_like(),
            AllocOptions::o3_no_shrink_wrap(),
        ),
        ("o3 (C)", Target::mips_like(), AllocOptions::o3()),
        (
            "o3-7caller (D)",
            Target::with_class_limits(7, 0),
            AllocOptions::o3(),
        ),
        (
            "o3-7callee (E)",
            Target::with_class_limits(0, 7),
            AllocOptions::o3(),
        ),
        ("o3-nosplit", Target::mips_like(), {
            let mut o = AllocOptions::o3();
            o.split_ranges = false;
            o
        }),
        ("o3-noparams", Target::mips_like(), {
            let mut o = AllocOptions::o3();
            o.custom_param_regs = false;
            o
        }),
        ("o3-nopromote", Target::mips_like(), {
            let mut o = AllocOptions::o3();
            o.promote_globals = false;
            o
        }),
    ]
}

/// Compiles and runs `module` under every configuration and checks the
/// output against the reference interpreter.
fn check_all_configs(module: &Module) {
    ipra_ir::verify::verify_module(module).expect("input module verifies");
    let expected = interp::run_module(module).expect("reference execution succeeds");

    for (name, target, opts) in configs() {
        let compiled = compile_module(module, &target, &opts);
        let sim_opts =
            SimOptions::for_target(&target.regs).check_preservation(compiled.clobber_masks.clone());
        let result = run(&compiled.mmodule, &target.regs, &sim_opts)
            .unwrap_or_else(|t| panic!("[{name}] simulation trapped: {t}"));
        assert_eq!(
            result.output, expected.output,
            "[{name}] output mismatch (expected from interpreter)"
        );
    }
}

#[test]
fn straightline_arithmetic() {
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("main");
    let x = b.copy(21);
    let y = b.bin(BinOp::Mul, x, 2);
    let z = b.bin(BinOp::Sub, y, 7);
    let w = b.un(UnOp::Neg, z);
    b.print(y);
    b.print(z);
    b.print(w);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn recursive_fib() {
    let mut m = Module::new();
    let fib = m.declare_func("fib");
    {
        let mut b = FunctionBuilder::new("fib");
        let n = b.param("n");
        let rec = b.new_block();
        let done = b.new_block();
        let c = b.bin(BinOp::Lt, n, 2);
        b.cond_br(c, done, rec);
        b.switch_to(rec);
        let n1 = b.bin(BinOp::Sub, n, 1);
        let f1 = b.call(fib, vec![n1.into()]);
        let n2 = b.bin(BinOp::Sub, n, 2);
        let f2 = b.call(fib, vec![n2.into()]);
        let s = b.bin(BinOp::Add, f1, f2);
        b.ret(Some(s.into()));
        b.switch_to(done);
        b.ret(Some(n.into()));
        m.define_func(fib, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let r = b.call(fib, vec![Operand::Imm(12)]);
    b.print(r);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn closed_call_chain_with_params() {
    // main -> mid -> leaf: both callees closed; exercises summaries and the
    // custom parameter convention.
    let mut m = Module::new();
    let leaf = m.declare_func("leaf");
    let mid = m.declare_func("mid");
    {
        let mut b = FunctionBuilder::new("leaf");
        let a = b.param("a");
        let c = b.param("c");
        let r = b.bin(BinOp::Mul, a, c);
        let r2 = b.bin(BinOp::Add, r, 1);
        b.ret(Some(r2.into()));
        m.define_func(leaf, b.build());
    }
    {
        let mut b = FunctionBuilder::new("mid");
        let x = b.param("x");
        let r1 = b.call(leaf, vec![x.into(), Operand::Imm(3)]);
        let r2 = b.call(leaf, vec![r1.into(), x.into()]);
        let s = b.bin(BinOp::Add, r1, r2);
        b.ret(Some(s.into()));
        m.define_func(mid, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let t = b.call(mid, vec![Operand::Imm(5)]);
    let u = b.call(mid, vec![t.into()]);
    b.print(t);
    b.print(u);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn loops_globals_and_arrays() {
    let mut m = Module::new();
    let acc = m.add_global(GlobalData::scalar("acc"));
    let table = m.add_global(GlobalData::array("table", 16));
    let step = m.declare_func("step");
    {
        // step(i): table[i] = i*i; acc += table[i]
        let mut b = FunctionBuilder::new("step");
        let i = b.param("i");
        let sq = b.bin(BinOp::Mul, i, i);
        b.store(
            sq,
            Address::Global {
                global: table,
                index: i.into(),
            },
        );
        let cur = b.load(Address::global_scalar(acc));
        let v = b.load(Address::Global {
            global: table,
            index: i.into(),
        });
        let n = b.bin(BinOp::Add, cur, v);
        b.store(n, Address::global_scalar(acc));
        b.ret(None);
        m.define_func(step, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let i = b.var("i");
    let h = b.new_block();
    let body = b.new_block();
    let out = b.new_block();
    b.copy_to(i, 0);
    b.br(h);
    let c = b.bin(BinOp::Lt, i, 16);
    b.cond_br(c, body, out);
    b.switch_to(body);
    b.call_void(step, vec![i.into()]);
    let ni = b.bin(BinOp::Add, i, 1);
    b.copy_to(i, ni);
    b.br(h);
    b.switch_to(out);
    let total = b.load(Address::global_scalar(acc));
    b.print(total);
    let sample = b.load(Address::Global {
        global: table,
        index: Operand::Imm(7),
    });
    b.print(sample);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn indirect_calls_through_table() {
    let mut m = Module::new();
    let double = m.declare_func("double");
    let square = m.declare_func("square");
    {
        let mut b = FunctionBuilder::new("double");
        let x = b.param("x");
        let r = b.bin(BinOp::Add, x, x);
        b.ret(Some(r.into()));
        m.define_func(double, b.build());
    }
    {
        let mut b = FunctionBuilder::new("square");
        let x = b.param("x");
        let r = b.bin(BinOp::Mul, x, x);
        b.ret(Some(r.into()));
        m.define_func(square, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let fd = b.func_addr(double);
    let fs = b.func_addr(square);
    let r1 = b.call_indirect(fd, vec![Operand::Imm(9)]);
    let r2 = b.call_indirect(fs, vec![Operand::Imm(9)]);
    b.print(r1);
    b.print(r2);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn register_pressure_forces_memory_or_split() {
    // 30 simultaneously live values exceed 24 allocatable registers.
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("main");
    let vals: Vec<_> = (0..30).map(|i| b.copy(i * 3 + 1)).collect();
    // Keep them all live: sum them afterwards.
    let mut sum = b.copy(0);
    for v in &vals {
        sum = b.bin(BinOp::Add, sum, *v);
    }
    // Reuse originals again so everything stays live until here.
    let mut prod = b.copy(1);
    for v in vals.iter().take(6) {
        prod = b.bin(BinOp::Mul, prod, *v);
    }
    b.print(sum);
    b.print(prod);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn many_params_use_stack() {
    let mut m = Module::new();
    let sum6 = m.declare_func("sum6");
    {
        let mut b = FunctionBuilder::new("sum6");
        let ps: Vec<_> = (0..6).map(|i| b.param(format!("p{i}"))).collect();
        let mut acc = b.copy(0);
        for p in ps {
            acc = b.bin(BinOp::Add, acc, p);
        }
        b.ret(Some(acc.into()));
        m.define_func(sum6, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let args: Vec<Operand> = (1..=6).map(Operand::Imm).collect();
    let r = b.call(sum6, args);
    b.print(r);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn mutual_recursion_is_open_and_correct() {
    // is_even/is_odd mutual recursion: both open (on a cycle).
    let mut m = Module::new();
    let is_even = m.declare_func("is_even");
    let is_odd = m.declare_func("is_odd");
    {
        let mut b = FunctionBuilder::new("is_even");
        let n = b.param("n");
        let rec = b.new_block();
        let done = b.new_block();
        let c = b.bin(BinOp::Eq, n, 0);
        b.cond_br(c, done, rec);
        b.switch_to(rec);
        let n1 = b.bin(BinOp::Sub, n, 1);
        let r = b.call(is_odd, vec![n1.into()]);
        b.ret(Some(r.into()));
        b.switch_to(done);
        b.ret(Some(Operand::Imm(1)));
        m.define_func(is_even, b.build());
    }
    {
        let mut b = FunctionBuilder::new("is_odd");
        let n = b.param("n");
        let rec = b.new_block();
        let done = b.new_block();
        let c = b.bin(BinOp::Eq, n, 0);
        b.cond_br(c, done, rec);
        b.switch_to(rec);
        let n1 = b.bin(BinOp::Sub, n, 1);
        let r = b.call(is_even, vec![n1.into()]);
        b.ret(Some(r.into()));
        b.switch_to(done);
        b.ret(Some(Operand::Imm(0)));
        m.define_func(is_odd, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let r1 = b.call(is_even, vec![Operand::Imm(10)]);
    let r2 = b.call(is_odd, vec![Operand::Imm(7)]);
    b.print(r1);
    b.print(r2);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn values_live_across_many_calls() {
    // A variable that spans many calls must survive them (caller- or
    // callee-saved protection, locally or via summaries).
    let mut m = Module::new();
    let bump = m.declare_func("bump");
    {
        let mut b = FunctionBuilder::new("bump");
        let x = b.param("x");
        let r = b.bin(BinOp::Add, x, 1);
        b.ret(Some(r.into()));
        m.define_func(bump, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let keep1 = b.copy(100);
    let keep2 = b.copy(200);
    let mut acc = b.copy(0);
    for i in 0..8 {
        let r = b.call(bump, vec![Operand::Imm(i)]);
        acc = b.bin(BinOp::Add, acc, r);
    }
    let s1 = b.bin(BinOp::Add, keep1, acc);
    let s2 = b.bin(BinOp::Add, keep2, s1);
    b.print(s1);
    b.print(s2);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}

#[test]
fn forced_open_simulates_separate_compilation() {
    let mut m = Module::new();
    let lib = m.declare_func("libfn");
    {
        let mut b = FunctionBuilder::new("libfn");
        let x = b.param("x");
        let r = b.bin(BinOp::Mul, x, 7);
        b.ret(Some(r.into()));
        m.define_func(lib, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let r = b.call(lib, vec![Operand::Imm(6)]);
    b.print(r);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);

    ipra_ir::verify::verify_module(&m).unwrap();
    let expected = interp::run_module(&m).unwrap();
    let target = Target::mips_like();
    let opts = AllocOptions::o3().force_open("libfn");
    let compiled = compile_module(&m, &target, &opts);
    assert!(compiled.reports[lib.index()].forced_open);
    let sim_opts =
        SimOptions::for_target(&target.regs).check_preservation(compiled.clobber_masks.clone());
    let result = run(&compiled.mmodule, &target.regs, &sim_opts).unwrap();
    assert_eq!(result.output, expected.output);
}

#[test]
fn diamond_control_flow_with_calls() {
    let mut m = Module::new();
    let f = m.declare_func("helper");
    {
        let mut b = FunctionBuilder::new("helper");
        let x = b.param("x");
        let r = b.bin(BinOp::Add, x, 10);
        b.ret(Some(r.into()));
        m.define_func(f, b.build());
    }
    let mut b = FunctionBuilder::new("main");
    let x = b.copy(3);
    let then_b = b.new_block();
    let else_b = b.new_block();
    let join = b.new_block();
    let r = b.var("r");
    let c = b.bin(BinOp::Gt, x, 0);
    b.cond_br(c, then_b, else_b);
    b.switch_to(then_b);
    let t = b.call(f, vec![x.into()]);
    b.copy_to(r, t);
    b.br(join);
    b.switch_to(else_b);
    b.copy_to(r, 0);
    b.br(join);
    b.print(r);
    let t2 = b.call(f, vec![r.into()]);
    b.print(t2);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    check_all_configs(&m);
}
