//! # ipra-sim — machine-code simulator and traffic accounting
//!
//! Plays the role of the paper's `pixie` instruction tracer (§8): executes
//! lowered machine code against a single global register file, counts
//! cycles, and classifies every memory access as data traffic or scalar
//! traffic (variable homes, spills, register saves/restores). Optionally
//! verifies on every return that the procedure preserved all registers its
//! register-usage summary promises to preserve.

#![warn(missing_docs)]

pub mod exec;
pub mod stats;

pub use exec::{run, SimOptions, SimResult, SimTrap};
pub use stats::{percent_reduction, Stats};

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::{BinOp, BlockId, EntityVec, FuncId};
    use ipra_machine::{
        FrameSlot, FrameSlotId, MAddress, MBlock, MCallee, MFunction, MInst, MModule, MOperand,
        MTerminator, MemClass, RegFile, RegMask, SlotPurpose,
    };

    fn func(name: &str, blocks: Vec<MBlock>, is_leaf: bool) -> MFunction {
        MFunction {
            name: name.into(),
            entry: BlockId(0),
            blocks: blocks.into_iter().collect(),
            frame: EntityVec::new(),
            num_params: 0,
            max_outgoing: 0,
            is_leaf,
        }
    }

    /// main: rv = 2; call child; print rv   (child: rv = rv * 3)
    fn call_module(regs: &RegFile) -> MModule {
        let rv = regs.ret_reg();
        let child = func(
            "child",
            vec![MBlock {
                insts: vec![MInst::Bin {
                    op: BinOp::Mul,
                    dst: rv,
                    lhs: MOperand::Reg(rv),
                    rhs: MOperand::Imm(3),
                }],
                term: MTerminator::Ret,
            }],
            true,
        );
        let main = func(
            "main",
            vec![MBlock {
                insts: vec![
                    MInst::Copy {
                        dst: rv,
                        src: MOperand::Imm(2),
                    },
                    MInst::Call {
                        callee: MCallee::Direct(FuncId(0)),
                        num_stack_args: 0,
                    },
                    MInst::Print {
                        arg: MOperand::Reg(rv),
                    },
                ],
                term: MTerminator::Ret,
            }],
            false,
        );
        MModule {
            funcs: [child, main].into_iter().collect(),
            globals: EntityVec::new(),
            main: Some(FuncId(1)),
        }
    }

    #[test]
    fn registers_are_global_across_calls() {
        let regs = RegFile::mips_like();
        let m = call_module(&regs);
        let r = run(&m, &regs, &SimOptions::for_target(&regs)).unwrap();
        assert_eq!(
            r.output,
            vec![6],
            "callee computed into the shared register"
        );
        assert_eq!(r.stats.calls, 1);
        assert!(r.stats.cycles > 0);
    }

    #[test]
    fn stack_args_reach_callee_and_are_counted() {
        let regs = RegFile::mips_like();
        let rv = regs.ret_reg();
        let child = func(
            "child",
            vec![MBlock {
                insts: vec![MInst::Load {
                    dst: rv,
                    addr: MAddress::Incoming(1),
                    class: MemClass::ScalarHome,
                }],
                term: MTerminator::Ret,
            }],
            true,
        );
        let mut main = func(
            "main",
            vec![MBlock {
                insts: vec![
                    MInst::Store {
                        src: MOperand::Imm(10),
                        addr: MAddress::Outgoing(0),
                        class: MemClass::ScalarHome,
                    },
                    MInst::Store {
                        src: MOperand::Imm(20),
                        addr: MAddress::Outgoing(1),
                        class: MemClass::ScalarHome,
                    },
                    MInst::Call {
                        callee: MCallee::Direct(FuncId(0)),
                        num_stack_args: 2,
                    },
                    MInst::Print {
                        arg: MOperand::Reg(rv),
                    },
                ],
                term: MTerminator::Ret,
            }],
            false,
        );
        main.max_outgoing = 2;
        let m = MModule {
            funcs: [child, main].into_iter().collect(),
            globals: EntityVec::new(),
            main: Some(FuncId(1)),
        };
        let r = run(&m, &regs, &SimOptions::for_target(&regs)).unwrap();
        assert_eq!(r.output, vec![20]);
        assert_eq!(
            r.stats.stores(MemClass::ScalarHome),
            2,
            "two outgoing stack args"
        );
        assert_eq!(r.stats.loads(MemClass::ScalarHome), 1);
        assert_eq!(r.stats.scalar_mem(), 3);
    }

    #[test]
    fn convention_checker_catches_clobber() {
        let regs = RegFile::mips_like();
        let s0 = regs
            .allocatable_of(ipra_machine::RegClass::CalleeSaved)
            .next()
            .expect("has callee-saved regs");
        // child trashes s0 but its mask claims it preserves everything.
        let child = func(
            "bad_child",
            vec![MBlock {
                insts: vec![MInst::Copy {
                    dst: s0,
                    src: MOperand::Imm(99),
                }],
                term: MTerminator::Ret,
            }],
            true,
        );
        let main = func(
            "main",
            vec![MBlock {
                insts: vec![
                    MInst::Copy {
                        dst: s0,
                        src: MOperand::Imm(1),
                    },
                    MInst::Call {
                        callee: MCallee::Direct(FuncId(0)),
                        num_stack_args: 0,
                    },
                ],
                term: MTerminator::Ret,
            }],
            false,
        );
        let m = MModule {
            funcs: [child, main].into_iter().collect(),
            globals: EntityVec::new(),
            main: Some(FuncId(1)),
        };
        let masks = vec![RegMask::EMPTY, RegMask::EMPTY];
        let opts = SimOptions::for_target(&regs).check_preservation(masks);
        match run(&m, &regs, &opts) {
            Err(SimTrap::ConventionViolation {
                func,
                reg,
                before,
                after,
            }) => {
                assert_eq!(func, "bad_child");
                assert_eq!(reg, s0);
                assert_eq!((before, after), (1, 99));
            }
            other => panic!("expected convention violation, got {other:?}"),
        }
        // With s0 declared clobbered, the same program passes.
        let masks = vec![RegMask::single(s0), RegMask::single(s0)];
        let opts = SimOptions::for_target(&regs).check_preservation(masks);
        assert!(run(&m, &regs, &opts).is_ok());
    }

    #[test]
    fn frame_slots_are_per_activation() {
        // rec(depth in a0): store depth to its own frame slot, recurse once,
        // then print the slot — each activation must keep its own value.
        let regs = RegFile::mips_like();
        let a0 = regs.param_regs()[0];
        let mut frame = EntityVec::new();
        frame.push(FrameSlot {
            size: 1,
            purpose: SlotPurpose::Home,
            label: "x".into(),
        });
        let t0 = regs.allocatable()[4];
        let rec = MFunction {
            name: "rec".into(),
            entry: BlockId(0),
            blocks: [
                MBlock {
                    insts: vec![
                        MInst::Store {
                            src: MOperand::Reg(a0),
                            addr: MAddress::slot(FrameSlotId(0)),
                            class: MemClass::ScalarHome,
                        },
                        MInst::Bin {
                            op: BinOp::Lt,
                            dst: t0,
                            lhs: MOperand::Reg(a0),
                            rhs: MOperand::Imm(2),
                        },
                    ],
                    term: MTerminator::CondBr {
                        cond: MOperand::Reg(t0),
                        then_to: BlockId(2),
                        else_to: BlockId(1),
                    },
                },
                MBlock {
                    insts: vec![
                        MInst::Bin {
                            op: BinOp::Sub,
                            dst: a0,
                            lhs: MOperand::Reg(a0),
                            rhs: MOperand::Imm(1),
                        },
                        MInst::Call {
                            callee: MCallee::Direct(FuncId(0)),
                            num_stack_args: 0,
                        },
                    ],
                    term: MTerminator::Br(BlockId(2)),
                },
                MBlock {
                    insts: vec![
                        MInst::Load {
                            dst: t0,
                            addr: MAddress::slot(FrameSlotId(0)),
                            class: MemClass::ScalarHome,
                        },
                        MInst::Print {
                            arg: MOperand::Reg(t0),
                        },
                    ],
                    term: MTerminator::Ret,
                },
            ]
            .into_iter()
            .collect(),
            frame,
            num_params: 1,
            max_outgoing: 0,
            is_leaf: false,
        };
        let main = func(
            "main",
            vec![MBlock {
                insts: vec![
                    MInst::Copy {
                        dst: a0,
                        src: MOperand::Imm(3),
                    },
                    MInst::Call {
                        callee: MCallee::Direct(FuncId(0)),
                        num_stack_args: 0,
                    },
                ],
                term: MTerminator::Ret,
            }],
            false,
        );
        let m = MModule {
            funcs: [rec, main].into_iter().collect(),
            globals: EntityVec::new(),
            main: Some(FuncId(1)),
        };
        let r = run(&m, &regs, &SimOptions::for_target(&regs)).unwrap();
        assert_eq!(
            r.output,
            vec![1, 2, 3],
            "innermost prints first, frames independent"
        );
        assert_eq!(r.stats.max_depth(), 4);
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let regs = RegFile::mips_like();
        let main = func(
            "main",
            vec![MBlock {
                insts: vec![],
                term: MTerminator::Br(BlockId(0)),
            }],
            true,
        );
        let m = MModule {
            funcs: [main].into_iter().collect(),
            globals: EntityVec::new(),
            main: Some(FuncId(0)),
        };
        let mut opts = SimOptions::for_target(&regs);
        opts.fuel = 100;
        assert_eq!(run(&m, &regs, &opts).unwrap_err(), SimTrap::OutOfFuel);
    }

    #[test]
    fn bad_indirect_target_traps() {
        let regs = RegFile::mips_like();
        let main = func(
            "main",
            vec![MBlock {
                insts: vec![MInst::Call {
                    callee: MCallee::Indirect(MOperand::Imm(99)),
                    num_stack_args: 0,
                }],
                term: MTerminator::Ret,
            }],
            false,
        );
        let m = MModule {
            funcs: [main].into_iter().collect(),
            globals: EntityVec::new(),
            main: Some(FuncId(0)),
        };
        let opts = SimOptions::for_target(&regs);
        assert_eq!(
            run(&m, &regs, &opts).unwrap_err(),
            SimTrap::BadIndirectTarget(99)
        );
    }
}
