//! Execution statistics — the quantities Table 1 and Table 2 report.

use ipra_machine::{CostModel, MemClass};
use ipra_obs::metrics::Log2Histogram;

/// Synthetic caller id for the program-entry edge `<entry> -> main`:
/// `main`'s activation is not created by a call instruction, but its
/// prologue save/restore traffic still needs an edge to land on.
pub const ROOT_CALLER: u32 = u32::MAX;

/// Penalty traffic attributed to one caller→callee edge of the dynamic
/// call graph — the per-edge decomposition of the paper's register usage
/// penalty (Eqs 3.5/3.6). Every save/restore and spill memory operation an
/// activation executes is charged to the edge that *created* the
/// activation, so summing any field over all edges reproduces the
/// corresponding aggregate in [`Stats`] exactly.
///
/// Caller-side saves around a call site (the allocator's `save_around`
/// plan) execute inside the *caller's* activation and therefore land on
/// the caller's own incoming edge; the static side of the ledger (the
/// allocator's `penalty.callsite.saved_regs` metric) breaks those out per
/// call site.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EdgePenalty {
    /// Calling function (`FuncId` index), or [`ROOT_CALLER`] for the
    /// program-entry edge.
    pub caller: u32,
    /// Called function (`FuncId` index).
    pub callee: u32,
    /// Times this edge was taken (0 for the program-entry edge).
    pub calls: u64,
    /// Save/restore-class loads executed by activations created here.
    pub sr_loads: u64,
    /// Save/restore-class stores executed by activations created here.
    pub sr_stores: u64,
    /// Spill-class loads executed by activations created here.
    pub spill_loads: u64,
    /// Spill-class stores executed by activations created here.
    pub spill_stores: u64,
    /// Cycles spent on the save/restore traffic above, priced by the run's
    /// [`CostModel`] — the edge's share of the paper's penalty.
    pub penalty_cycles: u64,
}

impl EdgePenalty {
    /// Save/restore loads + stores on this edge.
    pub fn save_restore_mem(&self) -> u64 {
        self.sr_loads + self.sr_stores
    }

    /// Spill loads + stores on this edge.
    pub fn spill_mem(&self) -> u64 {
        self.spill_loads + self.spill_stores
    }
}

/// Dynamic counts attributed to a single function (cycles, instructions and
/// memory traffic charged while that function's activation was current;
/// `calls` counts the call instructions *it* executed).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FuncStats {
    /// Cycles charged while this function was executing.
    pub cycles: u64,
    /// Instructions this function executed (terminators included).
    pub insts: u64,
    /// Call instructions this function executed.
    pub calls: u64,
    /// Loads, by accounting class `[Data, ScalarHome, Spill, SaveRestore]`.
    pub loads_by_class: [u64; 4],
    /// Stores, by accounting class.
    pub stores_by_class: [u64; 4],
}

impl FuncStats {
    /// Records a load of class `c`.
    pub fn count_load(&mut self, c: MemClass) {
        self.loads_by_class[class_index(c)] += 1;
    }

    /// Records a store of class `c`.
    pub fn count_store(&mut self, c: MemClass) {
        self.stores_by_class[class_index(c)] += 1;
    }

    /// Save/restore loads + stores only.
    pub fn save_restore_mem(&self) -> u64 {
        self.loads_by_class[class_index(MemClass::SaveRestore)]
            + self.stores_by_class[class_index(MemClass::SaveRestore)]
    }
}

/// Dynamic counts accumulated by the simulator (the role `pixie` plays in
/// the paper's measurements).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions executed (terminators included).
    pub insts: u64,
    /// Call instructions executed.
    pub calls: u64,
    /// Loads executed, by accounting class
    /// `[Data, ScalarHome, Spill, SaveRestore]`.
    pub loads_by_class: [u64; 4],
    /// Stores executed, by accounting class.
    pub stores_by_class: [u64; 4],
    /// Call-stack depth histogram: activations *entered*, bucketed by
    /// stack depth (`main` enters at depth 1). Exact count/max survive the
    /// log₂ bucketing, so [`Stats::max_depth`] is still precise — and the
    /// histogram stays bounded even at the simulator's 100 000-frame depth
    /// limit, where the old dense vector grew one slot per depth.
    pub depth_hist: Log2Histogram,
    /// Per-function attribution, indexed by `FuncId` (empty unless the
    /// simulator filled it in).
    pub per_func: Vec<FuncStats>,
    /// Dynamic call-edge counts `(caller, callee, count)` as `FuncId`
    /// indices, sorted by `(caller, callee)`.
    pub call_edges: Vec<(u32, u32, u64)>,
    /// Per-call-edge penalty ledger, sorted by `(caller, callee)` with the
    /// program-entry edge ([`ROOT_CALLER`]) last. Field-wise sums over
    /// this vector reconcile exactly with the aggregate save/restore and
    /// spill counts above.
    pub edge_penalty: Vec<EdgePenalty>,
}

fn class_index(c: MemClass) -> usize {
    match c {
        MemClass::Data => 0,
        MemClass::ScalarHome => 1,
        MemClass::Spill => 2,
        MemClass::SaveRestore => 3,
    }
}

impl Stats {
    /// Records a load of class `c`.
    pub fn count_load(&mut self, c: MemClass) {
        self.loads_by_class[class_index(c)] += 1;
    }

    /// Records a store of class `c`.
    pub fn count_store(&mut self, c: MemClass) {
        self.stores_by_class[class_index(c)] += 1;
    }

    /// Records an activation entering at stack depth `d` (`main` is 1).
    pub fn record_depth(&mut self, d: usize) {
        self.depth_hist.observe(d as u64);
    }

    /// Deepest call stack observed (exact: the histogram tracks its max
    /// on the side).
    pub fn max_depth(&self) -> usize {
        self.depth_hist.max as usize
    }

    /// Loads of a given class.
    pub fn loads(&self, c: MemClass) -> u64 {
        self.loads_by_class[class_index(c)]
    }

    /// Stores of a given class.
    pub fn stores(&self, c: MemClass) -> u64 {
        self.stores_by_class[class_index(c)]
    }

    /// All loads.
    pub fn total_loads(&self) -> u64 {
        self.loads_by_class.iter().sum()
    }

    /// All stores.
    pub fn total_stores(&self) -> u64 {
        self.stores_by_class.iter().sum()
    }

    /// Scalar loads + stores: variable homes, spills and register
    /// saves/restores — "removable by the register allocator given an
    /// unlimited number of registers" (paper §8).
    pub fn scalar_mem(&self) -> u64 {
        self.loads_by_class[1..].iter().sum::<u64>() + self.stores_by_class[1..].iter().sum::<u64>()
    }

    /// Save/restore loads + stores only.
    pub fn save_restore_mem(&self) -> u64 {
        self.loads(MemClass::SaveRestore) + self.stores(MemClass::SaveRestore)
    }

    /// Total cycles spent on save/restore traffic under `cost` — the
    /// aggregate register usage penalty (Eqs 3.5/3.6 summed over all
    /// edges). Equals the sum of [`EdgePenalty::penalty_cycles`] over
    /// [`Stats::edge_penalty`] by construction.
    pub fn penalty_cycles(&self, cost: &CostModel) -> u64 {
        self.loads(MemClass::SaveRestore) * cost.load
            + self.stores(MemClass::SaveRestore) * cost.store
    }

    /// Average cycles per call — the paper's `cycles/call` column.
    pub fn cycles_per_call(&self) -> f64 {
        if self.calls == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.calls as f64
        }
    }
}

/// Percentage reduction of `new` relative to `base`, as the paper reports:
/// positive numbers are improvements.
pub fn percent_reduction(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (base as f64 - new as f64) / base as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accounting() {
        let mut s = Stats::default();
        s.count_load(MemClass::Data);
        s.count_load(MemClass::SaveRestore);
        s.count_store(MemClass::ScalarHome);
        s.count_store(MemClass::Spill);
        assert_eq!(s.total_loads(), 2);
        assert_eq!(s.total_stores(), 2);
        assert_eq!(s.scalar_mem(), 3, "data access excluded");
        assert_eq!(s.save_restore_mem(), 1);
    }

    #[test]
    fn cycles_per_call() {
        let s = Stats {
            cycles: 100,
            calls: 4,
            ..Stats::default()
        };
        assert_eq!(s.cycles_per_call(), 25.0);
        assert!(Stats::default().cycles_per_call().is_nan());
    }

    #[test]
    fn depth_histogram_and_derived_max() {
        let mut s = Stats::default();
        assert_eq!(s.max_depth(), 0, "no activations yet");
        s.record_depth(1); // main
        s.record_depth(2);
        s.record_depth(2);
        s.record_depth(4);
        assert_eq!(s.depth_hist.count, 4, "one sample per activation");
        assert_eq!(s.depth_hist.count_for(1), 1);
        assert_eq!(s.depth_hist.count_for(2), 2);
        assert_eq!(s.max_depth(), 4);
        s.record_depth(3);
        assert_eq!(s.max_depth(), 4, "shallower entries keep the max");
        // Extreme depths stay bounded: the old dense vector allocated one
        // slot per depth, the log₂ histogram at most 65 buckets.
        s.record_depth(99_999);
        assert_eq!(s.max_depth(), 99_999);
    }

    #[test]
    fn edge_penalty_sums() {
        let e = EdgePenalty {
            caller: 0,
            callee: 1,
            calls: 3,
            sr_loads: 4,
            sr_stores: 5,
            spill_loads: 1,
            spill_stores: 2,
            penalty_cycles: 13,
        };
        assert_eq!(e.save_restore_mem(), 9);
        assert_eq!(e.spill_mem(), 3);
    }

    #[test]
    fn per_func_attribution_accumulates() {
        let mut f = FuncStats::default();
        f.count_load(MemClass::SaveRestore);
        f.count_store(MemClass::SaveRestore);
        f.count_load(MemClass::Data);
        assert_eq!(f.save_restore_mem(), 2);
        assert_eq!(f.loads_by_class[0], 1);
    }

    #[test]
    fn percent_reduction_sign_convention() {
        assert_eq!(percent_reduction(200, 100), 50.0, "halving is +50%");
        assert_eq!(percent_reduction(100, 125), -25.0, "regression is negative");
        assert_eq!(percent_reduction(0, 10), 0.0);
    }
}
