//! Execution statistics — the quantities Table 1 and Table 2 report.

use ipra_machine::MemClass;

/// Dynamic counts attributed to a single function (cycles, instructions and
/// memory traffic charged while that function's activation was current;
/// `calls` counts the call instructions *it* executed).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FuncStats {
    /// Cycles charged while this function was executing.
    pub cycles: u64,
    /// Instructions this function executed (terminators included).
    pub insts: u64,
    /// Call instructions this function executed.
    pub calls: u64,
    /// Loads, by accounting class `[Data, ScalarHome, Spill, SaveRestore]`.
    pub loads_by_class: [u64; 4],
    /// Stores, by accounting class.
    pub stores_by_class: [u64; 4],
}

impl FuncStats {
    /// Records a load of class `c`.
    pub fn count_load(&mut self, c: MemClass) {
        self.loads_by_class[class_index(c)] += 1;
    }

    /// Records a store of class `c`.
    pub fn count_store(&mut self, c: MemClass) {
        self.stores_by_class[class_index(c)] += 1;
    }

    /// Save/restore loads + stores only.
    pub fn save_restore_mem(&self) -> u64 {
        self.loads_by_class[class_index(MemClass::SaveRestore)]
            + self.stores_by_class[class_index(MemClass::SaveRestore)]
    }
}

/// Dynamic counts accumulated by the simulator (the role `pixie` plays in
/// the paper's measurements).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions executed (terminators included).
    pub insts: u64,
    /// Call instructions executed.
    pub calls: u64,
    /// Loads executed, by accounting class
    /// `[Data, ScalarHome, Spill, SaveRestore]`.
    pub loads_by_class: [u64; 4],
    /// Stores executed, by accounting class.
    pub stores_by_class: [u64; 4],
    /// Call-stack depth histogram: `depth_hist[d]` counts activations
    /// *entered* at depth `d` (`main` enters at depth 1; index 0 is
    /// unused). The deepest stack observed is [`Stats::max_depth`].
    pub depth_hist: Vec<u64>,
    /// Per-function attribution, indexed by `FuncId` (empty unless the
    /// simulator filled it in).
    pub per_func: Vec<FuncStats>,
    /// Dynamic call-edge counts `(caller, callee, count)` as `FuncId`
    /// indices, sorted by `(caller, callee)`.
    pub call_edges: Vec<(u32, u32, u64)>,
}

fn class_index(c: MemClass) -> usize {
    match c {
        MemClass::Data => 0,
        MemClass::ScalarHome => 1,
        MemClass::Spill => 2,
        MemClass::SaveRestore => 3,
    }
}

impl Stats {
    /// Records a load of class `c`.
    pub fn count_load(&mut self, c: MemClass) {
        self.loads_by_class[class_index(c)] += 1;
    }

    /// Records a store of class `c`.
    pub fn count_store(&mut self, c: MemClass) {
        self.stores_by_class[class_index(c)] += 1;
    }

    /// Records an activation entering at stack depth `d` (`main` is 1).
    pub fn record_depth(&mut self, d: usize) {
        if self.depth_hist.len() <= d {
            self.depth_hist.resize(d + 1, 0);
        }
        self.depth_hist[d] += 1;
    }

    /// Deepest call stack observed, derived from the depth histogram.
    pub fn max_depth(&self) -> usize {
        self.depth_hist.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Loads of a given class.
    pub fn loads(&self, c: MemClass) -> u64 {
        self.loads_by_class[class_index(c)]
    }

    /// Stores of a given class.
    pub fn stores(&self, c: MemClass) -> u64 {
        self.stores_by_class[class_index(c)]
    }

    /// All loads.
    pub fn total_loads(&self) -> u64 {
        self.loads_by_class.iter().sum()
    }

    /// All stores.
    pub fn total_stores(&self) -> u64 {
        self.stores_by_class.iter().sum()
    }

    /// Scalar loads + stores: variable homes, spills and register
    /// saves/restores — "removable by the register allocator given an
    /// unlimited number of registers" (paper §8).
    pub fn scalar_mem(&self) -> u64 {
        self.loads_by_class[1..].iter().sum::<u64>() + self.stores_by_class[1..].iter().sum::<u64>()
    }

    /// Save/restore loads + stores only.
    pub fn save_restore_mem(&self) -> u64 {
        self.loads(MemClass::SaveRestore) + self.stores(MemClass::SaveRestore)
    }

    /// Average cycles per call — the paper's `cycles/call` column.
    pub fn cycles_per_call(&self) -> f64 {
        if self.calls == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.calls as f64
        }
    }
}

/// Percentage reduction of `new` relative to `base`, as the paper reports:
/// positive numbers are improvements.
pub fn percent_reduction(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (base as f64 - new as f64) / base as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accounting() {
        let mut s = Stats::default();
        s.count_load(MemClass::Data);
        s.count_load(MemClass::SaveRestore);
        s.count_store(MemClass::ScalarHome);
        s.count_store(MemClass::Spill);
        assert_eq!(s.total_loads(), 2);
        assert_eq!(s.total_stores(), 2);
        assert_eq!(s.scalar_mem(), 3, "data access excluded");
        assert_eq!(s.save_restore_mem(), 1);
    }

    #[test]
    fn cycles_per_call() {
        let s = Stats {
            cycles: 100,
            calls: 4,
            ..Stats::default()
        };
        assert_eq!(s.cycles_per_call(), 25.0);
        assert!(Stats::default().cycles_per_call().is_nan());
    }

    #[test]
    fn depth_histogram_and_derived_max() {
        let mut s = Stats::default();
        assert_eq!(s.max_depth(), 0, "no activations yet");
        s.record_depth(1); // main
        s.record_depth(2);
        s.record_depth(2);
        s.record_depth(4);
        assert_eq!(s.depth_hist, vec![0, 1, 2, 0, 1]);
        assert_eq!(s.max_depth(), 4);
        s.record_depth(3);
        assert_eq!(s.max_depth(), 4, "shallower entries keep the max");
    }

    #[test]
    fn per_func_attribution_accumulates() {
        let mut f = FuncStats::default();
        f.count_load(MemClass::SaveRestore);
        f.count_store(MemClass::SaveRestore);
        f.count_load(MemClass::Data);
        assert_eq!(f.save_restore_mem(), 2);
        assert_eq!(f.loads_by_class[0], 1);
    }

    #[test]
    fn percent_reduction_sign_convention() {
        assert_eq!(percent_reduction(200, 100), 50.0, "halving is +50%");
        assert_eq!(percent_reduction(100, 125), -25.0, "regression is negative");
        assert_eq!(percent_reduction(0, 10), 0.0);
    }
}
