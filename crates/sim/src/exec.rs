//! The machine-code simulator.
//!
//! Executes an [`MModule`] against one *global* register file — essential
//! for this reproduction, because the entire subject of the paper is what
//! happens to shared registers at procedure boundaries. A register that a
//! callee clobbers without saving is really clobbered for the caller here.

use std::fmt;

use ipra_ir::{BlockId, FuncId};
use ipra_machine::{
    CostModel, MAddress, MCallee, MFunction, MInst, MModule, MOperand, MTerminator, PReg, RegFile,
    RegMask,
};

use ipra_machine::MemClass;

use crate::stats::{EdgePenalty, FuncStats, Stats, ROOT_CALLER};

/// Why simulation stopped abnormally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimTrap {
    /// Division (or remainder) by zero.
    DivideByZero,
    /// Out-of-bounds memory access.
    OutOfBounds {
        /// Description of the object.
        what: String,
        /// Offending index.
        index: i64,
    },
    /// Indirect call to a value that is not a function address.
    BadIndirectTarget(i64),
    /// Frame stack exceeded the limit.
    StackOverflow,
    /// Cycle budget exhausted.
    OutOfFuel,
    /// Module has no `main`.
    NoMain,
    /// A procedure modified a register its summary promises to preserve.
    ConventionViolation {
        /// Offending function.
        func: String,
        /// Register whose value changed.
        reg: PReg,
        /// Value at entry.
        before: i64,
        /// Value at return.
        after: i64,
    },
}

impl fmt::Display for SimTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimTrap::DivideByZero => write!(f, "division by zero"),
            SimTrap::OutOfBounds { what, index } => {
                write!(f, "index {index} out of bounds for {what}")
            }
            SimTrap::BadIndirectTarget(v) => {
                write!(f, "indirect call through non-function value {v}")
            }
            SimTrap::StackOverflow => write!(f, "frame stack overflow"),
            SimTrap::OutOfFuel => write!(f, "cycle budget exhausted"),
            SimTrap::NoMain => write!(f, "module has no main"),
            SimTrap::ConventionViolation {
                func,
                reg,
                before,
                after,
            } => write!(
                f,
                "`{func}` must preserve {reg} but changed it from {before} to {after}"
            ),
        }
    }
}

impl std::error::Error for SimTrap {}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Cycle cost model.
    pub cost: CostModel,
    /// Cycle budget.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// When set, the simulator checks on every return that the returning
    /// function preserved every register *not* in its clobber mask (the
    /// register-usage summary soundness check). Indexed by function.
    pub preserve_masks: Option<Vec<RegMask>>,
    /// Registers exempt from the preservation check (return value, scratch,
    /// link). Filled in by [`SimOptions::for_target`].
    pub exempt: RegMask,
    /// Collect per-block execution counts (the profile the paper's §8
    /// names as future feedback into the allocator).
    pub collect_block_profile: bool,
}

impl SimOptions {
    /// Default options for a target register file (no convention checking).
    pub fn for_target(regs: &RegFile) -> Self {
        let mut exempt = RegMask::single(regs.ret_reg());
        exempt.insert(regs.ra());
        for s in regs.scratch() {
            exempt.insert(s);
        }
        SimOptions {
            cost: CostModel::default(),
            fuel: 5_000_000_000,
            max_depth: 100_000,
            preserve_masks: None,
            exempt,
            collect_block_profile: false,
        }
    }

    /// Enables the convention checker with per-function clobber masks: every
    /// register outside `masks[f]` (and outside the exempt set) must be
    /// preserved by `f`.
    pub fn check_preservation(mut self, masks: Vec<RegMask>) -> Self {
        self.preserve_masks = Some(masks);
        self
    }

    /// Enables block-profile collection.
    pub fn with_block_profile(mut self) -> Self {
        self.collect_block_profile = true;
        self
    }
}

/// Result of a successful simulation.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// Values printed, in order.
    pub output: Vec<i64>,
    /// Value left in the return register by `main`.
    pub return_value: i64,
    /// Dynamic counts.
    pub stats: Stats,
    /// Execution count per `[function][block]`, when requested.
    pub block_profile: Option<Vec<Vec<u64>>>,
}

struct Activation {
    func: FuncId,
    block: BlockId,
    ip: usize,
    slots: Vec<Vec<i64>>,
    incoming: Vec<i64>,
    outgoing: Vec<i64>,
    /// Register values the returning function must reproduce (convention
    /// checking only).
    preserved: Option<Vec<(PReg, i64)>>,
    /// The call edge `(caller, callee)` that created this activation;
    /// `(ROOT_CALLER, main)` for the program entry. Save/restore and spill
    /// traffic executed by this activation is charged to this edge.
    edge: (u32, u32),
}

/// Runs `main` of a lowered module.
///
/// # Errors
///
/// Returns the [`SimTrap`] that stopped execution.
pub fn run(module: &MModule, regs: &RegFile, opts: &SimOptions) -> Result<SimResult, SimTrap> {
    let main = module.main.ok_or(SimTrap::NoMain)?;

    let mut reg_file = vec![0i64; regs.num_regs()];
    let mut globals: Vec<Vec<i64>> = module
        .globals
        .values()
        .map(|g| {
            let mut v = vec![0i64; g.size as usize];
            for (i, init) in g.init.iter().enumerate().take(g.size as usize) {
                v[i] = *init;
            }
            v
        })
        .collect();
    let mut output = Vec::new();
    let mut stats = Stats {
        per_func: vec![FuncStats::default(); module.funcs.len()],
        ..Stats::default()
    };
    // One ledger entry per dynamic call edge: call counts and the
    // save/restore + spill traffic charged to activations the edge created.
    let mut edge_pen: std::collections::HashMap<(u32, u32), EdgePenalty> =
        std::collections::HashMap::new();

    let new_activation = |module: &MModule, func: FuncId, incoming: Vec<i64>| -> Activation {
        let f = &module.funcs[func];
        Activation {
            func,
            block: f.entry,
            ip: 0,
            slots: f
                .frame
                .values()
                .map(|s| vec![0i64; s.size as usize])
                .collect(),
            incoming,
            outgoing: vec![0i64; f.max_outgoing as usize],
            preserved: None,
            edge: (ROOT_CALLER, func.0),
        }
    };

    let snapshot =
        |opts: &SimOptions, func: FuncId, regs_now: &[i64]| -> Option<Vec<(PReg, i64)>> {
            opts.preserve_masks.as_ref().map(|masks| {
                let clobbers = masks[func.index()];
                (0..regs_now.len() as u8)
                    .map(PReg)
                    .filter(|r| !clobbers.contains(*r) && !opts.exempt.contains(*r))
                    .map(|r| (r, regs_now[r.index()]))
                    .collect()
            })
        };

    let mut profile: Option<Vec<Vec<u64>>> = if opts.collect_block_profile {
        Some(
            module
                .funcs
                .values()
                .map(|f| vec![0u64; f.blocks.len()])
                .collect(),
        )
    } else {
        None
    };

    let mut stack: Vec<Activation> = Vec::new();
    let mut cur = new_activation(module, main, Vec::new());
    cur.preserved = snapshot(opts, main, &reg_file);
    stats.record_depth(1);
    if let Some(p) = profile.as_mut() {
        p[cur.func.index()][cur.block.index()] += 1;
    }

    // Cycles are attributed to the currently-executing activation, so the
    // call cost lands on the caller and the return cost on the callee.
    macro_rules! charge {
        ($n:expr) => {{
            let n = $n;
            stats.cycles += n;
            stats.per_func[cur.func.index()].cycles += n;
            if stats.cycles > opts.fuel {
                return Err(SimTrap::OutOfFuel);
            }
        }};
    }

    loop {
        let func: &MFunction = &module.funcs[cur.func];
        let block = &func.blocks[cur.block];

        if cur.ip < block.insts.len() {
            let inst = &block.insts[cur.ip];
            cur.ip += 1;
            stats.insts += 1;
            stats.per_func[cur.func.index()].insts += 1;

            let read = |regs_now: &[i64], o: MOperand| -> i64 {
                match o {
                    MOperand::Reg(r) => regs_now[r.index()],
                    MOperand::Imm(i) => i,
                }
            };

            match inst {
                MInst::Copy { dst, src } => {
                    charge!(opts.cost.alu);
                    reg_file[dst.index()] = read(&reg_file, *src);
                }
                MInst::Bin { op, dst, lhs, rhs } => {
                    charge!(opts.cost.bin_op(*op));
                    let a = read(&reg_file, *lhs);
                    let b = read(&reg_file, *rhs);
                    reg_file[dst.index()] = op.eval(a, b).ok_or(SimTrap::DivideByZero)?;
                }
                MInst::Un { op, dst, src } => {
                    charge!(opts.cost.alu);
                    reg_file[dst.index()] = op.eval(read(&reg_file, *src));
                }
                MInst::Load { dst, addr, class } => {
                    charge!(opts.cost.load);
                    stats.count_load(*class);
                    stats.per_func[cur.func.index()].count_load(*class);
                    match class {
                        MemClass::SaveRestore => {
                            let e = edge_pen.entry(cur.edge).or_default();
                            e.sr_loads += 1;
                            e.penalty_cycles += opts.cost.load;
                        }
                        MemClass::Spill => {
                            edge_pen.entry(cur.edge).or_default().spill_loads += 1;
                        }
                        _ => {}
                    }
                    let v = read_mem(module, &globals, &cur, &reg_file, *addr)?;
                    reg_file[dst.index()] = v;
                }
                MInst::Store { src, addr, class } => {
                    charge!(opts.cost.store);
                    stats.count_store(*class);
                    stats.per_func[cur.func.index()].count_store(*class);
                    match class {
                        MemClass::SaveRestore => {
                            let e = edge_pen.entry(cur.edge).or_default();
                            e.sr_stores += 1;
                            e.penalty_cycles += opts.cost.store;
                        }
                        MemClass::Spill => {
                            edge_pen.entry(cur.edge).or_default().spill_stores += 1;
                        }
                        _ => {}
                    }
                    let v = read(&reg_file, *src);
                    write_mem(module, &mut globals, &mut cur, &reg_file, *addr, v)?;
                }
                MInst::Call {
                    callee,
                    num_stack_args,
                } => {
                    charge!(opts.cost.call);
                    stats.calls += 1;
                    stats.per_func[cur.func.index()].calls += 1;
                    let target = match callee {
                        MCallee::Direct(id) => *id,
                        MCallee::Indirect(t) => {
                            let raw = read(&reg_file, *t);
                            if raw < 0 || raw as usize >= module.funcs.len() {
                                return Err(SimTrap::BadIndirectTarget(raw));
                            }
                            FuncId(raw as u32)
                        }
                    };
                    // The first cells of the caller's outgoing area become
                    // the callee's incoming stack arguments (the two areas
                    // coincide across the frame boundary on a real stack).
                    let n = *num_stack_args as usize;
                    if n > cur.outgoing.len() {
                        return Err(SimTrap::OutOfBounds {
                            what: "outgoing-argument area".into(),
                            index: n as i64 - 1,
                        });
                    }
                    let incoming = cur.outgoing[..n].to_vec();
                    if stack.len() + 1 >= opts.max_depth {
                        return Err(SimTrap::StackOverflow);
                    }
                    edge_pen.entry((cur.func.0, target.0)).or_default().calls += 1;
                    let mut callee_act = new_activation(module, target, incoming);
                    callee_act.edge = (cur.func.0, target.0);
                    callee_act.preserved = snapshot(opts, target, &reg_file);
                    stack.push(std::mem::replace(&mut cur, callee_act));
                    stats.record_depth(stack.len() + 1);
                    if let Some(p) = profile.as_mut() {
                        p[cur.func.index()][cur.block.index()] += 1;
                    }
                }
                MInst::FuncAddr { dst, func } => {
                    charge!(opts.cost.alu);
                    reg_file[dst.index()] = func.index() as i64;
                }
                MInst::Print { arg } => {
                    charge!(opts.cost.print);
                    output.push(read(&reg_file, *arg));
                }
            }
        } else {
            stats.insts += 1;
            stats.per_func[cur.func.index()].insts += 1;
            match block.term {
                MTerminator::Ret => {
                    charge!(opts.cost.ret);
                    if let Some(preserved) = &cur.preserved {
                        for &(r, before) in preserved {
                            let after = reg_file[r.index()];
                            if after != before {
                                return Err(SimTrap::ConventionViolation {
                                    func: func.name.clone(),
                                    reg: r,
                                    before,
                                    after,
                                });
                            }
                        }
                    }
                    match stack.pop() {
                        Some(parent) => cur = parent,
                        None => {
                            let mut ledger: Vec<EdgePenalty> = edge_pen
                                .into_iter()
                                .map(|((a, b), e)| EdgePenalty {
                                    caller: a,
                                    callee: b,
                                    ..e
                                })
                                .collect();
                            // ROOT_CALLER is u32::MAX, so plain (caller,
                            // callee) order puts the entry edge last.
                            ledger.sort_unstable_by_key(|e| (e.caller, e.callee));
                            stats.call_edges = ledger
                                .iter()
                                .filter(|e| e.calls > 0)
                                .map(|e| (e.caller, e.callee, e.calls))
                                .collect();
                            stats.edge_penalty = ledger;
                            return Ok(SimResult {
                                output,
                                return_value: reg_file[regs.ret_reg().index()],
                                stats,
                                block_profile: profile,
                            });
                        }
                    }
                }
                MTerminator::Br(t) => {
                    charge!(opts.cost.branch);
                    cur.block = t;
                    cur.ip = 0;
                    if let Some(p) = profile.as_mut() {
                        p[cur.func.index()][cur.block.index()] += 1;
                    }
                }
                MTerminator::CondBr {
                    cond,
                    then_to,
                    else_to,
                } => {
                    charge!(opts.cost.branch);
                    let c = match cond {
                        MOperand::Reg(r) => reg_file[r.index()],
                        MOperand::Imm(i) => i,
                    };
                    cur.block = if c != 0 { then_to } else { else_to };
                    cur.ip = 0;
                    if let Some(p) = profile.as_mut() {
                        p[cur.func.index()][cur.block.index()] += 1;
                    }
                }
            }
        }
    }
}

fn read_mem(
    module: &MModule,
    globals: &[Vec<i64>],
    cur: &Activation,
    regs: &[i64],
    addr: MAddress,
) -> Result<i64, SimTrap> {
    let idx = |o: MOperand| -> i64 {
        match o {
            MOperand::Reg(r) => regs[r.index()],
            MOperand::Imm(i) => i,
        }
    };
    match addr {
        MAddress::Global { global, index } => {
            let i = idx(index);
            let g = &globals[global.index()];
            if i < 0 || i as usize >= g.len() {
                return Err(SimTrap::OutOfBounds {
                    what: format!("global `{}`", module.globals[global].name),
                    index: i,
                });
            }
            Ok(g[i as usize])
        }
        MAddress::Frame { slot, index } => {
            let i = idx(index);
            let s = &cur.slots[slot.index()];
            if i < 0 || i as usize >= s.len() {
                return Err(SimTrap::OutOfBounds {
                    what: format!("frame slot {slot}"),
                    index: i,
                });
            }
            Ok(s[i as usize])
        }
        MAddress::Incoming(i) => {
            cur.incoming
                .get(i as usize)
                .copied()
                .ok_or(SimTrap::OutOfBounds {
                    what: "incoming arguments".into(),
                    index: i as i64,
                })
        }
        MAddress::Outgoing(i) => {
            cur.outgoing
                .get(i as usize)
                .copied()
                .ok_or(SimTrap::OutOfBounds {
                    what: "outgoing arguments".into(),
                    index: i as i64,
                })
        }
    }
}

fn write_mem(
    module: &MModule,
    globals: &mut [Vec<i64>],
    cur: &mut Activation,
    regs: &[i64],
    addr: MAddress,
    value: i64,
) -> Result<(), SimTrap> {
    let idx = |o: MOperand| -> i64 {
        match o {
            MOperand::Reg(r) => regs[r.index()],
            MOperand::Imm(i) => i,
        }
    };
    match addr {
        MAddress::Global { global, index } => {
            let i = idx(index);
            let g = &mut globals[global.index()];
            if i < 0 || i as usize >= g.len() {
                return Err(SimTrap::OutOfBounds {
                    what: format!("global `{}`", module.globals[global].name),
                    index: i,
                });
            }
            g[i as usize] = value;
            Ok(())
        }
        MAddress::Frame { slot, index } => {
            let i = idx(index);
            let s = &mut cur.slots[slot.index()];
            if i < 0 || i as usize >= s.len() {
                return Err(SimTrap::OutOfBounds {
                    what: format!("frame slot {slot}"),
                    index: i,
                });
            }
            s[i as usize] = value;
            Ok(())
        }
        MAddress::Incoming(i) => Err(SimTrap::OutOfBounds {
            what: "incoming arguments (write)".into(),
            index: i as i64,
        }),
        MAddress::Outgoing(i) => {
            let slot = cur
                .outgoing
                .get_mut(i as usize)
                .ok_or(SimTrap::OutOfBounds {
                    what: "outgoing arguments".into(),
                    index: i as i64,
                })?;
            *slot = value;
            Ok(())
        }
    }
}
