//! Property and edge-case tests for `ipra_obs::json`: randomized
//! render→parse round trips, escape handling, deep nesting, integer
//! boundaries and malformed-input rejection. No external property-testing
//! crate — the generator is a small in-file xorshift PRNG, so failures
//! reproduce from the printed seed.

use ipra_obs::json::{parse, parse_bytes, Json};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random string biased toward characters the escaper must handle:
/// quotes, backslashes, control characters, multi-byte UTF-8.
fn random_string(rng: &mut Rng) -> String {
    let pool: &[char] = &[
        'a', 'b', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '/', 'é', '→', '𝄞', ' ', '{',
        '}', '[', ']', ':', ',',
    ];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| pool[rng.below(pool.len() as u64) as usize])
        .collect()
}

/// A random value of bounded depth. Floats are drawn from small integral
/// ratios so they are finite (non-finite values render as `null` and
/// cannot round-trip by design).
fn random_value(rng: &mut Rng, depth: u32) -> Json {
    let choices = if depth == 0 { 5 } else { 7 };
    match rng.below(choices) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => Json::Int(rng.next() as i64),
        3 => Json::Float((rng.next() as i64 % 1_000_000) as f64 / 64.0),
        4 => Json::Str(random_string(rng)),
        5 => Json::Arr(
            (0..rng.below(4))
                .map(|_| random_value(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.below(4))
                .map(|_| (random_string(rng), random_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

#[test]
fn random_values_round_trip_compact_and_pretty() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for case in 0..500 {
        let seed = rng.0;
        let v = random_value(&mut rng, 4);
        let compact = parse(&v.render())
            .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): compact re-parse: {e}"));
        assert_eq!(compact, v, "case {case} (seed {seed:#x}), compact");
        let pretty = parse(&v.render_pretty())
            .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): pretty re-parse: {e}"));
        assert_eq!(pretty, v, "case {case} (seed {seed:#x}), pretty");
    }
}

#[test]
fn every_escapable_character_round_trips() {
    let nasty: String = (1u32..0x20)
        .map(|c| char::from_u32(c).unwrap())
        .chain(['"', '\\', '/', 'é', '→', '𝄞'])
        .collect();
    let v = Json::Obj(vec![(nasty.clone(), Json::Str(nasty))]);
    let rendered = v.render();
    assert!(
        rendered.is_ascii() || rendered.contains('é'),
        "escaping never produces raw control bytes"
    );
    assert!(!rendered.bytes().any(|b| b < 0x20), "{rendered:?}");
    assert_eq!(parse(&rendered).unwrap(), v);
}

#[test]
fn unicode_escapes_parse_including_replacement_for_lone_surrogates() {
    assert_eq!(parse(r#""Aé→""#).unwrap(), Json::Str("Aé→".into()));
    // A lone surrogate is not a scalar value; the parser substitutes
    // U+FFFD rather than producing invalid UTF-8.
    assert_eq!(parse(r#""\ud800""#).unwrap(), Json::Str("\u{fffd}".into()));
    assert!(parse(r#""\u12"#).is_err(), "truncated escape");
    assert!(parse(r#""\uzzzz""#).is_err(), "non-hex escape");
    assert!(parse(r#""\x41""#).is_err(), "unknown escape letter");
}

#[test]
fn deep_nesting_round_trips_without_blowing_the_stack() {
    const DEPTH: usize = 512;
    let mut v = Json::Int(7);
    for _ in 0..DEPTH {
        v = Json::Arr(vec![v]);
    }
    let text = v.render();
    assert_eq!(text.matches('[').count(), DEPTH);
    assert_eq!(parse(&text).unwrap(), v);

    let mut o = Json::Bool(true);
    for _ in 0..DEPTH {
        o = Json::Obj(vec![("k".into(), o)]);
    }
    assert_eq!(parse(&o.render()).unwrap(), o);
}

#[test]
fn integer_boundaries_round_trip_and_overflow_is_rejected() {
    for n in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
        let v = Json::Int(n);
        assert_eq!(parse(&v.render()).unwrap(), v, "{n}");
    }
    // One past i64::MAX is not silently truncated or wrapped.
    assert!(parse("9223372036854775808").is_err());
    assert!(parse("-9223372036854775809").is_err());
    // But the same magnitude with an exponent is a float.
    assert_eq!(
        parse("9223372036854775808e0").unwrap(),
        Json::Float(9.223372036854776e18)
    );
}

#[test]
fn floats_keep_their_point_and_non_finite_renders_null() {
    // An integral float must not collapse into an Int on the wire.
    let v = Json::Float(3.0);
    assert_eq!(v.render(), "3.0");
    assert_eq!(parse(&v.render()).unwrap(), v);
    assert_eq!(Json::Float(f64::NAN).render(), "null");
    assert_eq!(Json::Float(f64::INFINITY).render(), "null");
}

#[test]
fn parse_bytes_rejects_invalid_utf8_with_the_offset() {
    let mut bytes = br#"{"k": "ab"#.to_vec();
    bytes.push(0xff);
    bytes.extend_from_slice(br#""}"#);
    let err = parse_bytes(&bytes).unwrap_err();
    assert!(err.contains("utf-8"), "{err}");
    assert!(err.contains('9'), "offset of the bad byte: {err}");
    // The same document without the bad byte parses.
    let good = br#"{"k": "ab"}"#;
    assert_eq!(
        parse_bytes(good).unwrap(),
        Json::Obj(vec![("k".into(), Json::Str("ab".into()))])
    );
}

#[test]
fn malformed_documents_are_rejected_not_mangled() {
    for bad in [
        "",
        "{",
        "[",
        "[1,",
        "[1 2]",
        r#"{"a"}"#,
        r#"{"a":}"#,
        "{,}",
        "tru",
        "nul",
        "01x",
        "\"unterminated",
        "1 2",
        "[1]]",
    ] {
        assert!(parse(bad).is_err(), "`{bad}` should be rejected");
    }
}

#[test]
fn whitespace_is_insignificant_everywhere() {
    let spaced = " \t\r\n{ \"a\" :\n[ 1 ,\t2 ] , \"b\" : { } }\r\n ";
    assert_eq!(
        parse(spaced).unwrap(),
        Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("b".into(), Json::Obj(vec![])),
        ])
    );
}
