//! Chrome `trace_event` export.
//!
//! Converts a [`crate::Trace`] span tree into the JSON object format
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! a `{"traceEvents": [...]}` document of complete (`"X"`) events plus
//! `"M"` metadata naming the process and one thread per span lane.
//!
//! Two things to know when reading the result:
//!
//! - **Times are virtual.** [`crate::absorb`] rebases worker shards onto a
//!   serial virtual clock so merged traces are deterministic; the exported
//!   timeline therefore shows logical ordering and per-span durations, not
//!   wall-clock overlap.
//! - **Threads are lanes.** Each tid is a [`crate::SpanRec::lane`] — one
//!   logical unit of parallel work (e.g. one function's allocation in a
//!   wave), numbered in shard-absorption order, not an OS thread id.

use crate::json::Json;
use crate::{SpanRec, Trace};

/// Process id used for all exported events (the trace is one process).
const PID: i64 = 1;

fn micros(ns: u64) -> Json {
    // trace_event timestamps are microseconds; keep sub-µs precision as a
    // fraction so short phases don't collapse to zero-width slices.
    Json::Float(ns as f64 / 1000.0)
}

fn metadata(name: &'static str, tid: i64, value: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("M".to_string())),
        ("ts", Json::Int(0)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(tid)),
        (
            "args",
            Json::obj(vec![("name", Json::Str(value.to_string()))]),
        ),
    ])
}

fn complete_event(sp: &SpanRec) -> Json {
    let mut args = vec![("span_id", Json::Int(sp.id as i64))];
    if !sp.scope.is_empty() {
        args.push(("scope", Json::Str(sp.scope.clone())));
    }
    if let Some(p) = sp.parent_id {
        args.push(("parent_id", Json::Int(p as i64)));
    }
    Json::obj(vec![
        ("name", Json::Str(sp.name.to_string())),
        (
            "cat",
            Json::Str(if sp.scope.is_empty() {
                "module".to_string()
            } else {
                "function".to_string()
            }),
        ),
        ("ph", Json::Str("X".to_string())),
        ("ts", micros(sp.start_ns)),
        ("dur", micros(sp.dur_ns)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(sp.lane as i64)),
        ("args", Json::obj(args)),
    ])
}

/// Builds a `{"traceEvents": [...]}` document from a trace's spans.
///
/// `process_name` labels the single exported process (callers typically
/// pass the compile configuration name). Every event carries the keys the
/// format requires — `name`, `ph`, `ts`, `pid`, `tid` — and `"X"` events
/// additionally carry `dur`; span scope and tree structure ride along in
/// `args`.
pub fn export(trace: &Trace, process_name: &str) -> Json {
    let mut events = Vec::with_capacity(trace.spans.len() + 8);
    events.push(metadata(
        "process_name",
        0,
        &format!("mini-cc ({process_name})"),
    ));

    let mut lanes: Vec<u32> = trace.spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for &lane in &lanes {
        let label = if lane == 0 {
            "driver".to_string()
        } else {
            format!("lane-{lane}")
        };
        events.push(metadata("thread_name", lane as i64, &label));
    }

    // Spans are recorded in completion order; export in start order so the
    // document reads chronologically (viewers do not require it, humans
    // paging through the JSON do).
    let mut spans: Vec<&SpanRec> = trace.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    events.extend(spans.into_iter().map(complete_event));

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &'static str,
        id: u64,
        parent: Option<u64>,
        start: u64,
        dur: u64,
        lane: u32,
    ) -> SpanRec {
        SpanRec {
            scope: if lane == 0 {
                String::new()
            } else {
                format!("f{lane}")
            },
            name,
            id,
            parent_id: parent,
            start_ns: start,
            dur_ns: dur,
            lane,
        }
    }

    #[test]
    fn every_event_has_the_required_keys() {
        let trace = Trace {
            spans: vec![
                span("compile", 0, None, 0, 5000, 0),
                span("color", 1, Some(0), 500, 1500, 1),
                span("lower", 2, Some(0), 2500, 1000, 2),
            ],
            ..Trace::default()
        };
        let doc = export(&trace, "C");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(
                    ev.get(key).is_some(),
                    "event missing `{key}`: {}",
                    ev.render()
                );
            }
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            match ph {
                "X" => assert!(ev.get("dur").is_some(), "complete event needs dur"),
                "M" => assert!(ev.get("args").unwrap().get("name").is_some()),
                other => panic!("unexpected phase `{other}`"),
            }
        }
    }

    #[test]
    fn lanes_become_named_threads() {
        let trace = Trace {
            spans: vec![
                span("compile", 0, None, 0, 5000, 0),
                span("color", 1, None, 0, 100, 3),
            ],
            ..Trace::default()
        };
        let doc = export(&trace, "C");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let thread_names: Vec<(i64, String)> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                (
                    e.get("tid").unwrap().as_i64().unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_string(),
                )
            })
            .collect();
        assert_eq!(
            thread_names,
            vec![(0, "driver".to_string()), (3, "lane-3".to_string())]
        );
        let color = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("color"))
            .unwrap();
        assert_eq!(color.get("tid").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let trace = Trace {
            spans: vec![span("phase", 0, None, 2500, 1500, 0)],
            ..Trace::default()
        };
        let doc = export(&trace, "C");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ev = events.last().unwrap();
        assert_eq!(ev.get("ts").unwrap().as_f64(), Some(2.5));
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(1.5));
    }
}
