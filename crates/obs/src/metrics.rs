//! Labeled metrics: counters, gauges and log₂-bucket histograms.
//!
//! The span/counter/event primitives in the crate root answer "what did
//! this one compilation do"; the metrics registry answers "how much, of
//! what kind" in a form that merges across threads and across runs. Every
//! metric carries a name plus a label set (`&[(&str, &str)]`), so one
//! metric name can be sliced per cache result, per call-graph edge, or per
//! configuration without inventing new names.
//!
//! Metrics follow the same per-thread shard model as the rest of the
//! crate: recording goes through [`crate::metric_counter`],
//! [`crate::metric_gauge`] and [`crate::metric_observe`] into the current
//! thread's sink, worker shards come back inside [`crate::Trace`], and
//! [`crate::absorb`] merges them with [`Metrics::merge`] (counters add,
//! gauges last-write-wins, histograms add bucket-wise). Everything is
//! plain-old-data: zero dependencies, `Eq`, deterministic JSON.

use crate::json::Json;

/// A power-of-two-bucket histogram of `u64` samples.
///
/// Bucket `0` counts samples equal to zero; bucket `i > 0` counts samples
/// in `[2^(i-1), 2^i)`. The exact count, sum and maximum are tracked on
/// the side, so aggregates (`mean`, `max`) stay exact while the
/// distribution is compressed into at most 65 buckets — unlike the
/// ad-hoc dense vectors this type replaces, memory use is bounded no
/// matter how large the samples get.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Log2Histogram {
    /// `counts[i]` = samples in bucket `i`; trailing zero buckets are not
    /// stored.
    counts: Vec<u64>,
    /// Total samples observed.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample observed (0 when empty).
    pub max: u64,
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive-exclusive bounds `[lo, hi)` of bucket `i` (bucket 0 is the
/// exact value 0, rendered as `[0, 1)`).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (
            1u64 << (i - 1),
            1u64.checked_shl(i as u32).unwrap_or(u64::MAX),
        )
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let i = bucket_index(v);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in the bucket that `v` falls into.
    pub fn count_for(&self, v: u64) -> u64 {
        self.counts.get(bucket_index(v)).copied().unwrap_or(0)
    }

    /// Non-empty buckets as `(lo, hi, count)` with `lo <= sample < hi`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &c)| {
            let (lo, hi) = bucket_bounds(i);
            (c > 0).then_some((lo, hi, c))
        })
    }

    /// Upper bound of the smallest bucket such that at least `q` (0..=1)
    /// of the samples lie at or below it — a cheap upper estimate of the
    /// q-quantile. Returns [`Log2Histogram::max`] for the top bucket and 0
    /// when empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let want = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= want {
                let (_, hi) = bucket_bounds(i);
                return self.max.min(hi.saturating_sub(1));
            }
        }
        self.max
    }

    /// Adds another histogram into this one (bucket-wise; exact fields
    /// combine exactly).
    pub fn merge(&mut self, other: &Log2Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Serializes as `{count, sum, max, buckets: [{lo, hi, count}]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            ("max", Json::Int(self.max as i64)),
            (
                "buckets",
                Json::Arr(
                    self.buckets()
                        .map(|(lo, hi, c)| {
                            Json::obj(vec![
                                ("lo", Json::Int(lo as i64)),
                                ("hi", Json::Int(hi as i64)),
                                ("count", Json::Int(c as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Display for Log2Histogram {
    /// Compact one-line form: `lo-hi:count` per non-empty bucket.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (lo, hi, c) in self.buckets() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            if hi - lo <= 1 {
                write!(f, "{lo}:{c}")?;
            } else {
                write!(f, "{lo}-{}:{c}", hi - 1)?;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// One labeled metric instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metric<T> {
    /// Metric name, e.g. `"cache.lookup"`.
    pub name: &'static str,
    /// Label set in emission order, e.g. `[("result", "hit")]`.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: T,
}

/// A snapshot of every labeled metric recorded on one sink.
///
/// Metric instances are keyed by `(name, labels)`. The snapshot lives
/// inside [`crate::Trace`] and merges across thread shards via
/// [`Metrics::merge`]; serialization sorts instances by `(name, labels)`
/// so the output is independent of recording order (and therefore of
/// thread scheduling).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Additive counters.
    pub counters: Vec<Metric<u64>>,
    /// Last-write-wins gauges.
    pub gauges: Vec<Metric<i64>>,
    /// Log₂-bucket histograms.
    pub histograms: Vec<Metric<Log2Histogram>>,
}

fn labels_match(stored: &[(String, String)], wanted: &[(&str, &str)]) -> bool {
    stored.len() == wanted.len()
        && stored
            .iter()
            .zip(wanted)
            .all(|((k, v), (wk, wv))| k == wk && v == wv)
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn find_or_insert<'m, T: Default>(
    items: &'m mut Vec<Metric<T>>,
    name: &'static str,
    labels: &[(&str, &str)],
) -> &'m mut Metric<T> {
    // Linear scan: sinks hold tens of instances, and the compile hot path
    // is guarded by the ACTIVE_SINKS fast path anyway.
    let idx = items
        .iter()
        .position(|m| m.name == name && labels_match(&m.labels, labels));
    match idx {
        Some(i) => &mut items[i],
        None => {
            items.push(Metric {
                name,
                labels: own_labels(labels),
                value: T::default(),
            });
            items.last_mut().expect("just pushed")
        }
    }
}

impl Metrics {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `v` to the counter instance `(name, labels)`.
    pub fn add_counter(&mut self, name: &'static str, labels: &[(&str, &str)], v: u64) {
        find_or_insert(&mut self.counters, name, labels).value += v;
    }

    /// Sets the gauge instance `(name, labels)` to `v`.
    pub fn set_gauge(&mut self, name: &'static str, labels: &[(&str, &str)], v: i64) {
        find_or_insert(&mut self.gauges, name, labels).value = v;
    }

    /// Records a histogram sample into the instance `(name, labels)`.
    pub fn observe(&mut self, name: &'static str, labels: &[(&str, &str)], v: u64) {
        find_or_insert(&mut self.histograms, name, labels)
            .value
            .observe(v);
    }

    /// Total of one counter instance (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .find(|m| m.name == name && labels_match(&m.labels, labels))
            .map_or(0, |m| m.value)
    }

    /// Last value of one gauge instance (`None` when never set).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|m| m.name == name && labels_match(&m.labels, labels))
            .map(|m| m.value)
    }

    /// Sum of every counter instance with this name, across all label sets.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|m| m.name == name)
            .map(|m| m.value)
            .sum()
    }

    /// All counter instances with this name, in recording order.
    pub fn counters_named<'m>(&'m self, name: &'m str) -> impl Iterator<Item = &'m Metric<u64>> {
        self.counters.iter().filter(move |m| m.name == name)
    }

    /// The histogram instance `(name, labels)`, if recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Log2Histogram> {
        self.histograms
            .iter()
            .find(|m| m.name == name && labels_match(&m.labels, labels))
            .map(|m| &m.value)
    }

    /// Merges another snapshot into this one: counters add, gauges take
    /// the incoming value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Metrics) {
        for m in &other.counters {
            let labels: Vec<(&str, &str)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            find_or_insert(&mut self.counters, m.name, &labels).value += m.value;
        }
        for m in &other.gauges {
            let labels: Vec<(&str, &str)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            find_or_insert(&mut self.gauges, m.name, &labels).value = m.value;
        }
        for m in &other.histograms {
            let labels: Vec<(&str, &str)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            find_or_insert(&mut self.histograms, m.name, &labels)
                .value
                .merge(&m.value);
        }
    }

    /// Serializes as `{counters: [...], gauges: [...], histograms: [...]}`
    /// with instances sorted by `(name, labels)` — recording order (and
    /// hence thread scheduling) never leaks into the document.
    pub fn to_json(&self) -> Json {
        fn inst<T>(m: &Metric<T>, value: Json) -> Json {
            Json::obj(vec![
                ("name", Json::Str(m.name.to_string())),
                (
                    "labels",
                    Json::Obj(
                        m.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                            .collect(),
                    ),
                ),
                ("value", value),
            ])
        }
        fn sorted<T>(items: &[Metric<T>]) -> Vec<&Metric<T>> {
            let mut v: Vec<&Metric<T>> = items.iter().collect();
            v.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(&b.labels)));
            v
        }
        Json::obj(vec![
            (
                "counters",
                Json::Arr(
                    sorted(&self.counters)
                        .into_iter()
                        .map(|m| inst(m, Json::Int(m.value as i64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Arr(
                    sorted(&self.gauges)
                        .into_iter()
                        .map(|m| inst(m, Json::Int(m.value)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Arr(
                    sorted(&self.histograms)
                        .into_iter()
                        .map(|m| inst(m, m.value.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_cover_powers_of_two() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 11);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.count_for(0), 1);
        assert_eq!(h.count_for(1), 2);
        assert_eq!(h.count_for(2), 2, "2 and 3 share bucket [2,4)");
        assert_eq!(h.count_for(5), 2, "4 and 7 share bucket [4,8)");
        assert_eq!(h.count_for(512), 1, "1023 lands in [512,1024)");
        assert_eq!(h.count_for(1024), 1);
        let total: u64 = h.buckets().map(|(_, _, c)| c).sum();
        assert_eq!(total, h.count, "buckets partition the samples");
        for (lo, hi, _) in h.buckets() {
            assert!(lo < hi);
        }
    }

    #[test]
    fn exact_aggregates_survive_bucketing() {
        let mut h = Log2Histogram::new();
        h.observe(10);
        h.observe(20);
        h.observe(30);
        assert_eq!(h.sum, 60);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.max, 30);
    }

    #[test]
    fn quantile_upper_is_an_upper_bound() {
        let mut h = Log2Histogram::new();
        for d in 1..=100u64 {
            h.observe(d);
        }
        assert!(h.quantile_upper(0.5) >= 50);
        assert_eq!(h.quantile_upper(1.0), 100, "top quantile is the exact max");
        assert_eq!(Log2Histogram::new().quantile_upper(0.5), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Log2Histogram::new();
        a.observe(1);
        a.observe(100);
        let mut b = Log2Histogram::new();
        b.observe(1);
        b.observe(5000);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.count_for(1), 2);
        assert_eq!(a.max, 5000);
        assert_eq!(a.sum, 1 + 100 + 1 + 5000);
    }

    #[test]
    fn display_renders_nonempty_buckets() {
        let mut h = Log2Histogram::new();
        h.observe(1);
        h.observe(20);
        h.observe(20);
        assert_eq!(h.to_string(), "1:1 16-31:2");
        assert_eq!(Log2Histogram::new().to_string(), "(empty)");
    }

    #[test]
    fn labeled_instances_are_distinct() {
        let mut m = Metrics::default();
        m.add_counter("cache.lookup", &[("result", "hit")], 2);
        m.add_counter("cache.lookup", &[("result", "miss")], 1);
        m.add_counter("cache.lookup", &[("result", "hit")], 3);
        assert_eq!(m.counter_value("cache.lookup", &[("result", "hit")]), 5);
        assert_eq!(m.counter_value("cache.lookup", &[("result", "miss")]), 1);
        assert_eq!(m.counter_sum("cache.lookup"), 6);
        assert_eq!(
            m.counter_value("cache.lookup", &[]),
            0,
            "unlabeled is its own instance"
        );
    }

    #[test]
    fn gauges_last_write_wins_and_histograms_accumulate() {
        let mut m = Metrics::default();
        m.set_gauge("g", &[], 5);
        m.set_gauge("g", &[], -2);
        assert_eq!(m.gauges[0].value, -2);
        assert_eq!(m.gauge_value("g", &[]), Some(-2));
        assert_eq!(m.gauge_value("g", &[("k", "v")]), None);
        assert_eq!(m.gauge_value("absent", &[]), None);
        m.observe("h", &[("phase", "color")], 4);
        m.observe("h", &[("phase", "color")], 6);
        let h = m.histogram("h", &[("phase", "color")]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 10);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = Metrics::default();
        a.add_counter("c", &[], 1);
        a.set_gauge("g", &[], 1);
        a.observe("h", &[], 8);
        let mut b = Metrics::default();
        b.add_counter("c", &[], 2);
        b.add_counter("only_b", &[("x", "y")], 7);
        b.set_gauge("g", &[], 9);
        b.observe("h", &[], 8);
        a.merge(&b);
        assert_eq!(a.counter_value("c", &[]), 3);
        assert_eq!(a.counter_value("only_b", &[("x", "y")]), 7);
        assert_eq!(a.gauges.iter().find(|m| m.name == "g").unwrap().value, 9);
        assert_eq!(a.histogram("h", &[]).unwrap().count, 2);
    }

    #[test]
    fn json_is_sorted_by_name_and_labels() {
        let mut m = Metrics::default();
        m.add_counter("z", &[], 1);
        m.add_counter("a", &[("k", "2")], 1);
        m.add_counter("a", &[("k", "1")], 1);
        let doc = m.to_json();
        let counters = doc.get("counters").unwrap().as_arr().unwrap();
        let names: Vec<String> = counters
            .iter()
            .map(|c| {
                let n = c.get("name").unwrap().as_str().unwrap();
                let l = c.get("labels").unwrap();
                format!("{n}{}", l.render())
            })
            .collect();
        assert_eq!(names, vec![r#"a{"k":"1"}"#, r#"a{"k":"2"}"#, r#"z{}"#]);
        // And the document parses back.
        assert!(crate::json::parse(&doc.render_pretty()).is_ok());
    }
}
