//! Zero-dependency observability for the ipra compilation pipeline.
//!
//! The crate provides three primitives:
//!
//! - [`span`] — a monotonic wall-clock timer recorded when the returned
//!   [`Span`] guard drops;
//! - [`counter`] — a named additive counter;
//! - [`event`] — a structured event whose fields are built lazily by a
//!   closure, so the disabled path allocates nothing.
//!
//! Records carry the current *scope* (typically a function name), pushed
//! with [`scope`] and popped when the returned [`ScopeGuard`] drops.
//!
//! # Cost model
//!
//! Tracing is off by default. The disabled fast path is a single relaxed
//! atomic load (`ACTIVE_SINKS == 0`) — no allocation, no thread-local
//! access, no clock read. Collection is enabled per thread with
//! [`enable`] and drained with [`disable`], which returns the recorded
//! [`Trace`]. Per-thread sinks keep parallel test threads from polluting
//! each other's traces; the global counter only short-circuits the case
//! where *no* thread is tracing.
//!
//! # Example
//!
//! ```
//! ipra_obs::enable();
//! {
//!     let _fn = ipra_obs::scope("main");
//!     let _t = ipra_obs::span("color");
//!     ipra_obs::counter("colored_vregs", 7);
//! }
//! let trace = ipra_obs::disable();
//! assert_eq!(trace.spans.len(), 1);
//! assert_eq!(trace.counters[0].name, "colored_vregs");
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod frame;
pub mod json;
pub mod metrics;

use metrics::Metrics;

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of threads that currently have a sink installed. The hot path
/// checks this with one relaxed load before touching anything else.
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SINK: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// A value attached to an [`EventRec`] field.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceValue {
    /// An integer field.
    Int(i64),
    /// A floating-point field.
    Float(f64),
    /// A string field.
    Str(String),
}

impl TraceValue {
    /// Converts to a [`json::Json`] value.
    pub fn to_json(&self) -> json::Json {
        match self {
            TraceValue::Int(i) => json::Json::Int(*i),
            TraceValue::Float(f) => json::Json::Float(*f),
            TraceValue::Str(s) => json::Json::Str(s.clone()),
        }
    }

    /// The integer value, if any.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            TraceValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TraceValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A completed timed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    /// Scope stack at the time the span started, joined with `/`
    /// (empty for module-level spans).
    pub scope: String,
    /// Span name, e.g. `"color"`.
    pub name: &'static str,
    /// Span id, unique within one [`Trace`] (ids are assigned in span
    /// *start* order; records appear in completion order).
    pub id: u64,
    /// Id of the enclosing span that was open when this one started, or
    /// `None` for a top-level span. Lets sub-phase spans (e.g. shrink-wrap
    /// ANT/AV sweeps) be costed under their parent phase.
    pub parent_id: Option<u64>,
    /// Start time in nanoseconds relative to [`enable`] on this thread.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Logical task lane. Spans recorded directly on a sink are lane 0;
    /// [`absorb`] moves each absorbed shard onto a fresh lane, numbered in
    /// absorption order. Because shards are absorbed in a deterministic
    /// order (and times sit on a serial virtual clock), lanes identify
    /// *logical* units of parallel work — e.g. one per function in a wave —
    /// not physical worker threads. The Chrome exporter renders lanes as
    /// threads.
    pub lane: u32,
}

/// A counter increment.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterRec {
    /// Scope stack at the time of the increment (empty for module level).
    pub scope: String,
    /// Counter name, e.g. `"shrink_wrap.iterations"`.
    pub name: &'static str,
    /// Amount added.
    pub value: u64,
}

/// A structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRec {
    /// Scope stack at the time of the event (empty for module level).
    pub scope: String,
    /// Event name, e.g. `"alloc.decision"`.
    pub name: &'static str,
    /// Event fields in emission order.
    pub fields: Vec<(&'static str, TraceValue)>,
}

/// Everything recorded on one thread between [`enable`] and [`disable`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Completed spans in completion order.
    pub spans: Vec<SpanRec>,
    /// Counter increments in emission order (not pre-aggregated).
    pub counters: Vec<CounterRec>,
    /// Structured events in emission order.
    pub events: Vec<EventRec>,
    /// Labeled metrics recorded via [`metric_counter`], [`metric_gauge`]
    /// and [`metric_observe`], pre-aggregated per `(name, labels)`.
    pub metrics: Metrics,
}

impl Trace {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.events.is_empty()
            && self.metrics.is_empty()
    }

    /// Sums all increments of `name` within `scope`.
    pub fn counter_total(&self, scope: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.scope == scope && c.name == name)
            .map(|c| c.value)
            .sum()
    }
}

struct Collector {
    epoch: Instant,
    scopes: Vec<String>,
    /// Next span id to hand out.
    next_span_id: u64,
    /// Ids of the spans currently open on this thread, innermost last.
    open_spans: Vec<u64>,
    /// Next lane for an absorbed shard (lane 0 is this thread's own).
    next_lane: u32,
    trace: Trace,
}

impl Collector {
    fn current_scope(&self) -> String {
        self.scopes.join("/")
    }
}

/// Installs a fresh sink on the current thread, discarding any trace
/// already being collected there.
pub fn enable() {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        if s.is_none() {
            ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
        }
        *s = Some(Collector {
            epoch: Instant::now(),
            scopes: Vec::new(),
            next_span_id: 0,
            open_spans: Vec::new(),
            next_lane: 1,
            trace: Trace::default(),
        });
    });
}

/// Removes the current thread's sink and returns what it recorded.
/// Returns an empty [`Trace`] when tracing was not enabled.
pub fn disable() -> Trace {
    SINK.with(|s| {
        let taken = s.borrow_mut().take();
        match taken {
            Some(c) => {
                ACTIVE_SINKS.fetch_sub(1, Ordering::Relaxed);
                c.trace
            }
            None => Trace::default(),
        }
    })
}

/// True when the current thread is collecting a trace.
pub fn is_enabled() -> bool {
    if ACTIVE_SINKS.load(Ordering::Relaxed) == 0 {
        return false;
    }
    SINK.with(|s| s.borrow().is_some())
}

/// Pushes a named scope (e.g. the function being compiled) for the
/// lifetime of the returned guard. No-op when tracing is disabled.
#[must_use = "the scope pops when the guard drops"]
pub fn scope(name: &str) -> ScopeGuard {
    if !is_enabled() {
        return ScopeGuard { pushed: false };
    }
    SINK.with(|s| {
        if let Some(c) = s.borrow_mut().as_mut() {
            c.scopes.push(name.to_string());
        }
    });
    ScopeGuard { pushed: true }
}

/// Pops the scope pushed by [`scope`] on drop.
pub struct ScopeGuard {
    pushed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.pushed {
            SINK.with(|s| {
                if let Some(c) = s.borrow_mut().as_mut() {
                    c.scopes.pop();
                }
            });
        }
    }
}

/// Starts a timed span that records itself when dropped. No-op (and
/// allocation-free) when tracing is disabled.
#[must_use = "the span records its duration when the guard drops"]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span {
            name,
            start: None,
            id: 0,
            parent_id: None,
        };
    }
    let (id, parent_id) = SINK.with(|s| {
        let mut s = s.borrow_mut();
        let c = s.as_mut().expect("is_enabled checked");
        let id = c.next_span_id;
        c.next_span_id += 1;
        let parent = c.open_spans.last().copied();
        c.open_spans.push(id);
        (id, parent)
    });
    Span {
        name,
        start: Some(Instant::now()),
        id,
        parent_id,
    }
}

/// Guard returned by [`span`]; records a [`SpanRec`] on drop.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    id: u64,
    parent_id: Option<u64>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        SINK.with(|s| {
            if let Some(c) = s.borrow_mut().as_mut() {
                // Spans are scoped guards, so the top of the open stack is
                // this span; be robust to out-of-order drops anyway.
                match c.open_spans.last() {
                    Some(&top) if top == self.id => {
                        c.open_spans.pop();
                    }
                    _ => c.open_spans.retain(|&i| i != self.id),
                }
                let start_ns = start.duration_since(c.epoch).as_nanos() as u64;
                let scope = c.current_scope();
                c.trace.spans.push(SpanRec {
                    scope,
                    name: self.name,
                    id: self.id,
                    parent_id: self.parent_id,
                    start_ns,
                    dur_ns,
                    lane: 0,
                });
            }
        });
    }
}

/// Merges a [`Trace`] recorded on another thread (a *shard*) into the
/// current thread's sink. No-op when tracing is disabled here.
///
/// Worker threads of a parallel compilation each collect their own trace
/// with [`enable`]/[`disable`]; the driver absorbs the shards in a
/// deterministic order so the merged trace is independent of scheduling.
/// Span ids are remapped past the sink's counter (parent links preserved),
/// and shard times are rebased to start after everything already recorded,
/// keeping per-shard span order meaningful under a single virtual clock.
/// Each shard's spans land on fresh lanes (numbered in absorption order,
/// preserving the shard's own lane structure), so the Chrome exporter can
/// render logical parallel work side by side. Labeled metrics merge
/// per-instance: counters add, gauges take the shard's value, histograms
/// merge bucket-wise.
pub fn absorb(shard: Trace) {
    if shard.is_empty() || !is_enabled() {
        return;
    }
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        let Some(c) = s.as_mut() else { return };
        let time_base = c
            .trace
            .spans
            .iter()
            .map(|sp| sp.start_ns + sp.dur_ns)
            .max()
            .unwrap_or(0);
        let id_base = c.next_span_id;
        let lane_base = c.next_lane;
        let mut max_id = None::<u64>;
        let mut max_lane = None::<u32>;
        for sp in shard.spans {
            max_id = Some(max_id.map_or(sp.id, |m| m.max(sp.id)));
            max_lane = Some(max_lane.map_or(sp.lane, |m| m.max(sp.lane)));
            c.trace.spans.push(SpanRec {
                id: id_base + sp.id,
                parent_id: sp.parent_id.map(|p| id_base + p),
                start_ns: time_base + sp.start_ns,
                lane: lane_base + sp.lane,
                ..sp
            });
        }
        if let Some(m) = max_id {
            c.next_span_id = id_base + m + 1;
        }
        if let Some(m) = max_lane {
            c.next_lane = lane_base + m + 1;
        }
        c.trace.counters.extend(shard.counters);
        c.trace.events.extend(shard.events);
        c.trace.metrics.merge(&shard.metrics);
    });
}

/// Adds `value` to the named counter. No-op when tracing is disabled.
pub fn counter(name: &'static str, value: u64) {
    if ACTIVE_SINKS.load(Ordering::Relaxed) == 0 {
        return;
    }
    SINK.with(|s| {
        if let Some(c) = s.borrow_mut().as_mut() {
            let scope = c.current_scope();
            c.trace.counters.push(CounterRec { scope, name, value });
        }
    });
}

/// Records a structured event. The field list is built by the closure
/// only when tracing is enabled, so the disabled path does no work.
pub fn event(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, TraceValue)>) {
    if ACTIVE_SINKS.load(Ordering::Relaxed) == 0 {
        return;
    }
    SINK.with(|s| {
        if let Some(c) = s.borrow_mut().as_mut() {
            let scope = c.current_scope();
            c.trace.events.push(EventRec {
                scope,
                name,
                fields: fields(),
            });
        }
    });
}

/// Adds `v` to the labeled metric counter `(name, labels)`. Unlike
/// [`counter`], metric counters are scope-free, pre-aggregated per label
/// set, and merge additively across shards. No-op when tracing is
/// disabled; labels are only copied on first use of an instance.
pub fn metric_counter(name: &'static str, labels: &[(&str, &str)], v: u64) {
    if ACTIVE_SINKS.load(Ordering::Relaxed) == 0 {
        return;
    }
    SINK.with(|s| {
        if let Some(c) = s.borrow_mut().as_mut() {
            c.trace.metrics.add_counter(name, labels, v);
        }
    });
}

/// Sets the labeled gauge `(name, labels)` to `v` (last write wins, also
/// across [`absorb`]). No-op when tracing is disabled.
pub fn metric_gauge(name: &'static str, labels: &[(&str, &str)], v: i64) {
    if ACTIVE_SINKS.load(Ordering::Relaxed) == 0 {
        return;
    }
    SINK.with(|s| {
        if let Some(c) = s.borrow_mut().as_mut() {
            c.trace.metrics.set_gauge(name, labels, v);
        }
    });
}

/// Records one sample into the labeled log₂-bucket histogram
/// `(name, labels)`. No-op when tracing is disabled.
pub fn metric_observe(name: &'static str, labels: &[(&str, &str)], v: u64) {
    if ACTIVE_SINKS.load(Ordering::Relaxed) == 0 {
        return;
    }
    SINK.with(|s| {
        if let Some(c) = s.borrow_mut().as_mut() {
            c.trace.metrics.observe(name, labels, v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        // No enable() on this thread: everything must be a no-op.
        let _g = scope("f");
        let _t = span("phase");
        counter("n", 3);
        event("ev", || panic!("field closure must not run when disabled"));
        assert!(!is_enabled());
        assert!(disable().is_empty());
    }

    #[test]
    fn records_spans_counters_events_with_scopes() {
        enable();
        counter("module_level", 1);
        {
            let _f = scope("main");
            {
                let _t = span("color");
                counter("colored", 2);
                counter("colored", 3);
            }
            event("decision", || {
                vec![
                    ("vreg", TraceValue::Int(4)),
                    ("kind", TraceValue::Str("split".into())),
                ]
            });
            {
                let _inner = scope("loop0");
                counter("nested", 1);
            }
        }
        let trace = disable();

        assert_eq!(trace.counters[0].scope, "");
        assert_eq!(trace.counter_total("main", "colored"), 5);
        assert_eq!(trace.counters.last().unwrap().scope, "main/loop0");

        assert_eq!(trace.spans.len(), 1);
        let sp = &trace.spans[0];
        assert_eq!((sp.scope.as_str(), sp.name), ("main", "color"));
        assert!(sp.start_ns <= sp.start_ns + sp.dur_ns);

        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].fields[1].1.as_str(), Some("split"));

        // Sink is gone now.
        assert!(!is_enabled());
        counter("late", 9);
        assert!(disable().is_empty());
    }

    #[test]
    fn enable_resets_previous_trace() {
        enable();
        counter("a", 1);
        enable();
        counter("b", 2);
        let trace = disable();
        assert_eq!(trace.counters.len(), 1);
        assert_eq!(trace.counters[0].name, "b");
    }

    #[test]
    fn span_parent_ids_follow_nesting() {
        enable();
        {
            let _outer = span("phase");
            {
                let _inner = span("round");
                let _leaf = span("sweep");
            }
            let _sibling = span("round");
        }
        let _top = span("other_phase");
        drop(_top);
        let trace = disable();

        let find = |name: &'static str| trace.spans.iter().filter(move |s| s.name == name);
        let phase = find("phase").next().unwrap();
        assert_eq!(phase.parent_id, None);
        for round in find("round") {
            assert_eq!(round.parent_id, Some(phase.id));
        }
        let sweep = find("sweep").next().unwrap();
        let inner_round = trace
            .spans
            .iter()
            .find(|s| s.name == "round" && Some(s.id) == sweep.parent_id)
            .expect("sweep nests under a round");
        assert_eq!(inner_round.parent_id, Some(phase.id));
        let other = find("other_phase").next().unwrap();
        assert_eq!(other.parent_id, None, "closed spans do not parent");

        // Ids are unique.
        let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.spans.len());
    }

    #[test]
    fn absorb_merges_shard_with_remapped_ids_and_rebased_times() {
        // Record a shard on a worker thread.
        let shard = std::thread::spawn(|| {
            enable();
            let _f = scope("worker_fn");
            {
                let _p = span("phase");
                let _c = span("child");
                counter("n", 2);
            }
            event("ev", || vec![("x", TraceValue::Int(1))]);
            disable()
        })
        .join()
        .unwrap();

        enable();
        {
            let _m = scope("main_fn");
            let _t = span("phase");
        }
        absorb(shard);
        let trace = disable();

        assert_eq!(trace.spans.len(), 3);
        let main_phase = trace.spans.iter().find(|s| s.scope == "main_fn").unwrap();
        let w_phase = trace
            .spans
            .iter()
            .find(|s| s.scope == "worker_fn" && s.name == "phase")
            .unwrap();
        let w_child = trace
            .spans
            .iter()
            .find(|s| s.scope == "worker_fn" && s.name == "child")
            .unwrap();
        // Remapped ids stay unique and parent links survive.
        assert_ne!(w_phase.id, main_phase.id);
        assert_eq!(w_child.parent_id, Some(w_phase.id));
        // Shard times land after everything already recorded.
        assert!(w_phase.start_ns >= main_phase.start_ns + main_phase.dur_ns);
        // Counters and events come along.
        assert_eq!(trace.counter_total("worker_fn", "n"), 2);
        assert_eq!(trace.events.len(), 1);

        // Absorbing into a disabled sink is a no-op.
        absorb(Trace::default());
        assert!(!is_enabled());
    }

    #[test]
    fn absorbed_shards_land_on_fresh_lanes() {
        let make_shard = |fname: &'static str| {
            std::thread::spawn(move || {
                enable();
                let _f = scope(fname);
                let _p = span("phase");
                drop(_p);
                disable()
            })
            .join()
            .unwrap()
        };
        let a = make_shard("fa");
        let b = make_shard("fb");

        enable();
        {
            let _t = span("driver");
        }
        absorb(a);
        absorb(b);
        let trace = disable();

        let lane_of = |scope: &str| {
            trace
                .spans
                .iter()
                .find(|s| s.scope == scope || (scope.is_empty() && s.name == "driver"))
                .unwrap()
                .lane
        };
        assert_eq!(lane_of(""), 0, "driver spans stay on lane 0");
        assert_eq!(lane_of("fa"), 1, "first shard gets lane 1");
        assert_eq!(lane_of("fb"), 2, "second shard gets lane 2");
    }

    #[test]
    fn nested_absorbs_keep_lanes_disjoint() {
        // A "driver" shard that itself absorbed two worker shards has
        // lanes 0..=2; absorbing it must shift all three past our own.
        let nested = std::thread::spawn(|| {
            let w = std::thread::spawn(|| {
                enable();
                let _s = span("w0");
                drop(_s);
                disable()
            })
            .join()
            .unwrap();
            enable();
            let _d = span("mid");
            drop(_d);
            absorb(w);
            disable()
        })
        .join()
        .unwrap();
        assert_eq!(nested.spans.iter().map(|s| s.lane).max(), Some(1));

        enable();
        let _own = span("own");
        drop(_own);
        absorb(nested);
        let trace = disable();
        let lanes: Vec<(u32, &str)> = trace.spans.iter().map(|s| (s.lane, s.name)).collect();
        assert!(lanes.contains(&(0, "own")));
        assert!(lanes.contains(&(1, "mid")));
        assert!(lanes.contains(&(2, "w0")));
    }

    #[test]
    fn metrics_record_through_the_sink_and_absorb() {
        // Disabled path records nothing.
        metric_counter("c", &[("k", "v")], 1);
        assert!(disable().metrics.is_empty());

        let shard = std::thread::spawn(|| {
            enable();
            metric_counter("cache.lookup", &[("result", "hit")], 2);
            metric_observe("wave.width", &[], 4);
            disable()
        })
        .join()
        .unwrap();

        enable();
        metric_counter("cache.lookup", &[("result", "hit")], 1);
        metric_counter("cache.lookup", &[("result", "miss")], 1);
        metric_gauge("jobs", &[], 4);
        metric_observe("wave.width", &[], 2);
        absorb(shard);
        let trace = disable();

        let m = &trace.metrics;
        assert_eq!(m.counter_value("cache.lookup", &[("result", "hit")]), 3);
        assert_eq!(m.counter_value("cache.lookup", &[("result", "miss")]), 1);
        assert_eq!(m.histogram("wave.width", &[]).unwrap().count, 2);
        assert_eq!(m.gauges[0].value, 4);
    }

    #[test]
    fn sinks_are_per_thread() {
        enable();
        counter("mine", 1);
        std::thread::spawn(|| {
            // Tracing is active on the main thread, but this thread has
            // no sink, so nothing may be recorded or observed here.
            assert!(!is_enabled());
            counter("other", 7);
            event("ev", || vec![("x", TraceValue::Int(1))]);
        })
        .join()
        .unwrap();
        let trace = disable();
        assert_eq!(trace.counters.len(), 1);
        assert_eq!(trace.counters[0].name, "mine");
        assert!(trace.events.is_empty());
    }
}
