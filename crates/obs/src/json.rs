//! A hand-rolled JSON value type, serializer and parser.
//!
//! The trace emitters must not pull in `serde` (the workspace builds with
//! zero external dependencies), so this module provides the minimal JSON
//! surface the observability layer needs: building values, rendering them
//! with proper string escaping, and parsing them back for golden tests.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (for files meant to be read).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` always keeps a decimal point or exponent, so the value
        // round-trips as a float rather than collapsing into an integer.
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Parses a JSON document from raw bytes.
///
/// JSON documents must be UTF-8; byte streams that are not valid UTF-8 are
/// rejected before parsing starts. (The [`parse`] entry point cannot even
/// be handed such input — `&str` is UTF-8 by construction — so callers
/// holding untrusted bytes should come through here.)
///
/// # Errors
///
/// Returns a message with the byte offset of the first invalid UTF-8
/// sequence or syntax error.
pub fn parse_bytes(bytes: &[u8]) -> Result<Json, String> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| format!("invalid utf-8 at byte {}", e.valid_up_to()))?;
    parse(s)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of unescaped characters in one
                    // step, validating UTF-8 for that run only. (Validating
                    // from here to the end of the *input* per character made
                    // parsing quadratic — 5 ms for a 20 KB document.)
                    let rest = &self.bytes[self.pos..];
                    let end = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..end]).map_err(|_| "invalid utf-8")?;
                    out.push_str(s);
                    self.pos += end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number `{text}`"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number `{text}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact() {
        let v = Json::obj(vec![
            ("name", Json::Str("f".into())),
            ("n", Json::Int(-3)),
            ("x", Json::Float(1.5)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"f","n":-3,"x":1.5,"ok":true,"xs":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn parses_nested_documents() {
        let text = r#" { "a" : [ 1 , { "b" : "x" } , -2.5e1 ] , "c" : false } "#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(arr[2].as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::obj(vec![("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }
}
