//! Length-prefixed JSON framing for the compile-service wire protocol.
//!
//! One frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON (rendered and parsed by [`crate::json`], so the
//! protocol layer shares the zero-dependency JSON surface with the trace
//! emitters). Framing keeps the stream self-synchronizing for well-behaved
//! peers while letting the reader reject pathological input *before*
//! buffering it: a length above the negotiated cap is refused without
//! reading the payload.
//!
//! The reader distinguishes the failure modes a server must treat
//! differently:
//!
//! - [`FrameError::Closed`] — EOF exactly at a frame boundary: the peer
//!   hung up cleanly; a session loop ends without error.
//! - [`FrameError::Truncated`] — EOF inside a header or payload: the peer
//!   died mid-frame; tear the session down, nothing after it is parseable.
//! - [`FrameError::TooLarge`] — declared length above the cap; the
//!   connection is still framed, so a structured error response is safe.
//! - [`FrameError::Parse`] — the payload was delivered whole but is not
//!   valid JSON; also safe to answer with a structured error.
//! - [`FrameError::Io`] — transport error; tear the session down.

use std::io::{Read, Write};

use crate::json::{self, Json};

/// Default payload cap: 16 MiB. Large enough for any workload source or
/// trace document in the corpus by orders of magnitude, small enough that
/// a hostile length prefix cannot balloon the daemon's memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// EOF at a frame boundary: a clean close, not an error.
    Closed,
    /// EOF inside a header or payload: the peer vanished mid-frame.
    Truncated,
    /// The header declared `got` bytes but the cap is `max`.
    TooLarge {
        /// Declared payload length.
        got: u32,
        /// Enforced cap.
        max: u32,
    },
    /// The payload is not valid JSON.
    Parse(String),
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge { got, max } => {
                write!(f, "frame of {got} bytes exceeds the {max}-byte cap")
            }
            FrameError::Parse(e) => write!(f, "frame payload is not valid JSON: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True for the errors a still-framed connection can answer with a
    /// structured error response ([`FrameError::TooLarge`] after the
    /// oversized payload is drained is *not* recoverable — we never read
    /// it — so it is answered and then the session closes).
    pub fn is_clean_close(&self) -> bool {
        matches!(self, FrameError::Closed)
    }
}

/// Writes one frame: 4-byte big-endian length, then the compact JSON
/// rendering of `payload`.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> std::io::Result<()> {
    let body = payload.render();
    let len = body.len() as u64;
    debug_assert!(len <= u32::MAX as u64, "frame payload over 4 GiB");
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes. `Ok(0)` means EOF before the first
/// byte; `Err(Truncated)` means EOF after at least one byte.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(0)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads one frame, enforcing `max_len` on the declared payload length
/// before any payload byte is buffered.
///
/// # Errors
///
/// See [`FrameError`] for the taxonomy.
pub fn read_frame_with_limit(r: &mut impl Read, max_len: u32) -> Result<Json, FrameError> {
    let mut header = [0u8; 4];
    if read_exact_or_eof(r, &mut header)? == 0 {
        return Err(FrameError::Closed);
    }
    let len = u32::from_be_bytes(header);
    if len > max_len {
        return Err(FrameError::TooLarge {
            got: len,
            max: max_len,
        });
    }
    let mut body = vec![0u8; len as usize];
    if read_exact_or_eof(r, &mut body)? != body.len() && !body.is_empty() {
        return Err(FrameError::Truncated);
    }
    json::parse_bytes(&body).map_err(FrameError::Parse)
}

/// [`read_frame_with_limit`] at the default [`MAX_FRAME_LEN`] cap.
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Json, FrameError> {
    read_frame_with_limit(r, MAX_FRAME_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(v: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, v).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let v = Json::obj(vec![
            ("cmd", Json::Str("compile".into())),
            ("id", Json::Int(7)),
            ("nested", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(round_trip(&v), v);
        // Several frames on one stream read back in order.
        let mut buf = Vec::new();
        for i in 0..3 {
            write_frame(&mut buf, &Json::Int(i)).unwrap();
        }
        let mut c = Cursor::new(buf);
        for i in 0..3 {
            assert_eq!(read_frame(&mut c).unwrap(), Json::Int(i));
        }
        assert!(matches!(read_frame(&mut c), Err(FrameError::Closed)));
    }

    #[test]
    fn eof_at_boundary_is_clean_close() {
        let err = read_frame(&mut Cursor::new(Vec::new())).unwrap_err();
        assert!(err.is_clean_close());
    }

    #[test]
    fn eof_inside_header_or_payload_is_truncated() {
        // Two of four header bytes.
        let err = read_frame(&mut Cursor::new(vec![0, 0])).unwrap_err();
        assert!(matches!(err, FrameError::Truncated));
        // Complete header, half the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Str("hello world".into())).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Truncated), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut buf = (MAX_FRAME_LEN + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"irrelevant");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        match err {
            FrameError::TooLarge { got, max } => {
                assert_eq!(got, MAX_FRAME_LEN + 1);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected TooLarge, got {other}"),
        }
        // A tighter per-call limit applies too.
        let mut small = 100u32.to_be_bytes().to_vec();
        small.extend_from_slice(&[b'x'; 100]);
        assert!(matches!(
            read_frame_with_limit(&mut Cursor::new(small), 10),
            Err(FrameError::TooLarge { got: 100, max: 10 })
        ));
    }

    #[test]
    fn invalid_json_payload_is_a_parse_error() {
        let body = b"{not json";
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Parse(_)), "{err}");
    }

    #[test]
    fn empty_payload_parses_as_error_not_panic() {
        // A zero-length frame is delivered whole but holds no JSON value.
        let buf = 0u32.to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Parse(_)));
    }
}
