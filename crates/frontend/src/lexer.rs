//! Lexer for the Mini language.

use crate::error::CompileError;
use crate::token::{Pos, Spanned, Tok};

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a [`CompileError`] for unknown characters or malformed literals.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    CompileError::new(pos, format!("integer literal `{text}` out of range"))
                })?;
                out.push(Spanned {
                    tok: Tok::Int(value),
                    pos,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let word = &source[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "extern" => Tok::Extern,
                    "global" => Tok::Global,
                    "var" => Tok::Var,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "print" => Tok::Print,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "int" => Tok::IntTy,
                    "fnptr" => Tok::FnPtr,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, pos });
            }
            _ => {
                // Punctuation and operators, longest match first. Matched
                // on raw bytes: slicing `source` at `i..i + 2` would panic
                // on arbitrary (non-UTF-8-aligned) input.
                let next = if i + 1 < bytes.len() { bytes[i + 1] } else { 0 };
                let (tok, len) = match (c, next) {
                    (b'-', b'>') => (Tok::Arrow, 2),
                    (b'=', b'=') => (Tok::EqEq, 2),
                    (b'!', b'=') => (Tok::NotEq, 2),
                    (b'<', b'=') => (Tok::Le, 2),
                    (b'>', b'=') => (Tok::Ge, 2),
                    (b'&', b'&') => (Tok::AndAnd, 2),
                    (b'|', b'|') => (Tok::OrOr, 2),
                    (b'<', b'<') => (Tok::Shl, 2),
                    (b'>', b'>') => (Tok::Shr, 2),
                    _ => match c {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b',' => (Tok::Comma, 1),
                        b';' => (Tok::Semi, 1),
                        b':' => (Tok::Colon, 1),
                        b'=' => (Tok::Assign, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'/' => (Tok::Slash, 1),
                        b'%' => (Tok::Percent, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b'!' => (Tok::Not, 1),
                        b'&' => (Tok::Amp, 1),
                        b'|' => (Tok::Pipe, 1),
                        b'^' => (Tok::Caret, 1),
                        other if other.is_ascii() => {
                            return Err(CompileError::new(
                                pos,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                        other => {
                            return Err(CompileError::new(
                                pos,
                                format!("unexpected byte 0x{other:02x}"),
                            ))
                        }
                    },
                };
                for _ in 0..len {
                    bump!();
                }
                out.push(Spanned { tok, pos });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_function_header() {
        assert_eq!(
            kinds("fn add(x: int) -> int"),
            vec![
                Tok::Fn,
                Tok::Ident("add".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Colon,
                Tok::IntTy,
                Tok::RParen,
                Tok::Arrow,
                Tok::IntTy,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("a <= b << 2 && !c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Int(2),
                Tok::AndAnd,
                Tok::Not,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// header\nx").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("x".into()));
        assert_eq!(toks[0].pos.line, 2);
        assert_eq!(toks[0].pos.col, 1);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn rejects_huge_literal() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn rejects_multibyte_input_without_panicking() {
        // A multi-byte character right before a two-byte operator start:
        // the old str-slice operator lookahead panicked off the char
        // boundary here.
        for src in ["a �& b", "x =\u{2603}= y", "é", "<\u{fffd}"] {
            let err = lex(src).unwrap_err();
            assert!(err.message.contains("unexpected byte"), "{src:?}: {err}");
        }
    }
}
