//! Recursive-descent parser for the Mini language.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::lex;
use crate::token::{Pos, Spanned, Tok};

/// Parses a source file into an AST.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, i: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, want: Tok) -> Result<(), CompileError> {
        if *self.peek() == want {
            self.next();
            Ok(())
        } else {
            Err(CompileError::new(
                self.pos(),
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(n) => {
                self.next();
                Ok(n)
            }
            other => Err(CompileError::new(
                self.pos(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn int_lit(&mut self) -> Result<i64, CompileError> {
        // Allow a leading minus in constant contexts.
        let neg = if *self.peek() == Tok::Minus {
            self.next();
            true
        } else {
            false
        };
        match self.peek().clone() {
            Tok::Int(v) => {
                self.next();
                Ok(if neg { -v } else { v })
            }
            other => Err(CompileError::new(
                self.pos(),
                format!("expected integer, found {other}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Global => prog.globals.push(self.global()?),
                Tok::Fn | Tok::Extern => prog.funcs.push(self.func()?),
                other => {
                    return Err(CompileError::new(
                        self.pos(),
                        format!("expected `global`, `fn` or `extern`, found {other}"),
                    ))
                }
            }
        }
        Ok(prog)
    }

    fn ty(&mut self) -> Result<Ty, CompileError> {
        match self.peek().clone() {
            Tok::IntTy => {
                self.next();
                Ok(Ty::Int)
            }
            Tok::FnPtr => {
                self.next();
                Ok(Ty::FnPtr)
            }
            Tok::LBracket => {
                self.next();
                self.eat(Tok::IntTy)?;
                self.eat(Tok::Semi)?;
                let n = self.int_lit()?;
                if n <= 0 || n > 1 << 24 {
                    return Err(CompileError::new(
                        self.pos(),
                        format!("bad array length {n}"),
                    ));
                }
                self.eat(Tok::RBracket)?;
                Ok(Ty::Array(n as u32))
            }
            other => Err(CompileError::new(
                self.pos(),
                format!("expected a type, found {other}"),
            )),
        }
    }

    fn global(&mut self) -> Result<GlobalDecl, CompileError> {
        let pos = self.pos();
        self.eat(Tok::Global)?;
        let name = self.ident()?;
        self.eat(Tok::Colon)?;
        let ty = self.ty()?;
        if ty == Ty::FnPtr {
            return Err(CompileError::new(pos, "globals cannot have type fnptr"));
        }
        let mut init = Vec::new();
        if *self.peek() == Tok::Assign {
            self.next();
            match ty {
                Ty::Int => init.push(self.int_lit()?),
                Ty::Array(_) => {
                    self.eat(Tok::LBracket)?;
                    if *self.peek() != Tok::RBracket {
                        init.push(self.int_lit()?);
                        while *self.peek() == Tok::Comma {
                            self.next();
                            init.push(self.int_lit()?);
                        }
                    }
                    self.eat(Tok::RBracket)?;
                }
                Ty::FnPtr => unreachable!(),
            }
        }
        self.eat(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            pos,
        })
    }

    fn func(&mut self) -> Result<FuncDecl, CompileError> {
        let pos = self.pos();
        let is_extern = if *self.peek() == Tok::Extern {
            self.next();
            true
        } else {
            false
        };
        self.eat(Tok::Fn)?;
        let name = self.ident()?;
        self.eat(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let pname = self.ident()?;
                self.eat(Tok::Colon)?;
                let pty = self.ty()?;
                if matches!(pty, Ty::Array(_)) {
                    return Err(CompileError::new(pos, "array parameters are not supported"));
                }
                params.push((pname, pty));
                if *self.peek() == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.eat(Tok::RParen)?;
        let returns_value = if *self.peek() == Tok::Arrow {
            self.next();
            self.eat(Tok::IntTy)?;
            true
        } else {
            false
        };
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            returns_value,
            is_extern,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.eat(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(CompileError::new(
                    self.pos(),
                    "unexpected end of input in block",
                ));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Var => {
                self.next();
                let name = self.ident()?;
                self.eat(Tok::Colon)?;
                let ty = self.ty()?;
                let init = if *self.peek() == Tok::Assign {
                    if matches!(ty, Ty::Array(_)) {
                        return Err(CompileError::new(
                            pos,
                            "array variables cannot be initialized",
                        ));
                    }
                    self.next();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat(Tok::Semi)?;
                Ok(Stmt::Var {
                    name,
                    ty,
                    init,
                    pos,
                })
            }
            Tok::If => {
                self.next();
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if *self.peek() == Tok::Else {
                    self.next();
                    if *self.peek() == Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::While => {
                self.next();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Return => {
                self.next();
                let value = if *self.peek() != Tok::Semi {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat(Tok::Semi)?;
                Ok(Stmt::Return(value, pos))
            }
            Tok::Print => {
                self.next();
                self.eat(Tok::LParen)?;
                let e = self.expr()?;
                self.eat(Tok::RParen)?;
                self.eat(Tok::Semi)?;
                Ok(Stmt::Print(e))
            }
            Tok::Break => {
                self.next();
                self.eat(Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::Continue => {
                self.next();
                self.eat(Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            Tok::Ident(name) => {
                // assignment or expression statement.
                self.next();
                match self.peek().clone() {
                    Tok::Assign => {
                        self.next();
                        let value = self.expr()?;
                        self.eat(Tok::Semi)?;
                        Ok(Stmt::Assign {
                            target: LValue::Name(name),
                            value,
                            pos,
                        })
                    }
                    Tok::LBracket => {
                        self.next();
                        let idx = self.expr()?;
                        self.eat(Tok::RBracket)?;
                        if *self.peek() == Tok::Assign {
                            self.next();
                            let value = self.expr()?;
                            self.eat(Tok::Semi)?;
                            Ok(Stmt::Assign {
                                target: LValue::Index(name, Box::new(idx)),
                                value,
                                pos,
                            })
                        } else {
                            Err(CompileError::new(
                                self.pos(),
                                "array element expression cannot stand alone as a statement",
                            ))
                        }
                    }
                    Tok::LParen => {
                        // call statement.
                        self.next();
                        let args = self.call_args()?;
                        self.eat(Tok::Semi)?;
                        Ok(Stmt::ExprStmt(Expr::Call { name, args, pos }))
                    }
                    other => Err(CompileError::new(
                        self.pos(),
                        format!("expected `=`, `[` or `(` after identifier, found {other}"),
                    )),
                }
            }
            other => Err(CompileError::new(
                pos,
                format!("unexpected token {other} in statement"),
            )),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, CompileError> {
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            args.push(self.expr()?);
            while *self.peek() == Tok::Comma {
                self.next();
                args.push(self.expr()?);
            }
        }
        self.eat(Tok::RParen)?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    /// Precedence climbing. Levels (low to high):
    /// `||`; `&&`; `== !=`; `< <= > >=`; `|`; `^`; `&`; `<< >>`; `+ -`;
    /// `* / %`.
    fn bin_expr(&mut self, min_level: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek() {
                Tok::OrOr => (BinAst::Or, 0),
                Tok::AndAnd => (BinAst::And, 1),
                Tok::EqEq => (BinAst::Eq, 2),
                Tok::NotEq => (BinAst::Ne, 2),
                Tok::Lt => (BinAst::Lt, 3),
                Tok::Le => (BinAst::Le, 3),
                Tok::Gt => (BinAst::Gt, 3),
                Tok::Ge => (BinAst::Ge, 3),
                Tok::Pipe => (BinAst::BitOr, 4),
                Tok::Caret => (BinAst::BitXor, 5),
                Tok::Amp => (BinAst::BitAnd, 6),
                Tok::Shl => (BinAst::Shl, 7),
                Tok::Shr => (BinAst::Shr, 7),
                Tok::Plus => (BinAst::Add, 8),
                Tok::Minus => (BinAst::Sub, 8),
                Tok::Star => (BinAst::Mul, 9),
                Tok::Slash => (BinAst::Div, 9),
                Tok::Percent => (BinAst::Rem, 9),
                _ => break,
            };
            if level < min_level {
                break;
            }
            let pos = self.pos();
            self.next();
            let rhs = self.bin_expr(level + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Minus => {
                self.next();
                Ok(Expr::Neg(Box::new(self.unary()?), pos))
            }
            Tok::Not => {
                self.next();
                Ok(Expr::Not(Box::new(self.unary()?), pos))
            }
            Tok::Amp => {
                self.next();
                let name = self.ident()?;
                Ok(Expr::FuncAddr(name, pos))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.next();
                Ok(Expr::Int(v, pos))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.eat(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.next();
                match self.peek().clone() {
                    Tok::LParen => {
                        self.next();
                        let args = self.call_args()?;
                        Ok(Expr::Call { name, args, pos })
                    }
                    Tok::LBracket => {
                        self.next();
                        let idx = self.expr()?;
                        self.eat(Tok::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx), pos))
                    }
                    _ => Ok(Expr::Name(name, pos)),
                }
            }
            other => Err(CompileError::new(
                pos,
                format!("unexpected token {other} in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let src = r#"
            global acc: int;
            global tab: [int; 8] = [1, 2, 3];
            fn work(x: int) -> int {
                var t: int = x * 2;
                if t > 4 && x != 0 { t = t - 1; } else { t = 0; }
                while t > 0 { t = t - 1; acc = acc + 1; }
                return t;
            }
            fn main() {
                print(work(5));
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.globals[1].init, vec![1, 2, 3]);
        assert_eq!(prog.funcs.len(), 2);
        assert_eq!(prog.funcs[0].name, "work");
        assert!(prog.funcs[0].returns_value);
        assert!(!prog.funcs[1].returns_value);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let prog = parse("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(Expr::Bin(BinAst::Add, _, rhs, _)), _) = &prog.funcs[0].body[0]
        else {
            panic!("expected return of an Add");
        };
        assert!(matches!(**rhs, Expr::Bin(BinAst::Mul, _, _, _)));
    }

    #[test]
    fn parses_fnptr_and_indirect_call() {
        let src = r#"
            fn id(x: int) -> int { return x; }
            fn main() {
                var p: fnptr = &id;
                print(p(7));
            }
        "#;
        let prog = parse(src).unwrap();
        assert!(matches!(
            prog.funcs[1].body[0],
            Stmt::Var {
                ty: Ty::FnPtr,
                init: Some(Expr::FuncAddr(..)),
                ..
            }
        ));
    }

    #[test]
    fn parses_else_if_chain() {
        let src = "fn f(x: int) -> int { if x > 2 { return 2; } else if x > 1 { return 1; } else { return 0; } }";
        let prog = parse(src).unwrap();
        let Stmt::If { else_body, .. } = &prog.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn extern_flag_recorded() {
        let prog = parse("extern fn lib() { }").unwrap();
        assert!(prog.funcs[0].is_extern);
    }

    #[test]
    fn error_mentions_position() {
        let err = parse("fn f() {\n  var = 3;\n}").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert!(err.message.contains("expected identifier"), "{err}");
    }

    #[test]
    fn rejects_array_params() {
        assert!(parse("fn f(a: [int; 3]) { }").is_err());
    }
}
