//! Tokens and source positions.

/// A position in the source text (1-based line and column). The default
/// `0:0` marks synthetic nodes that have no source position (e.g. ones
/// fabricated by the test-case reducer).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the Mini language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `extern`
    Extern,
    /// `global`
    Global,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `print`
    Print,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `int`
    IntTy,
    /// `fnptr`
    FnPtr,

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,

    // Operators.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,

    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tok::Int(i) => return write!(f, "{i}"),
            Tok::Ident(n) => return write!(f, "`{n}`"),
            Tok::Fn => "fn",
            Tok::Extern => "extern",
            Tok::Global => "global",
            Tok::Var => "var",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::Return => "return",
            Tok::Print => "print",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::IntTy => "int",
            Tok::FnPtr => "fnptr",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Arrow => "->",
            Tok::Assign => "=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Not => "!",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

/// A token with its position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
