//! Abstract syntax tree of the Mini language.

use crate::token::Pos;

/// A whole source file.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Global declarations, in order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in order.
    pub funcs: Vec<FuncDecl>,
}

/// Declared type of a variable or global.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// Array of integers with the given length.
    Array(u32),
    /// Function pointer.
    FnPtr,
}

/// `global name: ty (= init)?;`
#[derive(Clone, Debug)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Type (Int or Array).
    pub ty: Ty,
    /// Optional initializer values.
    pub init: Vec<i64>,
    /// Position.
    pub pos: Pos,
}

/// `extern? fn name(params) -> int? { ... }`
#[derive(Clone, Debug)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Parameters (name, type); types are Int or FnPtr.
    pub params: Vec<(String, Ty)>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Whether marked `extern` (externally visible / separately compiled).
    pub is_extern: bool,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `var name: ty (= expr)?;`
    Var {
        /// Name.
        name: String,
        /// Type.
        ty: Ty,
        /// Optional initializer (scalars only).
        init: Option<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `lvalue = expr;`
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
        /// Position.
        pos: Pos,
    },
    /// `if cond { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while cond { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>, Pos),
    /// `print(expr);`
    Print(Expr),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// An expression evaluated for effect (calls).
    ExprStmt(Expr),
}

/// Assignment targets.
#[derive(Clone, Debug)]
pub enum LValue {
    /// A scalar variable or global.
    Name(String),
    /// An array element `name[index]`.
    Index(String, Box<Expr>),
}

/// Binary operators at the AST level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinAst {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Variable or global read.
    Name(String, Pos),
    /// Array element read.
    Index(String, Box<Expr>, Pos),
    /// `&name` — address of a function.
    FuncAddr(String, Pos),
    /// Call. Resolution (direct vs indirect) happens during lowering.
    Call {
        /// Callee name (a function or a fnptr variable).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Binary operation.
    Bin(BinAst, Box<Expr>, Box<Expr>, Pos),
    /// Unary negation.
    Neg(Box<Expr>, Pos),
    /// Logical not (`!`).
    Not(Box<Expr>, Pos),
}

impl Expr {
    /// Position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Name(_, p)
            | Expr::Index(_, _, p)
            | Expr::FuncAddr(_, p)
            | Expr::Call { pos: p, .. }
            | Expr::Bin(_, _, _, p)
            | Expr::Neg(_, p)
            | Expr::Not(_, p) => *p,
        }
    }
}
