//! Compilation errors with positions.

use crate::token::Pos;

/// A front-end error at a source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        CompileError {
            pos,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}
