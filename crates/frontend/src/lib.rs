//! # ipra-frontend — the Mini language
//!
//! A small imperative language (integers, globals, arrays, procedures,
//! recursion, function pointers, `extern` separate-compilation markers)
//! compiled to the `ipra-ir` register-transfer IR. It plays the role of the
//! paper's Pascal/C front ends: every workload of the evaluation is written
//! in Mini.
//!
//! ```
//! let src = r#"
//!     fn square(x: int) -> int { return x * x; }
//!     fn main() { print(square(6)); }
//! "#;
//! let module = ipra_frontend::compile(src)?;
//! let out = ipra_ir::interp::run_module(&module).unwrap();
//! assert_eq!(out.output, vec![36]);
//! # Ok::<(), ipra_frontend::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::CompileError;

use ipra_ir::Module;

/// Compiles Mini source text into a verified IR module.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    let prog = parser::parse(source)?;
    let module = lower::lower(&prog)?;
    debug_assert!(
        ipra_ir::verify::verify_module(&module).is_ok(),
        "front end must produce verifiable IR: {:?}",
        ipra_ir::verify::verify_module(&module)
    );
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::interp::run_module;

    fn run(src: &str) -> Vec<i64> {
        let m = compile(src).unwrap_or_else(|e| panic!("compile error: {e}"));
        ipra_ir::verify::verify_module(&m).unwrap();
        run_module(&m)
            .unwrap_or_else(|t| panic!("trap: {t}"))
            .output
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("fn main() { print(1 + 2 * 3 - 4 / 2); }"), vec![5]);
        assert_eq!(run("fn main() { print((1 + 2) * 3); }"), vec![9]);
        assert_eq!(run("fn main() { print(-7 % 3); }"), vec![-1]);
        assert_eq!(run("fn main() { print(1 << 4 | 3); }"), vec![19]);
    }

    #[test]
    fn variables_and_loops() {
        let src = r#"
            fn main() {
                var sum: int = 0;
                var i: int = 1;
                while i <= 10 { sum = sum + i; i = i + 1; }
                print(sum);
            }
        "#;
        assert_eq!(run(src), vec![55]);
    }

    #[test]
    fn if_else_chain() {
        let src = r#"
            fn grade(x: int) -> int {
                if x >= 90 { return 4; }
                else if x >= 80 { return 3; }
                else if x >= 70 { return 2; }
                else { return 0; }
            }
            fn main() { print(grade(85)); print(grade(95)); print(grade(10)); }
        "#;
        assert_eq!(run(src), vec![3, 4, 0]);
    }

    #[test]
    fn recursion() {
        let src = r#"
            fn fact(n: int) -> int {
                if n <= 1 { return 1; }
                return n * fact(n - 1);
            }
            fn main() { print(fact(10)); }
        "#;
        assert_eq!(run(src), vec![3628800]);
    }

    #[test]
    fn globals_and_arrays() {
        let src = r#"
            global total: int = 5;
            global squares: [int; 10];
            fn fill() {
                var i: int = 0;
                while i < 10 { squares[i] = i * i; i = i + 1; }
            }
            fn main() {
                fill();
                total = total + squares[4] + squares[9];
                print(total);
            }
        "#;
        assert_eq!(run(src), vec![5 + 16 + 81]);
    }

    #[test]
    fn local_arrays() {
        let src = r#"
            fn main() {
                var buf: [int; 4];
                var i: int = 0;
                while i < 4 { buf[i] = i + 10; i = i + 1; }
                print(buf[0] + buf[3]);
            }
        "#;
        assert_eq!(run(src), vec![23]);
    }

    #[test]
    fn short_circuit_protects_division() {
        let src = r#"
            fn main() {
                var d: int = 0;
                if d != 0 && 10 / d > 1 { print(1); } else { print(0); }
                if d == 0 || 10 / d > 1 { print(2); } else { print(3); }
            }
        "#;
        assert_eq!(run(src), vec![0, 2]);
    }

    #[test]
    fn function_pointers() {
        let src = r#"
            fn double(x: int) -> int { return x + x; }
            fn triple(x: int) -> int { return 3 * x; }
            fn apply(f: fnptr, x: int) -> int { return f(x); }
            fn main() {
                print(apply(&double, 5));
                print(apply(&triple, 5));
            }
        "#;
        assert_eq!(run(src), vec![10, 15]);
    }

    #[test]
    fn break_and_continue() {
        let src = r#"
            fn main() {
                var i: int = 0;
                var sum: int = 0;
                while i < 100 {
                    i = i + 1;
                    if i % 2 == 0 { continue; }
                    if i > 10 { break; }
                    sum = sum + i;
                }
                print(sum); // 1+3+5+7+9
                print(i);
            }
        "#;
        assert_eq!(run(src), vec![25, 11]);
    }

    #[test]
    fn extern_marks_function_open() {
        let m = compile("extern fn lib() { } fn main() { lib(); }").unwrap();
        let lib = m.func_by_name("lib").unwrap();
        assert!(m.funcs[lib].attrs.external_visible);
    }

    #[test]
    fn fall_off_end_returns_zero() {
        assert_eq!(
            run("fn f(x: int) -> int { if x > 0 { return 1; } } fn main() { print(f(0)); print(f(2)); }"),
            vec![0, 1]
        );
    }

    #[test]
    fn nested_scopes_shadow() {
        let src = r#"
            fn main() {
                var x: int = 1;
                if 1 == 1 {
                    var x: int = 2;
                    print(x);
                }
                print(x);
            }
        "#;
        assert_eq!(run(src), vec![2, 1]);
    }

    #[test]
    fn semantic_errors() {
        assert!(compile("fn main() { print(nope); }").is_err());
        assert!(compile("fn main() { nope(); }").is_err());
        assert!(compile("fn f(x: int) {} fn main() { f(); }").is_err());
        assert!(compile("fn f() {} fn main() { print(f()); }").is_err());
        assert!(compile("fn f() { return 3; } fn main() { }").is_err());
        assert!(compile("fn f() -> int { return; } fn main() { }").is_err());
        assert!(compile("fn f() { }").is_err(), "missing main");
        assert!(compile("fn main() { break; }").is_err());
        assert!(compile("fn main() { var a: [int; 3]; print(a); }").is_err());
        assert!(compile("fn main(x: int) { }").is_err(), "main with params");
        assert!(compile("fn f() {} fn f() {} fn main() { }").is_err());
    }

    #[test]
    fn mutual_recursion_via_source() {
        let src = r#"
            fn is_even(n: int) -> int {
                if n == 0 { return 1; }
                return is_odd(n - 1);
            }
            fn is_odd(n: int) -> int {
                if n == 0 { return 0; }
                return is_even(n - 1);
            }
            fn main() { print(is_even(20)); print(is_odd(20)); }
        "#;
        assert_eq!(run(src), vec![1, 0]);
    }
}
