//! AST → IR lowering with semantic checks.

use std::collections::HashMap;

use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{
    Address, BinOp, FuncId, GlobalData, GlobalId, Inst, Module, Operand, SlotId, UnOp, Vreg,
};

use crate::ast::*;
use crate::error::CompileError;
use crate::token::Pos;

/// Lowers a parsed program to an IR module.
///
/// # Errors
///
/// Returns semantic errors (unknown names, arity mismatches, misuse of
/// arrays or void functions, missing `main`).
pub fn lower(prog: &Program) -> Result<Module, CompileError> {
    let mut module = Module::new();

    // Globals.
    //
    // Determinism: the name tables here (and the scope stack below) are
    // HashMaps read only by keyed lookup; entity ids are assigned in source
    // order by the `prog` iteration, so map iteration order never shapes
    // the module.
    let mut globals: HashMap<String, (GlobalId, Ty)> = HashMap::new();
    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return Err(CompileError::new(
                g.pos,
                format!("duplicate global `{}`", g.name),
            ));
        }
        let size = match g.ty {
            Ty::Int => 1,
            Ty::Array(n) => n,
            Ty::FnPtr => unreachable!("rejected by parser"),
        };
        let id = module.add_global(GlobalData {
            name: g.name.clone(),
            size,
            init: g.init.clone(),
        });
        globals.insert(g.name.clone(), (id, g.ty));
    }

    // Function signatures.
    let mut funcs: HashMap<String, (FuncId, usize, bool)> = HashMap::new();
    for f in &prog.funcs {
        if funcs.contains_key(&f.name) {
            return Err(CompileError::new(
                f.pos,
                format!("duplicate function `{}`", f.name),
            ));
        }
        if globals.contains_key(&f.name) {
            return Err(CompileError::new(
                f.pos,
                format!("`{}` is already a global", f.name),
            ));
        }
        let id = module.declare_func(f.name.clone());
        funcs.insert(f.name.clone(), (id, f.params.len(), f.returns_value));
    }

    // Bodies.
    for f in &prog.funcs {
        let (fid, _, _) = funcs[&f.name];
        let mut ctx = FnCtx {
            globals: &globals,
            funcs: &funcs,
            decl: f,
            b: FunctionBuilder::new(f.name.clone()),
            scopes: vec![HashMap::new()],
            loop_stack: Vec::new(),
        };
        if f.is_extern {
            ctx.b.set_external_visible();
        }
        for (pname, pty) in &f.params {
            if ctx.scopes[0].contains_key(pname) {
                return Err(CompileError::new(
                    f.pos,
                    format!("duplicate parameter `{pname}`"),
                ));
            }
            let v = ctx.b.param(pname.clone());
            ctx.scopes[0].insert(pname.clone(), Binding::Scalar(v, *pty));
        }
        let reachable = ctx.stmts(&f.body)?;
        if reachable {
            if f.returns_value {
                // Falling off the end of a value-returning function yields 0.
                ctx.b.ret(Some(Operand::Imm(0)));
            } else {
                ctx.b.ret(None);
            }
        }
        module.define_func(fid, ctx.b.build());
    }

    match module.func_by_name("main") {
        Some(main) => {
            if !module.funcs[main].params.is_empty() {
                return Err(CompileError::new(
                    Pos { line: 1, col: 1 },
                    "main must take no parameters",
                ));
            }
            module.main = Some(main);
        }
        None => {
            return Err(CompileError::new(
                Pos { line: 1, col: 1 },
                "program has no `main`",
            ));
        }
    }
    Ok(module)
}

#[derive(Clone, Copy)]
enum Binding {
    Scalar(Vreg, Ty),
    Array(SlotId, u32),
}

struct FnCtx<'a> {
    globals: &'a HashMap<String, (GlobalId, Ty)>,
    funcs: &'a HashMap<String, (FuncId, usize, bool)>,
    decl: &'a FuncDecl,
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    /// (continue target, break target)
    loop_stack: Vec<(ipra_ir::BlockId, ipra_ir::BlockId)>,
}

impl FnCtx<'_> {
    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Lowers statements; returns whether control can reach the end.
    fn stmts(&mut self, stmts: &[Stmt]) -> Result<bool, CompileError> {
        self.scopes.push(HashMap::new());
        let mut reachable = true;
        for s in stmts {
            if !reachable {
                // Statically unreachable code after return/break/continue is
                // simply dropped.
                break;
            }
            reachable = self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(reachable)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<bool, CompileError> {
        match s {
            Stmt::Var {
                name,
                ty,
                init,
                pos,
            } => {
                if self.scopes.last().unwrap().contains_key(name) {
                    return Err(CompileError::new(
                        *pos,
                        format!("duplicate variable `{name}`"),
                    ));
                }
                let binding = match ty {
                    Ty::Int | Ty::FnPtr => {
                        let v = self.b.var(name.clone());
                        let val = match init {
                            Some(e) => self.expr(e)?,
                            None => Operand::Imm(0),
                        };
                        self.b.copy_to(v, val);
                        Binding::Scalar(v, *ty)
                    }
                    Ty::Array(n) => {
                        let slot = self.b.slot(name.clone(), *n);
                        Binding::Array(slot, *n)
                    }
                };
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), binding);
                Ok(true)
            }
            Stmt::Assign { target, value, pos } => {
                let val = self.expr(value)?;
                match target {
                    LValue::Name(name) => match self.lookup(name) {
                        Some(Binding::Scalar(v, _)) => {
                            self.b.copy_to(v, val);
                            Ok(true)
                        }
                        Some(Binding::Array(..)) => Err(CompileError::new(
                            *pos,
                            format!("cannot assign to array `{name}`"),
                        )),
                        None => match self.globals.get(name) {
                            Some(&(g, Ty::Int)) => {
                                self.b.store(val, Address::global_scalar(g));
                                Ok(true)
                            }
                            Some(_) => Err(CompileError::new(
                                *pos,
                                format!("cannot assign to array global `{name}`"),
                            )),
                            None => Err(CompileError::new(
                                *pos,
                                format!("unknown variable `{name}`"),
                            )),
                        },
                    },
                    LValue::Index(name, idx) => {
                        let i = self.expr(idx)?;
                        let addr = self.element_addr(name, i, *pos)?;
                        self.b.store(val, addr);
                        Ok(true)
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cv = self.expr(cond)?;
                let then_b = self.b.new_block();
                let else_b = self.b.new_block();
                let join = self.b.new_block();
                self.b.cond_br(cv, then_b, else_b);

                self.b.switch_to(then_b);
                let t_reach = self.stmts(then_body)?;
                if t_reach {
                    self.b.br(join);
                }
                self.b.switch_to(else_b);
                let e_reach = self.stmts(else_body)?;
                if e_reach {
                    self.b.br(join);
                }
                self.b.switch_to(join);
                if !t_reach && !e_reach {
                    // Dead join: terminate it and report unreachable.
                    self.terminate_dead();
                    Ok(false)
                } else {
                    Ok(true)
                }
            }
            Stmt::While { cond, body } => {
                let header = self.b.new_block();
                let body_b = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to(header);
                let cv = self.expr(cond)?;
                self.b.cond_br(cv, body_b, exit);
                self.b.switch_to(body_b);
                self.loop_stack.push((header, exit));
                let reach = self.stmts(body)?;
                self.loop_stack.pop();
                if reach {
                    self.b.br(header);
                }
                self.b.switch_to(exit);
                Ok(true)
            }
            Stmt::Return(value, pos) => {
                match (value, self.decl.returns_value) {
                    (Some(e), true) => {
                        let v = self.expr(e)?;
                        self.b.ret(Some(v));
                    }
                    (None, false) => self.b.ret(None),
                    (Some(_), false) => {
                        return Err(CompileError::new(
                            *pos,
                            format!("`{}` returns no value", self.decl.name),
                        ))
                    }
                    (None, true) => {
                        return Err(CompileError::new(
                            *pos,
                            format!("`{}` must return a value", self.decl.name),
                        ))
                    }
                }
                Ok(false)
            }
            Stmt::Print(e) => {
                let v = self.expr(e)?;
                self.b.print(v);
                Ok(true)
            }
            Stmt::Break(pos) => match self.loop_stack.last() {
                Some(&(_, exit)) => {
                    self.b.br(exit);
                    // br() may have moved the cursor into `exit`; lowering
                    // continues in a fresh dead block instead.
                    let dead = self.b.new_block();
                    self.b.switch_to(dead);
                    self.terminate_dead();
                    Ok(false)
                }
                None => Err(CompileError::new(*pos, "break outside of a loop")),
            },
            Stmt::Continue(pos) => match self.loop_stack.last() {
                Some(&(header, _)) => {
                    self.b.br(header);
                    let dead = self.b.new_block();
                    self.b.switch_to(dead);
                    self.terminate_dead();
                    Ok(false)
                }
                None => Err(CompileError::new(*pos, "continue outside of a loop")),
            },
            Stmt::ExprStmt(e) => {
                match e {
                    Expr::Call { name, args, pos } => {
                        self.call(name, args, *pos, false)?;
                    }
                    other => {
                        let _ = self.expr(other)?;
                    }
                }
                Ok(true)
            }
        }
    }

    /// Terminates the (dead) current block consistently with the function's
    /// return kind.
    fn terminate_dead(&mut self) {
        if self.decl.returns_value {
            self.b.ret(Some(Operand::Imm(0)));
        } else {
            self.b.ret(None);
        }
    }

    fn element_addr(
        &mut self,
        name: &str,
        index: Operand,
        pos: Pos,
    ) -> Result<Address, CompileError> {
        // Constant indexes are bounds-checked at compile time.
        let check = |size: u32| -> Result<(), CompileError> {
            if let Operand::Imm(i) = index {
                if i < 0 || i >= size as i64 {
                    return Err(CompileError::new(
                        pos,
                        format!("index {i} out of bounds for `{name}` (size {size})"),
                    ));
                }
            }
            Ok(())
        };
        match self.lookup(name) {
            Some(Binding::Array(slot, size)) => {
                check(size)?;
                Ok(Address::Stack { slot, index })
            }
            Some(Binding::Scalar(..)) => {
                Err(CompileError::new(pos, format!("`{name}` is not an array")))
            }
            None => match self.globals.get(name) {
                Some(&(g, Ty::Array(size))) => {
                    check(size)?;
                    Ok(Address::Global { global: g, index })
                }
                Some(_) => Err(CompileError::new(
                    pos,
                    format!("global `{name}` is not an array"),
                )),
                None => Err(CompileError::new(pos, format!("unknown array `{name}`"))),
            },
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: Pos,
        want_value: bool,
    ) -> Result<Option<Vreg>, CompileError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.expr(a)?);
        }
        // A local scalar shadows a function name: indirect call. Only
        // fnptr-typed variables may be called.
        if let Some(Binding::Scalar(v, ty)) = self.lookup(name) {
            if ty != Ty::FnPtr {
                return Err(CompileError::new(
                    pos,
                    format!("`{name}` has type int and cannot be called"),
                ));
            }
            let dst = if want_value {
                Some(self.b.vreg())
            } else {
                None
            };
            self.b.emit(Inst::Call {
                callee: ipra_ir::Callee::Indirect(Operand::Reg(v)),
                args: vals,
                dst,
            });
            return Ok(dst);
        }
        match self.funcs.get(name) {
            Some(&(fid, arity, returns_value)) => {
                if arity != args.len() {
                    return Err(CompileError::new(
                        pos,
                        format!("`{name}` takes {arity} arguments, got {}", args.len()),
                    ));
                }
                if want_value && !returns_value {
                    return Err(CompileError::new(
                        pos,
                        format!("void function `{name}` used in an expression"),
                    ));
                }
                if want_value {
                    Ok(Some(self.b.call(fid, vals)))
                } else {
                    self.b.call_void(fid, vals);
                    Ok(None)
                }
            }
            None => Err(CompileError::new(pos, format!("unknown function `{name}`"))),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match e {
            Expr::Int(v, _) => Ok(Operand::Imm(*v)),
            Expr::Name(name, pos) => match self.lookup(name) {
                Some(Binding::Scalar(v, _)) => Ok(Operand::Reg(v)),
                Some(Binding::Array(..)) => Err(CompileError::new(
                    *pos,
                    format!("array `{name}` used as a value"),
                )),
                None => match self.globals.get(name) {
                    Some(&(g, Ty::Int)) => Ok(Operand::Reg(self.b.load(Address::global_scalar(g)))),
                    Some(_) => Err(CompileError::new(
                        *pos,
                        format!("array global `{name}` used as a value"),
                    )),
                    None => Err(CompileError::new(*pos, format!("unknown name `{name}`"))),
                },
            },
            Expr::Index(name, idx, pos) => {
                let i = self.expr(idx)?;
                let addr = self.element_addr(name, i, *pos)?;
                Ok(Operand::Reg(self.b.load(addr)))
            }
            Expr::FuncAddr(name, pos) => match self.funcs.get(name) {
                Some(&(fid, _, _)) => Ok(Operand::Reg(self.b.func_addr(fid))),
                None => Err(CompileError::new(
                    *pos,
                    format!("unknown function `{name}`"),
                )),
            },
            Expr::Call { name, args, pos } => {
                let v = self.call(name, args, *pos, true)?;
                Ok(Operand::Reg(v.expect("value call returns a vreg")))
            }
            Expr::Neg(inner, _) => {
                let v = self.expr(inner)?;
                Ok(Operand::Reg(self.b.un(UnOp::Neg, v)))
            }
            Expr::Not(inner, _) => {
                let v = self.expr(inner)?;
                Ok(Operand::Reg(self.b.bin(BinOp::Eq, v, 0)))
            }
            Expr::Bin(op, lhs, rhs, _) => match op {
                BinAst::And | BinAst::Or => self.short_circuit(*op, lhs, rhs),
                _ => {
                    let l = self.expr(lhs)?;
                    let r = self.expr(rhs)?;
                    let irop = match op {
                        BinAst::Add => BinOp::Add,
                        BinAst::Sub => BinOp::Sub,
                        BinAst::Mul => BinOp::Mul,
                        BinAst::Div => BinOp::Div,
                        BinAst::Rem => BinOp::Rem,
                        BinAst::Eq => BinOp::Eq,
                        BinAst::Ne => BinOp::Ne,
                        BinAst::Lt => BinOp::Lt,
                        BinAst::Le => BinOp::Le,
                        BinAst::Gt => BinOp::Gt,
                        BinAst::Ge => BinOp::Ge,
                        BinAst::BitAnd => BinOp::And,
                        BinAst::BitOr => BinOp::Or,
                        BinAst::BitXor => BinOp::Xor,
                        BinAst::Shl => BinOp::Shl,
                        BinAst::Shr => BinOp::Shr,
                        BinAst::And | BinAst::Or => unreachable!(),
                    };
                    Ok(Operand::Reg(self.b.bin(irop, l, r)))
                }
            },
        }
    }

    /// `&&` and `||` with short-circuit evaluation.
    fn short_circuit(
        &mut self,
        op: BinAst,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<Operand, CompileError> {
        let result = self.b.vreg();
        let lv = self.expr(lhs)?;
        let rhs_b = self.b.new_block();
        let join = self.b.new_block();
        match op {
            BinAst::And => {
                self.b.copy_to(result, 0);
                self.b.cond_br(lv, rhs_b, join);
            }
            BinAst::Or => {
                self.b.copy_to(result, 1);
                self.b.cond_br(lv, join, rhs_b);
            }
            _ => unreachable!(),
        }
        self.b.switch_to(rhs_b);
        let rv = self.expr(rhs)?;
        let norm = self.b.bin(BinOp::Ne, rv, 0);
        self.b.copy_to(result, norm);
        self.b.br(join);
        // br() moves the cursor to `join` if it is still open; make sure.
        if self.b.current_block() != join {
            self.b.switch_to(join);
        }
        Ok(Operand::Reg(result))
    }
}
