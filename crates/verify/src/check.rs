//! The per-function verification passes.
//!
//! Everything is derived from the lowered code plus the published
//! summaries — the verifier deliberately does *not* look at the
//! allocator's internal plans, so a bug anywhere between planning and
//! emission is still caught.
//!
//! Pass structure:
//!
//! 1. **Value fixpoint** — a forward symbolic abstract interpretation.
//!    The domain tracks, per physical register and per single-cell
//!    `Save`-purpose frame slot, whether it still holds the entry value of
//!    some register ([`Abs::Entry`]) or something unknown; plus two
//!    must-sets: definitely-initialized registers and definitely-written
//!    outgoing stack cells.
//! 2. **Scan** — with the fixpoint states fixed, each block is walked
//!    once to (a) classify save/restore *events* (a store of a register's
//!    entry value to a save slot, a load of one back), (b) check §4
//!    argument bindings at direct calls, and (c) check preservation at
//!    every `ret`.
//! 3. **Discipline fixpoint** — a must/may "is the entry value currently
//!    saved" dataflow over the classified events, flagging the Fig. 2
//!    path properties (double save, restore without save, write before
//!    save, exit while saved) and the §5 loop constraint.
//! 4. **Liveness** — a backward physical-register liveness fixpoint; at
//!    every call, no register both live across the call and inside the
//!    callee's clobber mask (or the reserved set) may exist.

use std::collections::VecDeque;

use ipra_cfg::{Cfg, Dominators, LoopInfo};
use ipra_ir::{BlockId, FuncId};
use ipra_machine::{
    FuncSummary, MAddress, MCallee, MFunction, MInst, MModule, MOperand, MTerminator, PReg,
    ParamLoc, RegFile, RegMask, SlotPurpose,
};

use crate::diag::{CheckKind, Violation};

/// Symbolic value: the entry value of register `r`, or anything else.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Abs {
    Entry(PReg),
    Unknown,
}

/// Forward value state at a program point.
#[derive(Clone, PartialEq)]
struct VState {
    /// Per physical register.
    regs: Vec<Abs>,
    /// Per frame slot (only `Save`-purpose single-cell slots are tracked;
    /// the rest stay `Unknown`).
    slots: Vec<Abs>,
    /// Registers definitely written on every path from entry (minus those
    /// deinitialized by an intervening call's clobbers).
    init: RegMask,
    /// Outgoing stack-argument cells definitely written on every path.
    out_init: u64,
}

impl VState {
    /// Pointwise join (toward `Unknown` / set intersection); returns
    /// whether `self` changed.
    fn join_from(&mut self, other: &VState) -> bool {
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            if *a != *b && *a != Abs::Unknown {
                *a = Abs::Unknown;
                changed = true;
            }
        }
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            if *a != *b && *a != Abs::Unknown {
                *a = Abs::Unknown;
                changed = true;
            }
        }
        let init = self.init.intersect(other.init);
        if init != self.init {
            self.init = init;
            changed = true;
        }
        let oi = self.out_init & other.out_init;
        if oi != self.out_init {
            self.out_init = oi;
            changed = true;
        }
        changed
    }
}

fn eval(st: &VState, op: MOperand) -> Abs {
    match op {
        MOperand::Reg(r) => st.regs[r.index()],
        MOperand::Imm(_) => Abs::Unknown,
    }
}

/// A save/restore-discipline event, classified from the value states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    /// Store of `r`'s entry value into a save slot.
    Save(PReg),
    /// Load of `r`'s entry value back from a save slot.
    Restore(PReg),
    /// A write (or call clobber) of a watched register.
    Write(PReg),
}

pub(crate) fn verify_function(
    module: &MModule,
    fid: FuncId,
    regs: &RegFile,
    summaries: &[FuncSummary],
) -> Vec<Violation> {
    let f = &module.funcs[fid];
    let cfg = machine_cfg(f);
    let dom = Dominators::compute(&cfg);
    let loops = LoopInfo::compute(&cfg, &dom);

    // The simulator's exempt set: return value, link register, scratch.
    let mut exempt = RegMask::single(regs.ret_reg());
    exempt.insert(regs.ra());
    for s in regs.scratch() {
        exempt.insert(s);
    }

    // Everything the published clobber mask does not allow us to destroy.
    let clobbers = summaries[fid.index()].clobbers;
    let mut preserved = RegMask::EMPTY;
    for i in 0..regs.num_regs() {
        let r = PReg(i as u8);
        if !clobbers.contains(r) && !exempt.contains(r) {
            preserved.insert(r);
        }
    }
    let watched = preserved | RegMask::single(regs.ra());

    let tracked_slot: Vec<bool> = f
        .frame
        .iter()
        .map(|(_, s)| s.purpose == SlotPurpose::Save && s.size == 1)
        .collect();

    let mut ck = Checker {
        module,
        f,
        fid,
        regs,
        summaries,
        cfg,
        loops,
        exempt,
        watched,
        tracked_slot,
        out: Vec::new(),
    };
    ck.run();
    ck.out
}

/// Rebuilds block structure from the machine terminators.
fn machine_cfg(f: &MFunction) -> Cfg {
    let n = f.blocks.len();
    let mut succs = vec![Vec::new(); n];
    let mut rets = Vec::new();
    for (b, blk) in f.blocks.iter() {
        match blk.term {
            MTerminator::Ret => rets.push(b),
            MTerminator::Br(t) => succs[b.index()].push(t),
            MTerminator::CondBr {
                then_to, else_to, ..
            } => {
                succs[b.index()].push(then_to);
                succs[b.index()].push(else_to);
            }
        }
    }
    Cfg::from_succs(f.entry, succs, &rets)
}

struct Checker<'a> {
    module: &'a MModule,
    f: &'a MFunction,
    fid: FuncId,
    regs: &'a RegFile,
    summaries: &'a [FuncSummary],
    cfg: Cfg,
    loops: LoopInfo,
    exempt: RegMask,
    watched: RegMask,
    tracked_slot: Vec<bool>,
    out: Vec<Violation>,
}

impl<'a> Checker<'a> {
    fn run(&mut self) {
        let f = self.f;
        let own = &self.summaries[self.fid.index()];
        if f.num_params != own.param_locs.len() {
            self.violate(
                f.entry,
                None,
                None,
                CheckKind::Contract,
                format!(
                    "function takes {} parameters but its summary binds {}",
                    f.num_params,
                    own.param_locs.len()
                ),
            );
        }
        let states = self.value_fixpoint();
        let events = self.scan(&states);
        self.discipline(&events);
        self.liveness_check();
    }

    fn violate(
        &mut self,
        block: BlockId,
        inst: Option<usize>,
        reg: Option<PReg>,
        kind: CheckKind,
        what: String,
    ) {
        let path = self.path_to(block);
        self.out.push(Violation {
            func: self.f.name.clone(),
            block,
            inst,
            reg,
            kind,
            what,
            path,
        });
    }

    /// Shortest entry → `target` path (the reachability witness).
    fn path_to(&self, target: BlockId) -> Vec<BlockId> {
        let n = self.cfg.num_blocks();
        let mut parent: Vec<Option<BlockId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[self.cfg.entry.index()] = true;
        q.push_back(self.cfg.entry);
        while let Some(b) = q.pop_front() {
            if b == target {
                break;
            }
            for &s in self.cfg.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    parent[s.index()] = Some(b);
                    q.push_back(s);
                }
            }
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// What a call to `callee` may destroy, per the published contract.
    fn callee_clobbers(&self, callee: &MCallee) -> RegMask {
        match callee {
            MCallee::Direct(g) => self.summaries[g.index()].clobbers,
            MCallee::Indirect(_) => self.regs.default_clobbers(),
        }
    }

    fn callee_label(&self, callee: &MCallee) -> String {
        match callee {
            MCallee::Direct(g) => format!("`{}`", self.module.funcs[*g].name),
            MCallee::Indirect(_) => "an indirect (default-convention) callee".into(),
        }
    }

    // ---- pass 1: forward value fixpoint -------------------------------

    fn entry_state(&self) -> VState {
        let regs = (0..self.regs.num_regs())
            .map(|i| Abs::Entry(PReg(i as u8)))
            .collect();
        // Only this function's own parameter registers hold meaningful
        // (caller-provided) values at entry.
        let mut init = RegMask::EMPTY;
        for l in &self.summaries[self.fid.index()].param_locs {
            if let ParamLoc::Reg(r) = l {
                init.insert(*r);
            }
        }
        VState {
            regs,
            slots: vec![Abs::Unknown; self.f.frame.len()],
            init,
            out_init: 0,
        }
    }

    fn step(&self, st: &mut VState, inst: &MInst) {
        let set = |st: &mut VState, r: PReg, v: Abs| {
            st.regs[r.index()] = v;
            st.init.insert(r);
        };
        match inst {
            MInst::Copy { dst, src } => {
                let v = eval(st, *src);
                set(st, *dst, v);
            }
            MInst::Bin { dst, .. } | MInst::Un { dst, .. } | MInst::FuncAddr { dst, .. } => {
                set(st, *dst, Abs::Unknown)
            }
            MInst::Load { dst, addr, .. } => {
                let v = match addr {
                    MAddress::Frame {
                        slot,
                        index: MOperand::Imm(0),
                    } if self.tracked_slot[slot.index()] => st.slots[slot.index()],
                    _ => Abs::Unknown,
                };
                set(st, *dst, v);
            }
            MInst::Store { src, addr, .. } => match addr {
                MAddress::Frame { slot, index } if self.tracked_slot[slot.index()] => {
                    st.slots[slot.index()] = if *index == MOperand::Imm(0) {
                        eval(st, *src)
                    } else {
                        Abs::Unknown
                    };
                }
                MAddress::Outgoing(k) if (*k as usize) < 64 => st.out_init |= 1u64 << k,
                _ => {}
            },
            MInst::Call { callee, .. } => {
                let killed = self.callee_clobbers(callee) | self.exempt;
                for r in killed.iter() {
                    st.regs[r.index()] = Abs::Unknown;
                    st.init.remove(r);
                }
                // The call produces the return value.
                st.init.insert(self.regs.ret_reg());
            }
            MInst::Print { .. } => {}
        }
    }

    fn value_fixpoint(&self) -> Vec<Option<VState>> {
        let f = self.f;
        let n = f.blocks.len();
        let mut inn: Vec<Option<VState>> = vec![None; n];
        inn[self.cfg.entry.index()] = Some(self.entry_state());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &self.cfg.rpo {
                let Some(mut st) = inn[b.index()].clone() else {
                    continue;
                };
                for inst in &f.blocks[b].insts {
                    self.step(&mut st, inst);
                }
                for &s in self.cfg.succs(b) {
                    match &mut inn[s.index()] {
                        Some(cur) => {
                            if cur.join_from(&st) {
                                changed = true;
                            }
                        }
                        slot @ None => {
                            *slot = Some(st.clone());
                            changed = true;
                        }
                    }
                }
            }
        }
        inn
    }

    // ---- pass 2: scan (events, arg bindings, ret preservation) --------

    /// Save/restore classification from the symbolic state: a store of
    /// `r`'s still-intact entry value into a save slot is a SAVE of `r`;
    /// a load of a slot holding `r`'s entry value back into `r` is a
    /// RESTORE. Caller-save traffic around calls never qualifies (the
    /// stored value is a live local, not an entry value), so only the
    /// shrink-wrap plan's saves and the link-register protocol classify.
    fn classify(&self, st: &VState, inst: &MInst) -> Option<Event> {
        match inst {
            MInst::Store {
                src: MOperand::Reg(r),
                addr:
                    MAddress::Frame {
                        slot,
                        index: MOperand::Imm(0),
                    },
                ..
            } if self.tracked_slot[slot.index()]
                && self.watched.contains(*r)
                && st.regs[r.index()] == Abs::Entry(*r) =>
            {
                Some(Event::Save(*r))
            }
            MInst::Load {
                dst,
                addr:
                    MAddress::Frame {
                        slot,
                        index: MOperand::Imm(0),
                    },
                ..
            } if self.tracked_slot[slot.index()]
                && self.watched.contains(*dst)
                && st.slots[slot.index()] == Abs::Entry(*dst) =>
            {
                Some(Event::Restore(*dst))
            }
            _ => None,
        }
    }

    fn events_for(&self, st: &VState, inst: &MInst) -> Vec<Event> {
        if let Some(e) = self.classify(st, inst) {
            return vec![e];
        }
        match inst {
            MInst::Copy { dst, .. }
            | MInst::Bin { dst, .. }
            | MInst::Un { dst, .. }
            | MInst::Load { dst, .. }
            | MInst::FuncAddr { dst, .. } => {
                if self.watched.contains(*dst) {
                    vec![Event::Write(*dst)]
                } else {
                    Vec::new()
                }
            }
            MInst::Call { callee, .. } => {
                // A call destroys the link register and everything in the
                // callee's clobber mask.
                let w = (self.callee_clobbers(callee) | RegMask::single(self.regs.ra()))
                    .intersect(self.watched);
                w.iter().map(Event::Write).collect()
            }
            _ => Vec::new(),
        }
    }

    fn scan(&mut self, states: &[Option<VState>]) -> Vec<Vec<(usize, Event)>> {
        let f = self.f;
        let regs = self.regs;
        let n = f.blocks.len();
        let mut events: Vec<Vec<(usize, Event)>> = vec![Vec::new(); n];
        let rpo = self.cfg.rpo.clone();
        for &b in &rpo {
            let Some(mut st) = states[b.index()].clone() else {
                continue;
            };
            for (i, inst) in f.blocks[b].insts.iter().enumerate() {
                for e in self.events_for(&st, inst) {
                    events[b.index()].push((i, e));
                }
                if let MInst::Call {
                    callee: MCallee::Direct(callee),
                    num_stack_args,
                } = inst
                {
                    self.check_args(b, i, *callee, *num_stack_args, &st);
                }
                self.step(&mut st, inst);
            }
            if matches!(f.blocks[b].term, MTerminator::Ret) {
                for r in self.watched.iter() {
                    if st.regs[r.index()] != Abs::Entry(r) {
                        let role = if r == regs.ra() {
                            "the link register"
                        } else {
                            "preserved by the published clobber mask"
                        };
                        self.violate(
                            b,
                            None,
                            Some(r),
                            CheckKind::Preservation,
                            format!(
                                "{} ({role}) may not hold its entry value at return",
                                regs.name(r)
                            ),
                        );
                    }
                }
            }
        }
        events
    }

    /// §4: every register the callee's convention expects an argument in
    /// must be definitely initialized at the call; every stack cell must
    /// be written; the staged stack-argument count must agree.
    fn check_args(&mut self, b: BlockId, i: usize, callee: FuncId, nstack: u32, st: &VState) {
        let summaries = self.summaries;
        let regs = self.regs;
        let name = self.module.funcs[callee].name.clone();
        let s = &summaries[callee.index()];
        if nstack != s.num_stack_args() {
            self.violate(
                b,
                Some(i),
                None,
                CheckKind::ArgBinding,
                format!(
                    "call to `{name}` stages {nstack} stack arguments but its summary expects {}",
                    s.num_stack_args()
                ),
            );
        }
        for (j, l) in s.param_locs.iter().enumerate() {
            match l {
                ParamLoc::Reg(r) => {
                    if !st.init.contains(*r) {
                        self.violate(
                            b,
                            Some(i),
                            Some(*r),
                            CheckKind::ArgBinding,
                            format!(
                                "argument {j} of call to `{name}` travels in {}, which is not \
                                 definitely initialized at the call",
                                regs.name(*r)
                            ),
                        );
                    }
                }
                ParamLoc::Stack(k) => {
                    if (*k as usize) >= 64 || st.out_init & (1u64 << *k) == 0 {
                        self.violate(
                            b,
                            Some(i),
                            None,
                            CheckKind::ArgBinding,
                            format!(
                                "argument {j} of call to `{name}` travels in outgoing stack \
                                 cell {k}, which is not definitely written at the call"
                            ),
                        );
                    }
                }
                ParamLoc::Ignored => {}
            }
        }
    }

    // ---- pass 3: save/restore discipline ------------------------------

    fn discipline(&mut self, events: &[Vec<(usize, Event)>]) {
        let f = self.f;
        let regs = self.regs;
        let rpo = self.cfg.rpo.clone();
        let n = events.len();
        let full = RegMask(u32::MAX);

        let apply = |mut must: RegMask, mut may: RegMask, evs: &[(usize, Event)]| {
            for (_, e) in evs {
                match e {
                    Event::Save(r) => {
                        must.insert(*r);
                        may.insert(*r);
                    }
                    Event::Restore(r) => {
                        must.remove(*r);
                        may.remove(*r);
                    }
                    Event::Write(_) => {}
                }
            }
            (must, may)
        };

        let mut must_in = vec![full; n];
        let mut may_in = vec![RegMask::EMPTY; n];
        must_in[self.cfg.entry.index()] = RegMask::EMPTY;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let bi = b.index();
                let (mi, yi) = if b == self.cfg.entry {
                    (RegMask::EMPTY, RegMask::EMPTY)
                } else {
                    let mut mi = full;
                    let mut yi = RegMask::EMPTY;
                    for &p in self.cfg.preds(b) {
                        let (mo, yo) =
                            apply(must_in[p.index()], may_in[p.index()], &events[p.index()]);
                        mi = mi.intersect(mo);
                        yi |= yo;
                    }
                    (mi, yi)
                };
                if mi != must_in[bi] || yi != may_in[bi] {
                    must_in[bi] = mi;
                    may_in[bi] = yi;
                    changed = true;
                }
            }
        }

        for &b in &rpo {
            let bi = b.index();
            let in_loop = self.loops.depth(b) > 0;
            let mut must = must_in[bi];
            let mut may = may_in[bi];
            for &(i, e) in &events[bi] {
                match e {
                    Event::Save(r) => {
                        if may.contains(r) {
                            self.violate(
                                b,
                                Some(i),
                                Some(r),
                                CheckKind::SaveDiscipline,
                                format!(
                                    "double save: {} is already saved on some path reaching \
                                     this save (Fig. 2)",
                                    regs.name(r)
                                ),
                            );
                        }
                        if in_loop {
                            self.violate(
                                b,
                                Some(i),
                                Some(r),
                                CheckKind::LoopPlacement,
                                format!("save of {} placed inside a loop (§5)", regs.name(r)),
                            );
                        }
                        must.insert(r);
                        may.insert(r);
                    }
                    Event::Restore(r) => {
                        if !must.contains(r) {
                            self.violate(
                                b,
                                Some(i),
                                Some(r),
                                CheckKind::SaveDiscipline,
                                format!(
                                    "restore of {} without a save on every path to it",
                                    regs.name(r)
                                ),
                            );
                        }
                        if in_loop {
                            self.violate(
                                b,
                                Some(i),
                                Some(r),
                                CheckKind::LoopPlacement,
                                format!("restore of {} placed inside a loop (§5)", regs.name(r)),
                            );
                        }
                        must.remove(r);
                        may.remove(r);
                    }
                    Event::Write(r) => {
                        if !must.contains(r) {
                            self.violate(
                                b,
                                Some(i),
                                Some(r),
                                CheckKind::SaveDiscipline,
                                format!(
                                    "{} is written (or clobbered by a call) without being \
                                     saved on every path first",
                                    regs.name(r)
                                ),
                            );
                        }
                    }
                }
            }
            if matches!(f.blocks[b].term, MTerminator::Ret) {
                for r in may.iter() {
                    self.violate(
                        b,
                        None,
                        Some(r),
                        CheckKind::SaveDiscipline,
                        format!(
                            "function may exit while {} is still saved (missing restore)",
                            regs.name(r)
                        ),
                    );
                }
            }
        }
    }

    // ---- pass 4: live-across-call safety ------------------------------

    fn inst_reads(&self, inst: &MInst) -> RegMask {
        let mut m = RegMask::EMPTY;
        fn op(m: &mut RegMask, o: &MOperand) {
            if let MOperand::Reg(r) = o {
                m.insert(*r);
            }
        }
        fn addr(m: &mut RegMask, a: &MAddress) {
            match a {
                MAddress::Global { index, .. } | MAddress::Frame { index, .. } => op(m, index),
                MAddress::Incoming(_) | MAddress::Outgoing(_) => {}
            }
        }
        match inst {
            MInst::Copy { src, .. } => op(&mut m, src),
            MInst::Bin { lhs, rhs, .. } => {
                op(&mut m, lhs);
                op(&mut m, rhs);
            }
            MInst::Un { src, .. } => op(&mut m, src),
            MInst::Load { addr: a, .. } => addr(&mut m, a),
            MInst::Store { src, addr: a, .. } => {
                op(&mut m, src);
                addr(&mut m, a);
            }
            MInst::Call { callee, .. } => match callee {
                // A call reads exactly the argument registers of the
                // convention in force at the site.
                MCallee::Direct(g) => {
                    for l in &self.summaries[g.index()].param_locs {
                        if let ParamLoc::Reg(r) = l {
                            m.insert(*r);
                        }
                    }
                }
                MCallee::Indirect(t) => op(&mut m, t),
            },
            MInst::FuncAddr { .. } => {}
            MInst::Print { arg } => op(&mut m, arg),
        }
        m
    }

    fn inst_defs(&self, inst: &MInst) -> RegMask {
        match inst {
            MInst::Copy { dst, .. }
            | MInst::Bin { dst, .. }
            | MInst::Un { dst, .. }
            | MInst::Load { dst, .. }
            | MInst::FuncAddr { dst, .. } => RegMask::single(*dst),
            MInst::Store { .. } | MInst::Print { .. } => RegMask::EMPTY,
            MInst::Call { callee, .. } => self.callee_clobbers(callee) | self.exempt,
        }
    }

    fn term_reads(term: &MTerminator) -> RegMask {
        match term {
            MTerminator::CondBr {
                cond: MOperand::Reg(r),
                ..
            } => RegMask::single(*r),
            _ => RegMask::EMPTY,
        }
    }

    fn block_live_out(&self, b: BlockId, live_in: &[RegMask]) -> RegMask {
        let mut live = RegMask::EMPTY;
        for &s in self.cfg.succs(b) {
            live |= live_in[s.index()];
        }
        live | Self::term_reads(&self.f.blocks[b].term)
    }

    fn liveness_check(&mut self) {
        let f = self.f;
        let regs = self.regs;
        let rpo = self.cfg.rpo.clone();
        let n = f.blocks.len();
        let mut live_in = vec![RegMask::EMPTY; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().rev() {
                let mut live = self.block_live_out(b, &live_in);
                for inst in f.blocks[b].insts.iter().rev() {
                    live = RegMask(live.0 & !self.inst_defs(inst).0) | self.inst_reads(inst);
                }
                if live != live_in[b.index()] {
                    live_in[b.index()] = live;
                    changed = true;
                }
            }
        }

        let rv = self.regs.ret_reg();
        for &b in &rpo {
            let mut live = self.block_live_out(b, &live_in);
            for (i, inst) in f.blocks[b].insts.iter().enumerate().rev() {
                if let MInst::Call { callee, .. } = inst {
                    // Live-across values: live after the call, minus the
                    // value the call itself produces. None may sit in a
                    // register the contract lets the call destroy.
                    let across = RegMask(live.0 & !RegMask::single(rv).0);
                    let bad = across.intersect(self.callee_clobbers(callee) | self.exempt);
                    for r in bad.iter() {
                        let label = self.callee_label(callee);
                        self.violate(
                            b,
                            Some(i),
                            Some(r),
                            CheckKind::LiveAcrossCall,
                            format!(
                                "value live across call to {label} in {}, which the call may \
                                 clobber",
                                regs.name(r)
                            ),
                        );
                    }
                }
                live = RegMask(live.0 & !self.inst_defs(inst).0) | self.inst_reads(inst);
            }
        }
    }
}
