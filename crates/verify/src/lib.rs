//! # ipra-verify — static save/restore and convention verifier
//!
//! Proves the paper's register contracts on *every* path of lowered machine
//! code, where the differential interpreter oracle only checks the paths a
//! given input happens to execute. Per function it verifies:
//!
//! * **Preservation** — every register outside the function's published
//!   clobber mask (and the link register) holds its entry value at every
//!   `ret`, established by a symbolic abstract interpretation over
//!   registers and save slots. This is the static mirror of the simulator's
//!   dynamic preservation checker.
//! * **Save/restore discipline** (Eqs. 3.1–3.6, Fig. 2) — on every path,
//!   each preserved register is saved before its first write, restored
//!   before exit, never double-saved and never restored unsaved; and no
//!   shrink-wrapped save/restore sits inside a natural loop (§5).
//! * **Live-across-call safety** (§2–§3) — at every call site, no value
//!   live across the call resides in a register the callee's summary (or
//!   the default convention, for open callees) says it may clobber.
//! * **Argument bindings** (§4) — at every direct call, each
//!   parameter-carrying register of the callee's convention is definitely
//!   initialized, every stack argument cell is written, and the staged
//!   stack-argument count matches the callee's summary.
//!
//! Violations surface as structured [`Violation`]s carrying the function,
//! block, register and an entry-path witness.
//!
//! ```
//! use ipra_machine::{FuncSummary, MModule, RegFile};
//!
//! let regs = RegFile::mips_like();
//! let empty = MModule {
//!     funcs: ipra_ir::EntityVec::new(),
//!     globals: ipra_ir::EntityVec::new(),
//!     main: None,
//! };
//! assert!(ipra_verify::verify_module(&empty, &regs, &[]).is_empty());
//! ```

#![warn(missing_docs)]

mod check;
mod diag;

pub use diag::{CheckKind, Violation};

use ipra_machine::{FuncSummary, MModule, RegFile};

/// Verifies every function of a lowered module against its published
/// summary. `summaries` is indexed by function id and must be the final
/// summaries of the compile that produced `module` (open procedures carry
/// their default summary).
///
/// Returns all violations found, in function order; an empty vector means
/// the module provably honors its register contracts on every path.
///
/// # Panics
///
/// Panics when `summaries` is not aligned with `module.funcs`.
pub fn verify_module(
    module: &MModule,
    regs: &RegFile,
    summaries: &[FuncSummary],
) -> Vec<Violation> {
    assert_eq!(
        module.funcs.len(),
        summaries.len(),
        "one summary per function"
    );
    let mut out = Vec::new();
    for (id, _) in module.funcs.iter() {
        out.extend(check::verify_function(module, id, regs, summaries));
    }
    out
}
