//! Structured diagnostics.

use ipra_ir::BlockId;
use ipra_machine::PReg;

/// Which contract a violation breaks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// A preserved register does not provably hold its entry value at a
    /// `ret` (the simulator's dynamic check, proven over all paths).
    Preservation,
    /// Save/restore placement breaks the Fig. 2 path property: double
    /// save, restore without save, write before save, or exit while saved.
    SaveDiscipline,
    /// A save or restore sits inside a natural loop (§5 constraint).
    LoopPlacement,
    /// A value live across a call sits in a register the callee's summary
    /// allows it to clobber.
    LiveAcrossCall,
    /// An argument register or stack cell of a direct call's convention is
    /// not definitely initialized, or the stack-argument count disagrees
    /// with the callee's summary (§4 bindings).
    ArgBinding,
    /// Module-level metadata disagrees with the function it describes.
    Contract,
}

/// One verified-contract violation, with enough structure for tooling:
/// the function and block it was found in, the register involved and a
/// shortest entry path witnessing reachability of the violating block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Function the violation is in.
    pub func: String,
    /// Block the violation is in.
    pub block: BlockId,
    /// Instruction index inside the block, when the violation is tied to
    /// one instruction (`None` for block-exit conditions).
    pub inst: Option<usize>,
    /// Register involved, when one is.
    pub reg: Option<PReg>,
    /// Which contract broke.
    pub kind: CheckKind,
    /// Human-readable description.
    pub what: String,
    /// Shortest entry → `block` path (a witness that the violating block
    /// is reachable), ending at `block`.
    pub path: Vec<BlockId>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.func, self.block)?;
        if let Some(i) = self.inst {
            write!(f, "#{i}")?;
        }
        write!(f, ": [{:?}] {}", self.kind, self.what)?;
        if self.path.len() > 1 {
            write!(f, " (path:")?;
            for b in &self.path {
                write!(f, " {b}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}
