//! Property tests for [`ConventionSpec`]/[`RegFile`] invariants, over both
//! an exhaustive small-spec enumeration and a deterministic random sweep
//! (hand-rolled xorshift PRNG — the external `proptest` crate is not
//! vendored in offline builds).
//!
//! Invariants checked for every register file:
//! - caller-saved, callee-saved and unclassed (reserved) registers
//!   partition the file: disjoint and exhaustive;
//! - argument registers are caller-saved and are a prefix of the file;
//! - reserved registers (assembler scratches, `rv`, `ra`) are never
//!   allocatable and never classed;
//! - the allocatable set has no duplicates and stays within the file;
//! - `default_clobbers`/`callee_saved_mask` agree with the classes;
//! - the spec round-trips through the file, and the fingerprint separates
//!   any two files with different specs while staying stable for equal
//!   ones.

use std::collections::HashSet;

use ipra_machine::{ConventionSpec, PReg, RegClass, RegFile};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Every structural invariant a [`RegFile`] must satisfy, checked against
/// the spec it was built from.
fn check_file(spec: ConventionSpec) {
    let file = RegFile::from_spec(spec);

    // The spec round-trips.
    assert_eq!(file.spec(), spec, "spec does not round-trip");
    assert_eq!(file.num_regs(), spec.num_regs());
    assert_eq!(file.allocatable().len(), spec.num_allocatable());

    // Classes partition the file: each register is exactly one of
    // caller-saved, callee-saved, or reserved (unclassed).
    let mut caller = Vec::new();
    let mut callee = Vec::new();
    let mut reserved = Vec::new();
    for i in 0..file.num_regs() {
        let r = PReg(i as u8);
        match file.class(r) {
            Some(RegClass::CallerSaved) => caller.push(r),
            Some(RegClass::CalleeSaved) => callee.push(r),
            None => reserved.push(r),
        }
    }
    assert_eq!(
        caller.len() + callee.len() + reserved.len(),
        file.num_regs(),
        "classes must be exhaustive"
    );
    assert_eq!(caller.len(), spec.arg_regs + spec.caller_regs);
    assert_eq!(callee.len(), spec.callee_regs);
    assert_eq!(reserved.len(), 4, "two scratches, rv and ra");

    // Reserved registers are exactly the scratches, rv and ra, and are
    // never allocatable.
    let reserved_set: HashSet<u8> = reserved.iter().map(|r| r.0).collect();
    for s in file.scratch() {
        assert!(reserved_set.contains(&s.0), "scratch must be reserved");
    }
    assert!(reserved_set.contains(&file.ret_reg().0));
    assert!(reserved_set.contains(&file.ra().0));
    for r in file.allocatable() {
        assert!(
            !reserved_set.contains(&r.0),
            "reserved register {} is allocatable",
            file.name(*r)
        );
    }

    // The allocatable set has no duplicates and stays in bounds.
    let alloc_set: HashSet<u8> = file.allocatable().iter().map(|r| r.0).collect();
    assert_eq!(alloc_set.len(), file.allocatable().len(), "duplicate");
    for r in file.allocatable() {
        assert!((r.0 as usize) < file.num_regs());
    }

    // Argument registers are caller-saved, distinct, and within bounds.
    assert_eq!(file.param_regs().len(), spec.arg_regs);
    let param_set: HashSet<u8> = file.param_regs().iter().map(|r| r.0).collect();
    assert_eq!(param_set.len(), spec.arg_regs, "duplicate param reg");
    for r in file.param_regs() {
        assert_eq!(
            file.class(*r),
            Some(RegClass::CallerSaved),
            "argument registers are caller-saved by convention"
        );
    }

    // Masks agree with the classes.
    let clobbers = file.default_clobbers();
    let preserved = file.callee_saved_mask();
    assert!(clobbers.intersect(preserved).is_empty());
    for r in &caller {
        if alloc_set.contains(&r.0) {
            assert!(clobbers.contains(*r), "allocatable caller-saved clobbers");
        }
        assert!(!preserved.contains(*r));
    }
    for r in &callee {
        assert!(preserved.contains(*r), "callee-saved is preserved");
        assert!(!clobbers.contains(*r));
    }

    // The fingerprint is stable across rebuilds of the same spec.
    assert_eq!(
        file.fingerprint(),
        RegFile::from_spec(spec).fingerprint(),
        "fingerprint must be deterministic"
    );
}

/// Specs with distinct field values must hash to distinct fingerprints
/// (the cache-key separation the incremental cache depends on).
fn check_separation(a: ConventionSpec, b: ConventionSpec) {
    let fa = RegFile::from_spec(a).fingerprint();
    let fb = RegFile::from_spec(b).fingerprint();
    if a == b {
        assert_eq!(fa, fb);
    } else {
        assert_ne!(fa, fb, "{a:?} and {b:?} collide");
    }
}

#[test]
fn exhaustive_small_convention_points() {
    // Every (pool, caller, args) with pool <= 10 — 506 register files.
    let mut n = 0;
    for pool in 0..=10 {
        for caller in 0..=pool {
            for args in 0..=caller.min(4) {
                let spec = ConventionSpec::convention(pool, caller, args);
                assert!(spec.validate().is_ok(), "{spec:?}");
                check_file(spec);
                n += 1;
            }
        }
    }
    assert!(n > 200, "enumeration shrank: {n}");
}

#[test]
fn exhaustive_mips_family_class_limits() {
    for caller in 0..=11 {
        for callee in 0..=9 {
            let spec = ConventionSpec::mips_family(caller, callee);
            assert!(spec.validate().is_ok(), "{spec:?}");
            check_file(spec);
        }
    }
}

#[test]
fn random_specs_either_validate_and_hold_or_are_rejected() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut accepted = 0;
    let mut rejected = 0;
    for _ in 0..2000 {
        let spec = ConventionSpec {
            arg_regs: rng.below(8),
            args_allocatable: rng.below(2) == 1,
            caller_regs: rng.below(16),
            caller_alloc: rng.below(16),
            callee_regs: rng.below(16),
            callee_alloc: rng.below(16),
        };
        match spec.validate() {
            Ok(()) => {
                check_file(spec);
                accepted += 1;
            }
            Err(e) => {
                // Rejection must cite a real constraint violation.
                assert!(
                    spec.caller_alloc > spec.caller_regs
                        || spec.callee_alloc > spec.callee_regs
                        || spec.num_regs() > 32,
                    "spurious rejection of {spec:?}: {e}"
                );
                rejected += 1;
            }
        }
    }
    // The generator must actually exercise both outcomes.
    assert!(accepted > 100, "only {accepted} specs accepted");
    assert!(rejected > 100, "only {rejected} specs rejected");
}

#[test]
fn fingerprints_separate_random_spec_pairs() {
    let mut rng = Rng(0xdead_beef_cafe_f00d);
    let mut specs = Vec::new();
    while specs.len() < 60 {
        let pool = rng.below(25);
        let caller = rng.below(pool + 1);
        let args = rng.below(caller.min(4) + 1);
        specs.push(ConventionSpec::convention(pool, caller, args));
    }
    // Add mips-family points too, so cross-family collisions are covered.
    for (c, e) in [(11, 9), (7, 0), (0, 7), (3, 3)] {
        specs.push(ConventionSpec::mips_family(c, e));
    }
    for a in &specs {
        for b in &specs {
            check_separation(*a, *b);
        }
    }
}
