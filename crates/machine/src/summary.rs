//! Register-usage summaries (paper §2–§4).
//!
//! The summary of a closed procedure is all a caller ever needs: one
//! used/unused flag per register (including the whole call tree below it)
//! plus, for §4, which register carries each parameter. Open procedures do
//! not publish a summary; callers assume the default linkage protocol.
//!
//! The types live here (rather than in the allocator) because they are the
//! machine-level *contract* of a compiled function: consumers that only see
//! lowered code — the simulator's convention checker and the static
//! save/restore verifier — key every check off a [`FuncSummary`].

use crate::regs::{PReg, RegFile, RegMask};

/// Where a parameter travels at a call boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamLoc {
    /// In a specific register (the default convention's argument registers,
    /// or any register at all under inter-procedural allocation, §4).
    Reg(PReg),
    /// In the `i`-th stack-argument cell.
    Stack(u32),
    /// The callee never reads this parameter's incoming value, so the
    /// caller does not place it anywhere (only possible under the custom
    /// convention, where the callee's liveness is known).
    Ignored,
}

/// The register-usage summary of one procedure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncSummary {
    /// Registers whose content may be destroyed by calling this procedure —
    /// its own unsaved usage merged with all of its callees' (§2: "merge
    /// the register usage in the current procedure with those of all its
    /// callees").
    pub clobbers: RegMask,
    /// Where the procedure expects each parameter.
    pub param_locs: Vec<ParamLoc>,
    /// Whether this is the default summary of an open procedure.
    pub is_default: bool,
}

impl FuncSummary {
    /// The default-convention summary used for open procedures and unknown
    /// callees: all caller-saved registers (plus argument and return-value
    /// registers) clobbered, callee-saved registers preserved; the first
    /// four parameters in the argument registers, the rest on the stack.
    pub fn default_for(regs: &RegFile, num_params: usize) -> Self {
        let param_locs = (0..num_params)
            .map(|i| match regs.param_regs().get(i) {
                Some(&r) => ParamLoc::Reg(r),
                None => ParamLoc::Stack((i - regs.param_regs().len()) as u32),
            })
            .collect();
        FuncSummary {
            clobbers: regs.default_clobbers(),
            param_locs,
            is_default: true,
        }
    }

    /// Number of stack-passed parameters.
    pub fn num_stack_args(&self) -> u32 {
        self.param_locs
            .iter()
            .map(|p| match p {
                ParamLoc::Stack(i) => i + 1,
                ParamLoc::Reg(_) | ParamLoc::Ignored => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_summary_follows_abi() {
        let regs = RegFile::mips_like();
        let s = FuncSummary::default_for(&regs, 6);
        assert_eq!(s.param_locs.len(), 6);
        assert_eq!(s.param_locs[0], ParamLoc::Reg(regs.param_regs()[0]));
        assert_eq!(s.param_locs[3], ParamLoc::Reg(regs.param_regs()[3]));
        assert_eq!(s.param_locs[4], ParamLoc::Stack(0));
        assert_eq!(s.param_locs[5], ParamLoc::Stack(1));
        assert_eq!(s.num_stack_args(), 2);
        assert!(s.is_default);
        assert_eq!(s.clobbers, regs.default_clobbers());
    }

    #[test]
    fn no_stack_args_for_few_params() {
        let regs = RegFile::mips_like();
        let s = FuncSummary::default_for(&regs, 2);
        assert_eq!(s.num_stack_args(), 0);
    }
}
