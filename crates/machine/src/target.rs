//! Bundled target description and the named-target registry.
//!
//! Every register-file shape the toolchain knows by name lives here, so
//! each layer (driver flags, the compile service, the differential fuzz
//! oracle, the convention-search mode) resolves targets through one table
//! instead of growing its own constructors. Anonymous convention points
//! parse from `conv:POOL,CALLER,ARGS` strings, making every point of the
//! search space expressible on a command line or over the wire.

use crate::cost::CostModel;
use crate::regs::{ConventionSpec, RegFile};

/// Everything the register allocator and lowering need to know about the
/// machine: the register file and the cycle cost model.
#[derive(Clone, Debug, Default)]
pub struct Target {
    /// Register file layout.
    pub regs: RegFile,
    /// Cycle costs.
    pub cost: CostModel,
}

/// One entry of the named-target registry.
#[derive(Clone, Copy, Debug)]
pub struct TargetInfo {
    /// The name `Target::by_name` resolves.
    pub name: &'static str,
    /// One-line description for `--help`-style listings.
    pub description: &'static str,
}

/// A registry row: the target's metadata and its constructor.
type NamedTarget = (TargetInfo, fn() -> Target);

/// The registry of named targets, in presentation order.
const NAMED: &[NamedTarget] = &[
    (
        TargetInfo {
            name: "mips-like",
            description: "the paper's R2000-like file: 4 arg + 11 caller- + 9 callee-saved",
        },
        Target::mips_like,
    ),
    (
        TargetInfo {
            name: "table2-d",
            description: "Table 2 column D: only 7 caller-saved registers allocatable",
        },
        || Target::with_class_limits(7, 0),
    ),
    (
        TargetInfo {
            name: "table2-e",
            description: "Table 2 column E: only 7 callee-saved registers allocatable",
        },
        || Target::with_class_limits(0, 7),
    ),
    (
        TargetInfo {
            name: "embedded8",
            description: "irregular embedded file: 8 allocatable regs, 6 caller/2 callee, 2 args",
        },
        || Target::convention(8, 6, 2),
    ),
    (
        TargetInfo {
            name: "searched",
            description:
                "best mips24-pool partition found by `convsearch` (see BENCH_convsearch.json)",
        },
        || Target::convention(SEARCHED.0, SEARCHED.1, SEARCHED.2),
    ),
];

/// The winning `(pool, caller, args)` point of the `convsearch` sweep over
/// the mips24 shape: lowest aggregate penalty cycles across the workload
/// corpus (ties broken by total cycles). Re-derive with `cargo run
/// --release -p ipra-driver --bin convsearch` after allocator changes; the
/// committed report is `BENCH_convsearch.json`.
pub const SEARCHED: (usize, usize, usize) = (24, 21, 4);

impl Target {
    /// The full MIPS-like target of the paper's measurements.
    pub fn mips_like() -> Self {
        Target {
            regs: RegFile::mips_like(),
            cost: CostModel::r2000(),
        }
    }

    /// Target with a restricted allocatable set (Table 2), routed through
    /// the same [`ConventionSpec`] plumbing as every named target.
    pub fn with_class_limits(caller: usize, callee: usize) -> Self {
        Target {
            regs: RegFile::with_class_limits(caller, callee),
            cost: CostModel::r2000(),
        }
    }

    /// A fully-allocatable searched convention point (see
    /// [`RegFile::convention`]) under the default cost model.
    pub fn convention(pool: usize, caller: usize, args: usize) -> Self {
        Target {
            regs: RegFile::convention(pool, caller, args),
            cost: CostModel::r2000(),
        }
    }

    /// A target built from an explicit spec under the default cost model.
    pub fn from_spec(spec: ConventionSpec) -> Self {
        Target {
            regs: RegFile::from_spec(spec),
            cost: CostModel::r2000(),
        }
    }

    /// Resolves a registry name (see [`Target::named`]).
    pub fn by_name(name: &str) -> Option<Target> {
        NAMED
            .iter()
            .find(|(info, _)| info.name == name)
            .map(|(_, build)| build())
    }

    /// Resolves a target string: a registry name, or an anonymous
    /// convention point `conv:POOL,CALLER,ARGS`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid targets on an unknown name, or
    /// describing the malformed/invalid convention triple.
    pub fn parse(s: &str) -> Result<Target, String> {
        if let Some(t) = Self::by_name(s) {
            return Ok(t);
        }
        if let Some(triple) = s.strip_prefix("conv:") {
            let parts: Vec<&str> = triple.split(',').collect();
            if parts.len() != 3 {
                return Err(format!("`{s}`: expected conv:POOL,CALLER,ARGS"));
            }
            let mut nums = [0usize; 3];
            for (n, p) in nums.iter_mut().zip(&parts) {
                *n = p
                    .trim()
                    .parse()
                    .map_err(|_| format!("`{s}`: `{p}` is not a count"))?;
            }
            let (pool, caller, args) = (nums[0], nums[1], nums[2]);
            if caller > pool || args > caller {
                return Err(format!(
                    "`{s}`: need args <= caller <= pool (got pool={pool}, caller={caller}, args={args})"
                ));
            }
            let spec = ConventionSpec::convention(pool, caller, args);
            spec.validate().map_err(|e| format!("`{s}`: {e}"))?;
            return Ok(Target::from_spec(spec));
        }
        let names: Vec<&str> = Self::named().iter().map(|i| i.name).collect();
        Err(format!(
            "unknown target `{s}`; named targets: {} (or conv:POOL,CALLER,ARGS)",
            names.join(", ")
        ))
    }

    /// The registry entries, in presentation order.
    pub fn named() -> Vec<TargetInfo> {
        NAMED.iter().map(|(info, _)| *info).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Target::mips_like();
        assert_eq!(t.regs.allocatable().len(), 24);
        let d = Target::with_class_limits(7, 0);
        assert_eq!(d.regs.allocatable().len(), 7);
        assert_eq!(d.cost.load, t.cost.load);
    }

    #[test]
    fn registry_resolves_every_named_target() {
        for info in Target::named() {
            let t = Target::by_name(info.name).expect(info.name);
            assert!(
                !t.regs.allocatable().is_empty(),
                "{} has no allocatable registers",
                info.name
            );
            assert!(t.regs.num_regs() <= 32, "{} overflows RegMask", info.name);
        }
        assert!(Target::by_name("nonesuch").is_none());
    }

    #[test]
    fn table2_names_match_class_limits() {
        let d = Target::by_name("table2-d").unwrap();
        assert_eq!(
            d.regs.fingerprint(),
            Target::with_class_limits(7, 0).regs.fingerprint()
        );
        let e = Target::by_name("table2-e").unwrap();
        assert_eq!(
            e.regs.fingerprint(),
            Target::with_class_limits(0, 7).regs.fingerprint()
        );
    }

    #[test]
    fn embedded8_is_deliberately_irregular() {
        let t = Target::by_name("embedded8").unwrap();
        assert_eq!(t.regs.allocatable().len(), 8, "few allocatable registers");
        assert_eq!(t.regs.param_regs().len(), 2, "reduced argument registers");
        let spec = t.regs.spec();
        // Skewed split: 6 caller-saved (2 of them argument registers)
        // against 2 callee-saved.
        assert_eq!(spec.arg_regs + spec.caller_alloc, 6);
        assert_eq!(spec.callee_alloc, 2);
    }

    #[test]
    fn parse_accepts_names_and_conv_triples() {
        assert_eq!(
            Target::parse("mips-like").unwrap().regs.fingerprint(),
            Target::mips_like().regs.fingerprint()
        );
        let t = Target::parse("conv:8,6,2").unwrap();
        assert_eq!(
            t.regs.fingerprint(),
            Target::by_name("embedded8").unwrap().regs.fingerprint()
        );
        assert!(Target::parse("conv:8,9,2").is_err(), "caller > pool");
        assert!(Target::parse("conv:8,6").is_err(), "missing count");
        assert!(Target::parse("conv:a,b,c").is_err(), "non-numeric");
        assert!(Target::parse("conv:40,10,4").is_err(), "pool too large");
        let err = Target::parse("nonesuch").unwrap_err();
        assert!(err.contains("mips-like"), "{err}");
    }

    #[test]
    fn searched_point_is_a_valid_mips24_partition() {
        let (pool, caller, args) = SEARCHED;
        assert_eq!(pool, 24, "searched partition sweeps the mips24 pool");
        assert!(args <= caller && caller <= pool);
        let t = Target::by_name("searched").unwrap();
        assert_eq!(t.regs.allocatable().len(), pool);
    }
}
