//! Bundled target description.

use crate::cost::CostModel;
use crate::regs::RegFile;

/// Everything the register allocator and lowering need to know about the
/// machine: the register file and the cycle cost model.
#[derive(Clone, Debug, Default)]
pub struct Target {
    /// Register file layout.
    pub regs: RegFile,
    /// Cycle costs.
    pub cost: CostModel,
}

impl Target {
    /// The full MIPS-like target of the paper's measurements.
    pub fn mips_like() -> Self {
        Target {
            regs: RegFile::mips_like(),
            cost: CostModel::r2000(),
        }
    }

    /// Target with a restricted allocatable set (Table 2).
    pub fn with_class_limits(caller: usize, callee: usize) -> Self {
        Target {
            regs: RegFile::with_class_limits(caller, callee),
            cost: CostModel::r2000(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Target::mips_like();
        assert_eq!(t.regs.allocatable().len(), 24);
        let d = Target::with_class_limits(7, 0);
        assert_eq!(d.regs.allocatable().len(), 7);
        assert_eq!(d.cost.load, t.cost.load);
    }
}
